"""Cache planning and the ``pick_best`` annotation (§4.3, §5.3, Fig. 11).

Shows the memory side of Plumber on MultiBoxSSD and ResNet:

* materialized-size propagation (decode amplifies, filter trims),
* the greedy closest-to-root cache that fits in RAM,
* randomness taint (nothing past a seeded augmentation is cacheable),
* the Figure 11 ``@optimize(pick_best=...)`` query choosing between a
  fused (fast, uncacheable) and unfused (cacheable) decode.

Run: ``python examples/cache_planning.py``
"""

from repro.analysis.tables import format_table
from repro.core import Plumber, optimize, plan_cache_greedy
from repro.core.rewriter import existing_cache
from repro.host import setup_c
from repro.workloads import build_resnet
from repro.workloads import get_workload


def main():
    machine = setup_c()

    # --- Materialization costs along the SSD pipeline. -----------------
    pipeline = get_workload("ssd").build(parallelism=8)
    plumber = Plumber(machine, trace_duration=3.0, trace_warmup=0.5)
    model = plumber.model(pipeline)

    rows = []
    for node in model.pipeline.topological_order():
        rates = model.rates[node.name]
        size = ("inf" if rates.materialized_bytes == float("inf")
                else f"{rates.materialized_bytes / 1e9:.1f} GB")
        rows.append((rates.name, size, "yes" if rates.cacheable else "no"))
    print(format_table(("node", "materialized", "cacheable"), rows,
                       title="MultiBoxSSD materialization ladder"))

    decision = plan_cache_greedy(model)
    print(f"\ngreedy plan: {decision}")
    print("(the paper's §5.4 result: materialize after filtering — "
          "smaller than the decode output, removes decode CPU)\n")

    # --- Figure 11: pick_best over the fused/unfused decode. -----------
    scaled = machine.with_memory(2e9)

    @optimize(scaled, pick_best={"fused": [True, False]},
              trace_duration=1.5, trace_warmup=0.4)
    def loader_fn(fused=False):
        wl = get_workload("resnet")
        return build_resnet(catalog=wl.catalog_factory().scaled(0.004),
                            parallelism=1, fused=fused)

    chosen = loader_fn()
    cache = existing_cache(chosen)
    print(f"pick_best chose pipeline {chosen.name!r} "
          f"(cache node: {cache})")
    print("With memory to spare, the cacheable unfused variant wins even "
          "though its decode is slightly slower — the optimization an "
          "online tuner cannot see past cache cold-start.")


if __name__ == "__main__":
    main()
