"""Diagnose an I/O-bound pipeline (§5.2) and plan read parallelism.

A ResNet pipeline on a heavily rate-limited store: Plumber's byte
accounting converts traced reads into an I/O cost per minibatch, joins
it with the measured bandwidth curve, and reports the disk as the
bottleneck with the minimal read parallelism needed to saturate it.

Run: ``python examples/disk_bound_diagnosis.py``
"""

from repro.analysis.tables import format_table
from repro.core import (
    Plumber,
    benchmark_source_curve,
    io_bound_throughput,
    solve_allocation,
)
from repro.host import setup_a
from repro.host.disk import cloud_storage
from repro.workloads import get_workload


def main():
    machine = setup_a().with_disk(cloud_storage())
    pipeline = get_workload("resnet").build(scale=0.05, parallelism=8)

    # --- Trace and derive the I/O cost per minibatch. ------------------
    plumber = Plumber(machine, trace_duration=2.0, trace_warmup=0.5)
    model = plumber.model(pipeline)
    bpm = model.bytes_per_minibatch
    print(f"I/O load: {bpm / 1e6:.1f} MB per minibatch "
          f"-> {io_bound_throughput(bpm, 100e6):.1f} minibatches per "
          "100 MB/s of bandwidth (the paper's 6.9 figure)\n")

    # --- Benchmark the empirical parallelism->bandwidth curve. ---------
    curve = benchmark_source_curve(pipeline, machine,
                                   parallelisms=(1, 2, 4, 8, 16, 32))
    rows = [
        (p, f"{bw / 1e6:.0f}")
        for p, bw in zip(curve.parallelisms, curve.bandwidths)
    ]
    print(format_table(("read parallelism", "achieved MB/s"), rows,
                       title="Empirical source curve (via rewriting)"))
    sat = curve.minimal_saturating_parallelism()
    print(f"\nminimal parallelism to saturate storage: {sat} streams "
          f"({curve.max_bandwidth / 1e6:.0f} MB/s peak)\n")

    # --- The LP folds the curve into its allocation. -------------------
    solution = solve_allocation(model)
    print(f"LP max rate: {solution.predicted_throughput:.1f} minibatches/s, "
          f"binding constraint: {solution.bottleneck}")
    print(f"LP chose source streams: "
          f"{ {k: round(v, 1) for k, v in solution.io_streams.items()} }")


if __name__ == "__main__":
    main()
