"""Multi-source pipelines end to end: zip/interleave DAGs through the
optimizer and the daemon service.

Input pipelines stopped being chains the moment models started pairing
modalities: CLIP-style training zips an image branch with a caption
branch, RL mixes fresh rollouts with replayed ones. This example:

1. builds a vision+text ``zip`` DAG by hand and shows the branch-aware
   rendering (``merge <- [a | b]``, not a fake linear chain),
2. optimizes it locally — the LP sees every branch, and the cache pass
   plans **per-branch** caches under a shared memory budget,
3. generates a fleet from the ``multimodal`` (zip) and ``rl_replay``
   (weighted interleave) templates and round-trips it through a live
   daemon via :class:`~repro.service.RemoteShard` (which gates dispatch
   on ``GET /ready``), checking the rewritten programs come back
   byte-identical to a local run.

Run: ``python examples/multimodal_fleet.py``
"""

from repro.core import Plumber
from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.graph.builder import from_tfrecords, zip_datasets
from repro.graph.udf import CostModel, UserFunction
from repro.host import setup_c
from repro.io.filesystem import FileCatalog
from repro.service import BatchOptimizer, OptimizationDaemon, RemoteShard

#: analytic backend: decision-only traces, the whole example runs in ms
SPEC = OptimizeSpec(iterations=1, backend="analytic",
                    trace_duration=1.0, trace_warmup=0.25)


def build_pair_pipeline():
    """A CLIP-style loader: decode images, tokenize captions, zip."""
    images = (
        from_tfrecords(FileCatalog("img", 64, 300.0, 80e3),
                       parallelism=4, name="img_src")
        .map(UserFunction("decode_jpeg",
                          cost=CostModel(cpu_seconds=2e-3),
                          size_ratio=4.0),
             parallelism=4, name="img_decode")
    )
    captions = (
        from_tfrecords(FileCatalog("txt", 64, 300.0, 2e3),
                       parallelism=2, name="txt_src")
        .map(UserFunction("tokenize", cost=CostModel(cpu_seconds=3e-4)),
             parallelism=2, name="txt_tokenize")
    )
    return (
        zip_datasets([images, captions], name="zip_pairs")
        .batch(32, name="batch")
        .repeat(None, name="repeat")
        .build("clip_pairs")
    )


def main():
    machine = setup_c()
    pipeline = build_pair_pipeline()

    print("== the program is a DAG, and renders like one")
    print(pipeline.describe())
    print(f"\n{pipeline!r}\n")

    print("== optimizing locally (LP + prefetch + per-branch caches)")
    result = Plumber(machine, spec=SPEC).optimize(pipeline)
    print(f"bottleneck: {result.bottleneck}")
    for decision in result.decisions:
        print(f"  - {decision}")
    if result.caches:
        targets = ", ".join(c.target for c in result.caches)
        print(f"planned caches: {targets}")

    print("\n== a zip+interleave fleet through the daemon service")
    fleet = generate_pipeline_fleet(
        num_jobs=10, distinct=4, seed=23,
        config=FleetConfig(
            domain_weights={"multimodal": 0.6, "rl_replay": 0.4},
            optimize_spec=SPEC),
    )
    local = BatchOptimizer(executor="serial", spec=SPEC).optimize_fleet(fleet)
    with OptimizationDaemon(
        BatchOptimizer(executor="thread", max_workers=4, spec=SPEC)
    ) as daemon:
        shard = RemoteShard(daemon.url)  # checks GET /ready, then submits
        remote = shard.optimize_fleet(fleet)

    for job in remote.jobs:
        merge = ("zip" if '"zip"' in job.pipeline_json
                 else "interleave" if '"interleave_datasets"'
                 in job.pipeline_json else "chain")
        print(f"  {job.name}: {merge}, bottleneck {job.bottleneck}, "
              f"speedup {job.speedup:.2f}x")

    identical = all(
        r.pipeline_json == l.pipeline_json
        for r, l in zip(remote.jobs, local.jobs)
    )
    assert identical, "HTTP round-trip must be byte-faithful"
    print(f"\n{len(remote.jobs)} rewritten programs came back over HTTP "
          "byte-identical to the local run — multi-source DAGs are "
          "first-class on the wire.")


if __name__ == "__main__":
    main()
