"""Fan a fleet out to multiple optimization daemons over HTTP.

Starts two :class:`~repro.service.OptimizationDaemon` processes-worth of
service (each with its own disk-persistent result store — two logical
hosts), then drives them from one front-end: a
:class:`~repro.service.ShardedOptimizer` whose shards are
:class:`~repro.service.RemoteShard` clients bound to the daemon URLs.
Jobs are assigned to hosts by structural-signature hash and dispatched
concurrently; per-host reports merge into one fleet-wide report with
deduplicated cache arithmetic. A second pair of daemons on the same
store directories then serves the identical fleet entirely from disk —
warm restart through the HTTP path — and finally the stores are
garbage-collected by provenance age via ``POST /compact``.

Run: ``python examples/remote_shard_fleet.py``
"""

import tempfile

from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import (
    BatchOptimizer,
    DiskStore,
    OptimizationClient,
    OptimizationDaemon,
    RemoteShard,
    ShardedOptimizer,
)

#: analytic backend: decision-only traces, the whole example runs in ms
SPEC = OptimizeSpec(iterations=1, backend="analytic",
                    trace_duration=1.0, trace_warmup=0.25)
NUM_HOSTS = 2


def start_daemons(store_dirs):
    """One daemon per logical host, each with its own DiskStore."""
    return [
        OptimizationDaemon(
            BatchOptimizer(executor="thread", max_workers=4, spec=SPEC,
                           store=DiskStore(store_dir)),
        ).start()
        for store_dir in store_dirs
    ]


def main():
    fleet = generate_pipeline_fleet(
        num_jobs=12, distinct=4, seed=11,
        config=FleetConfig(optimize_spec=SPEC),  # default §3 domain mix
    )
    store_dirs = [tempfile.mkdtemp(prefix=f"repro-shard{i}-")
                  for i in range(NUM_HOSTS)]

    print(f"== cold pass: {len(fleet)} jobs sharded over "
          f"{NUM_HOSTS} daemons (HTTP)")
    daemons = start_daemons(store_dirs)
    try:
        front_end = ShardedOptimizer(
            [RemoteShard(dm.url) for dm in daemons])
        report = front_end.optimize_fleet(fleet)
        print(report.to_table())
        for dm in daemons:
            shard_stats = OptimizationClient(dm.url).stats()
            print(f"  {dm.url}: "
                  f"{shard_stats['cache']['store_entries']} entries, "
                  f"{shard_stats['cache']['cache_hit_rate']:.0%} hits")
    finally:
        for dm in daemons:
            dm.close()

    print("== warm pass: fresh daemons, same store directories")
    daemons = start_daemons(store_dirs)
    try:
        front_end = ShardedOptimizer(
            [RemoteShard(dm.url) for dm in daemons])
        warm = front_end.optimize_fleet(fleet)
        assert warm.cache_hit_rate == 1.0
        print(f"  {warm.cache_hit_rate:.0%} of jobs served from disk over "
              "HTTP — no optimization re-ran")

        print("== store GC by provenance age (POST /compact)")
        for dm in daemons:
            client = OptimizationClient(dm.url)
            kept = client.compact(max_age_seconds=3600)
            purged = client.compact(max_age_seconds=0)
            print(f"  {dm.url}: horizon 1h removed {kept['removed']}, "
                  f"horizon 0 removed {purged['removed']} "
                  f"({purged['store_entries']} left)")
    finally:
        for dm in daemons:
            dm.close()


if __name__ == "__main__":
    main()
