"""Survive a shard host dying mid-batch: failover through the ring.

Three optimization daemons run as separate OS processes — three logical
hosts. One of them is rigged to hard-exit (``os._exit``) the instant a
batch starts running: it accepts work over HTTP, then the "host" dies
mid-batch. The :class:`~repro.service.ShardedOptimizer` front-end
notices (connection refused on the next poll), drops the host from the
batch's consistent-hash ring, re-homes its jobs onto the two survivors,
and still returns one complete, correctly-deduplicated fleet report —
flagged with a ``degraded`` section naming the dead host, the re-homed
jobs, and the retry counts. A second healthy pass over the same fleet
then shows the degraded section disappearing again (byte-faithful happy
path) and the survivors' caches still warm.

Run: ``python examples/failover_fleet.py``
"""

import json
import os
import selectors
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

import repro
from repro.core.spec import OptimizeSpec
from repro.obs import summarize_snapshot
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import (
    OptimizationClient,
    RemoteShard,
    ShardedOptimizer,
    shard_fleet,
)

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: analytic backend: decision-only traces, the whole example runs in s
SPEC = OptimizeSpec(iterations=1, backend="analytic",
                    trace_duration=1.0, trace_warmup=0.25)
NUM_HOSTS = 3

#: one daemon process; argv: store_dir, mode ("serve" | "die"). In
#: "die" mode the optimizer kills the whole process the moment a batch
#: starts running — work accepted over HTTP, host dead mid-batch.
DAEMON_SCRIPT = textwrap.dedent("""
    import os, sys
    from repro.core.spec import OptimizeSpec
    from repro.service import BatchOptimizer, DiskStore, OptimizationDaemon

    spec = OptimizeSpec(iterations=1, backend="analytic",
                        trace_duration=1.0, trace_warmup=0.25)

    class DyingOptimizer(BatchOptimizer):
        def optimize_fleet(self, jobs):
            os._exit(17)

    cls = DyingOptimizer if sys.argv[2] == "die" else BatchOptimizer
    daemon = OptimizationDaemon(
        cls(executor="serial", spec=spec, store=DiskStore(sys.argv[1])))
    daemon.start()
    print(daemon.port, flush=True)
    sys.stdin.read()
    daemon.close()
""")


def start_daemon(store_dir, mode):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", DAEMON_SCRIPT, str(store_dir), mode],
        env=env, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True,
    )
    sel = selectors.DefaultSelector()
    sel.register(proc.stdout, selectors.EVENT_READ)
    try:
        if not sel.select(timeout=60):
            raise RuntimeError("daemon subprocess never printed its port")
    finally:
        sel.close()
    port = int(proc.stdout.readline().strip())
    return proc, f"http://127.0.0.1:{port}"


def stop_daemon(proc):
    if proc.poll() is None:
        try:
            proc.stdin.close()
            proc.wait(timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            proc.kill()
            proc.wait(timeout=30)
    proc.stdout.close()
    proc.stderr.close()


def main():
    fleet = generate_pipeline_fleet(
        num_jobs=12, distinct=4, seed=11,
        config=FleetConfig(optimize_spec=SPEC),  # default §3 domain mix
    )
    # Placement is a pure function of the host set, so we can say in
    # advance which jobs the doomed host holds.
    die_idx = next(i for i, shard in enumerate(shard_fleet(fleet, NUM_HOSTS))
                   if shard)
    doomed = [j.name for j in shard_fleet(fleet, NUM_HOSTS)[die_idx]]
    store_dirs = [tempfile.mkdtemp(prefix=f"repro-failover{i}-")
                  for i in range(NUM_HOSTS)]

    print(f"== {len(fleet)} jobs over {NUM_HOSTS} daemon processes; "
          f"host shard-{die_idx} is rigged to die mid-batch "
          f"(holds {doomed})")
    procs, urls = [], []
    for i, store_dir in enumerate(store_dirs):
        proc, url = start_daemon(
            store_dir, "die" if i == die_idx else "serve")
        procs.append(proc)
        urls.append(url)
        print(f"  shard-{i}: {url}"
              + ("  [rigged to die]" if i == die_idx else ""))

    try:
        front_end = ShardedOptimizer(
            [RemoteShard(OptimizationClient(url, poll_interval=0.02),
                         timeout=120.0) for url in urls],
            shard_timeout=120.0,
        )
        report = front_end.optimize_fleet(fleet)
        print(f"== merged report: {len(report.jobs)} jobs, "
              f"{report.cache_hit_rate:.0%} cache hits — complete "
              "despite the dead host")
        print("== degraded section:")
        print(textwrap.indent(
            json.dumps(report.degraded, indent=2, sort_keys=True), "  "))
        assert sorted(report.degraded["rehomed_jobs"]) == sorted(doomed)
        print(f"  (host shard-{die_idx} exited "
              f"{procs[die_idx].wait(timeout=30)}; its {len(doomed)} "
              "jobs re-homed to survivors)")

        # The failover is also visible on the metrics surface, and the
        # two must agree: counters pin the degraded-report story.
        summary = summarize_snapshot(front_end.metrics.as_dict())
        rehomed_total = summary["repro_shard_rehomed_jobs_total"]
        failures = sum(
            v for k, v in summary.items()
            if k.startswith("repro_shard_failures_total{")
            and f'host="shard-{die_idx}"' in k
        )
        print("== failover counters (front-end metrics):")
        print(f"  repro_shard_rehomed_jobs_total = {rehomed_total:.0f}")
        print(f"  repro_shard_failures_total[shard-{die_idx}] = "
              f"{failures:.0f}")
        assert rehomed_total == len(report.degraded["rehomed_jobs"])
        assert failures >= 1

        print("== healthy pass: same fleet, survivors only")
        survivors = [u for i, u in enumerate(urls) if i != die_idx]
        healthy = ShardedOptimizer(
            [RemoteShard(OptimizationClient(u, poll_interval=0.02))
             for u in survivors])
        second = healthy.optimize_fleet(fleet)
        assert second.degraded is None
        print(f"  degraded section: {second.degraded} "
              f"(byte-faithful happy path), "
              f"{second.cache_hit_rate:.0%} served from warm caches")
    finally:
        for proc in procs:
            stop_daemon(proc)


if __name__ == "__main__":
    main()
