"""Quickstart: build a pipeline, run it for real, and let Plumber fix it.

This walks the paper's Figure 1 flow end to end on a toy dataset:

1. declare an ImageNet-style pipeline with the fluent graph API,
2. execute it *for real* with the in-process executor (actual numpy
   work, element semantics preserved),
3. trace a simulated run and print Plumber's bottleneck report,
4. apply the one-line optimizer and compare before/after throughput.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.core import Plumber, explain
from repro.graph import CostModel, UserFunction, from_tfrecords
from repro.host import setup_a
from repro.inprocess import materialize
from repro.io import toy_catalog
from repro.runtime import run_pipeline


def build_pipeline(catalog):
    """A miniature vision pipeline: parse -> decode -> crop -> batch."""
    parse = UserFunction(
        "parse",
        cost=CostModel(cpu_seconds=1e-4),
        fn=lambda rec: np.full(16, rec[0] * 1000 + rec[1], dtype=np.float32),
    )
    decode = UserFunction(
        "decode",
        cost=CostModel(cpu_seconds=3e-3),  # the expensive op
        size_ratio=6.0,
        fn=lambda x: np.repeat(x, 6),
    )
    crop = UserFunction(
        "crop",
        cost=CostModel(cpu_seconds=3e-4),
        output_bytes=64.0,
        accesses_seed=True,  # random crop: uncacheable past this point
        fn=lambda x: x[:16],
    )
    return (
        from_tfrecords(catalog, parallelism=1, name="source")
        .map(parse, parallelism=1, name="map_parse")
        .map(decode, parallelism=1, name="map_decode")
        .map(crop, parallelism=1, name="map_crop")
        .batch(32, name="batch")
        .prefetch(4, name="prefetch")
        .repeat(None, name="repeat")
        .build("quickstart")
    )


def main():
    catalog = toy_catalog(num_files=16, records_per_file=256,
                          bytes_per_record=50e3)
    pipeline = build_pipeline(catalog)
    machine = setup_a()

    # --- 1. Real execution: the graph runs over actual numpy data. ----
    finite = build_pipeline(catalog)
    batches = materialize(finite, limit=3)
    print(f"in-process executor produced {len(batches)} real batches, "
          f"first batch shape {batches[0].shape}\n")

    # --- 2. Simulated baseline + Plumber's EXPLAIN. -------------------
    plumber = Plumber(machine, trace_duration=2.0, trace_warmup=0.5)
    model = plumber.model(pipeline)
    print(explain(model))
    print()

    # --- 3. One-line optimization. -------------------------------------
    result = plumber.optimize(pipeline)
    for decision in result.decisions:
        print("decision:", decision)

    before = run_pipeline(pipeline, machine, duration=2.0, warmup=0.5,
                          trace=False)
    after = run_pipeline(result.pipeline, machine, duration=2.0, warmup=0.5,
                         trace=False)
    print(f"\nnaive     : {before.examples_per_second:8.0f} examples/s")
    print(f"optimized : {after.examples_per_second:8.0f} examples/s "
          f"({after.throughput / before.throughput:.1f}x)")


if __name__ == "__main__":
    main()
