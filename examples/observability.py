"""Observability tour: pass telemetry, live /metrics, and merging.

The ``repro.obs`` subsystem threads typed instruments — counters,
gauges, and streaming-quantile histograms (p50/p90/p99 in fixed
memory) — through every layer of the stack. This example walks the
three surfaces an operator actually uses:

1. **Per-pass telemetry**: every ``Plumber.optimize`` call reports,
   per optimizer pass and iteration, wallclock, actions taken, and the
   LP's *predicted* gain next to the *realized* gain — the paper's
   "did the model's forecast come true?" question, answered per pass.
2. **A live daemon's ``GET /metrics``**: Prometheus-style text
   exposition of route latencies, admission-lane occupancy, cache
   hit/miss counters, and batch outcomes, straight off a serving
   process.
3. **Snapshot merging**: histogram sketches merge bucket-wise, so a
   sharded front-end can pool per-shard latency distributions into one
   fleet-wide p99 without ever shipping raw samples.

Run: ``python examples/observability.py``
"""

import urllib.request

from repro.core import Plumber
from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.host import setup_a
from repro.obs import Histogram, merge_snapshots, summarize_snapshot
from repro.service import (
    BatchOptimizer,
    OptimizationClient,
    OptimizationDaemon,
    ShardedOptimizer,
)

#: analytic backend: decision-only traces, the whole example runs in ms
SPEC = OptimizeSpec(iterations=1, backend="analytic",
                    trace_duration=1.0, trace_warmup=0.25)


def pass_telemetry_tour():
    print("== 1. per-pass telemetry: predicted vs realized gain")
    fleet = generate_pipeline_fleet(
        num_jobs=1, distinct=1, seed=3,
        config=FleetConfig(domain_weights={"vision": 1.0},
                           optimize_spec=SPEC),
    )
    plumber = Plumber(setup_a(), backend="analytic")
    result = plumber.optimize(fleet[0].pipeline, iterations=1)
    header = (f"  {'pass':<12} {'ms':>7} {'actions':>7} "
              f"{'predicted':>10} {'realized':>9}")
    print(header)
    for entry in result.pass_telemetry:
        predicted = (f"{entry['predicted_gain']:+.1%}"
                     if entry["predicted_gain"] == entry["predicted_gain"]
                     else "-")
        realized = (f"{entry['realized_gain']:+.1%}"
                    if entry["realized_gain"] == entry["realized_gain"]
                    else "-")
        print(f"  {entry['pass']:<12} {entry['seconds'] * 1e3:>7.1f} "
              f"{entry['actions']:>7} {predicted:>10} {realized:>9}")


def live_daemon_tour():
    print("== 2. GET /metrics on a live daemon")
    fleet = generate_pipeline_fleet(
        num_jobs=6, distinct=2, seed=7,
        config=FleetConfig(optimize_spec=SPEC),
    )
    with OptimizationDaemon(
        BatchOptimizer(executor="serial", spec=SPEC)
    ) as daemon:
        client = OptimizationClient(daemon.url)
        client.optimize_fleet(fleet)   # one cold batch
        client.optimize_fleet(fleet)   # and one all-hit batch

        # Text exposition, as a Prometheus scraper would see it.
        with urllib.request.urlopen(f"{daemon.url}/metrics") as resp:
            text = resp.read().decode("utf-8")
        interesting = ("repro_daemon_lane_in_flight{",
                       "repro_service_jobs_total{",
                       "repro_daemon_batches_total{")
        for line in text.splitlines():
            if line.startswith(interesting):
                print(f"  {line}")

        # The same data as a mergeable JSON snapshot.
        _, snapshot, _ = client._request("GET", "/metrics?format=json")
        summary = summarize_snapshot(snapshot)
        optimize = summary['repro_daemon_request_seconds{route="optimize"}']
        print(f"  POST /optimize: {optimize['count']:.0f} requests, "
              f"p50 {optimize['p50'] * 1e3:.2f} ms, "
              f"p99 {optimize['p99'] * 1e3:.2f} ms")
        # The client kept its own books on the same conversation.
        requests = summarize_snapshot(client.metrics.as_dict())
        total = sum(v for k, v in requests.items()
                    if k.startswith("repro_client_requests_total"))
        print(f"  client-side: {total:.0f} requests recorded locally")
        client.close()


def merging_tour():
    print("== 3. merging: fleet-wide quantiles from per-shard sketches")
    fleet = generate_pipeline_fleet(
        num_jobs=12, distinct=4, seed=11,
        config=FleetConfig(optimize_spec=SPEC),
    )
    sharded = ShardedOptimizer([
        BatchOptimizer(executor="serial", spec=SPEC) for _ in range(3)
    ])
    sharded.optimize_fleet(fleet)
    merged = sharded.stats()["metrics"]
    summary = summarize_snapshot(merged)
    jobs = summary['repro_service_job_seconds{backend="analytic"}']
    print(f"  pooled job latency across 3 shards: "
          f"{jobs['count']:.0f} jobs, p50 {jobs['p50'] * 1e3:.2f} ms, "
          f"p99 {jobs['p99'] * 1e3:.2f} ms")

    # The algebra under the hood: sketches merge exactly, bucket-wise.
    a, b = Histogram(), Histogram()
    for v in (1.0, 2.0, 4.0):
        a.observe(v)
    for v in (8.0, 16.0):
        b.observe(v)
    pooled = merge_snapshots([
        {"h": {"kind": "histogram", "help": "",
               "samples": [{"labels": {}, "value": h.to_dict()}]}}
        for h in (a, b)
    ])
    stats = summarize_snapshot(pooled)["h"]
    print(f"  merged sketch: count={stats['count']:.0f} "
          f"min={stats['min']} max={stats['max']} "
          f"p50~{stats['p50']:.2f}")


def main():
    pass_telemetry_tour()
    live_daemon_tour()
    merging_tour()


if __name__ == "__main__":
    main()
