"""Run the optimizer as a persistent service and talk to it over HTTP.

Starts an :class:`~repro.service.OptimizationDaemon` backed by a
disk-persistent result store, submits a small mixed fleet as serialized
programs via ``POST /optimize``, polls ``GET /jobs/<id>``, fetches the
finished report, and prints ``GET /stats``. A second daemon pointed at
the same cache directory then serves the identical fleet entirely from
disk — the cheap, repeatable optimization service the paper argues for.

Run: ``python examples/service_daemon.py``
"""

import json
import tempfile
import time
import urllib.request

from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.graph.serialize import pipeline_to_dict
from repro.service import BatchOptimizer, DiskStore, OptimizationDaemon


def call(url, body=None):
    """One JSON request against the daemon (stdlib only)."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method="POST" if body else "GET",
                                 headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.load(resp)


def submit_and_wait(base, fleet, spec):
    """POST a fleet of serialized programs, poll until done, return report."""
    body = {
        "spec": spec.to_dict(),
        "jobs": [
            {"name": job.name,
             "pipeline": pipeline_to_dict(job.pipeline),
             "machine": job.machine.to_dict()}
            for job in fleet
        ],
    }
    accepted = call(f"{base}/optimize", body)
    print(f"submitted {accepted['jobs']} jobs as {accepted['id']} "
          f"(status: {accepted['status']})")
    while True:
        status = call(f"{base}/jobs/{accepted['id']}")
        if status["status"] in ("done", "failed"):
            break
        time.sleep(0.05)
    assert status["status"] == "done", status
    return call(f"{base}/report/{accepted['id']}")


def main():
    spec = OptimizeSpec(iterations=1, backend="analytic",
                        trace_duration=1.0, trace_warmup=0.25)
    fleet = generate_pipeline_fleet(
        num_jobs=12, distinct=4, seed=11,
        config=FleetConfig(optimize_spec=spec),  # default §3 domain mix
    )
    cache_dir = tempfile.mkdtemp(prefix="repro-daemon-cache-")

    print("== first daemon process (cold disk cache)")
    with OptimizationDaemon(
        BatchOptimizer(executor="thread", max_workers=4, spec=spec,
                       store=DiskStore(cache_dir)),
    ) as daemon:
        report = submit_and_wait(daemon.url, fleet, spec)
        for job in report["jobs"][:4]:
            print(f"  {job['name']}: speedup "
                  f"{job['speedup'] and round(job['speedup'], 2)}x, "
                  f"bottleneck {job['bottleneck']}, "
                  f"{'hit' if job['cache_hit'] else 'miss'} "
                  f"(producer: {job['provenance']['producer']})")
        print(f"  ... {len(report['jobs'])} jobs, "
              f"{report['cache_hit_rate']:.0%} cache hits")
        stats = call(f"{daemon.url}/stats")
        print(f"  stats: {stats['cache']['store_entries']} entries on disk, "
              f"in-flight {stats['in_flight_jobs']}, "
              f"rejected {stats['rejected_batches']}")

    print("== second daemon process (warm disk cache, fresh service)")
    with OptimizationDaemon(
        BatchOptimizer(executor="thread", max_workers=4, spec=spec,
                       store=DiskStore(cache_dir)),
    ) as daemon:
        report = submit_and_wait(daemon.url, fleet, spec)
        print(f"  {report['cache_hit_rate']:.0%} of jobs served from the "
              "persistent store — no optimization re-ran")
        assert report["cache_hit_rate"] == 1.0


if __name__ == "__main__":
    main()
