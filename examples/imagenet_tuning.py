"""Diagnose and tune the paper's ResNet/ImageNet pipeline (§5.1, §5.4).

Reproduces the interactive debugging loop of Figure 6 on Setup A, then
the end-to-end TPU-host comparison of Figure 10: naive vs AUTOTUNE vs
HEURISTIC vs Plumber (which adds a cache at the source and wins).

Run: ``python examples/imagenet_tuning.py``
"""

from repro.analysis.experiments import end_to_end, sequential_tuning
from repro.analysis.tables import format_table
from repro.core import Plumber, explain
from repro.host import setup_a, setup_c
from repro.workloads import get_workload


def main():
    # --- Interactive bottleneck hunting on the 16-core desktop. -------
    machine = setup_a()
    pipeline = get_workload("resnet").build(scale=0.05)

    print("Step-by-step tuning (one parallelism bump per step):")
    run = sequential_tuning(pipeline, machine, steps=12)
    rows = [
        (s.step, s.target or "-", f"{s.observed:.1f}", f"{s.lp_estimate:.1f}")
        for s in run.steps
    ]
    print(format_table(("step", "bumped node", "observed mb/s",
                        "LP bound mb/s"), rows))
    print()

    # What does Plumber say about the tuned pipeline?
    plumber = Plumber(machine, trace_duration=2.0, trace_warmup=0.5)
    model = plumber.model(pipeline)
    print(explain(model))
    print()

    # --- End-to-end on the TPU host (Setup C). -------------------------
    print("End-to-end on Setup C (96 cores, cloud storage, ResNet-18 "
          "model cap ~12.7k img/s):")
    row = end_to_end(get_workload("resnet18", end_to_end=True), setup_c())
    rel = row.relative()
    print(format_table(
        ("config", "images/s", "speedup over naive"),
        [
            ("naive", f"{row.naive:.0f}", "1.0x"),
            ("AUTOTUNE", f"{row.autotune:.0f}", f"{rel.autotune:.1f}x"),
            ("HEURISTIC", f"{row.heuristic:.0f}", f"{rel.heuristic:.1f}x"),
            ("Plumber", f"{row.plumber:.0f}", f"{rel.plumber:.1f}x"),
        ],
    ))
    print("\nPlumber reaches the accelerator's rate by caching the "
          "source in memory, bypassing the cloud-storage bound that "
          "caps the other tuners.")


if __name__ == "__main__":
    main()
