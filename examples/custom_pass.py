"""Writing a custom optimizer pass and driving it through the registry.

The optimizer is a pass pipeline: each pass is an object with a ``name``
and a ``plan(ctx)`` method returning rewrite :class:`Action`\\ s, and
``Plumber.optimize`` is a generic driver that applies whatever passes
the :class:`OptimizeSpec` names. This example:

1. registers a custom ``widen_source`` pass that raises source
   parallelism to the LP's recommended stream count,
2. shows the built-in ``fuse`` pass collapsing a stack of adjacent
   prefetch buffers a hand-tuner left behind,
3. runs both alongside the standard passes via one ``OptimizeSpec``.

Run: ``python examples/custom_pass.py``
"""

import math

from repro.core import OptimizeSpec, Plumber, SetParallelism, register_pass
from repro.core.lp import solve_allocation
from repro.graph import CostModel, UserFunction, from_tfrecords
from repro.host import setup_a
from repro.io import toy_catalog


class WidenSourcePass:
    """Raise every source's parallelism to the LP's stream count."""

    name = "widen_source"

    def plan(self, ctx):
        lp = ctx.lp or solve_allocation(ctx.model)
        plan = {}
        for name, streams in lp.io_streams.items():
            want = max(1, math.ceil(streams))
            node = ctx.pipeline.node(name)
            if node.tunable and node.effective_parallelism < want:
                plan[name] = want
        if not plan:
            return []
        return [SetParallelism(
            plan=plan,
            description=f"iter{ctx.iteration}: widen sources {plan}",
        )]


def build_pipeline(catalog):
    """A hand-"tuned" pipeline with a redundant prefetch stack."""
    decode = UserFunction("decode", cost=CostModel(cpu_seconds=2e-3),
                          size_ratio=4.0)
    return (
        from_tfrecords(catalog, parallelism=1, name="source")
        .map(decode, parallelism=1, name="map_decode")
        .batch(32, name="batch")
        .prefetch(2, name="prefetch_small")   # stacked buffers: pure
        .prefetch(8, name="prefetch_big")     # iterator overhead
        .repeat(None, name="repeat")
        .build("custom_pass_demo")
    )


def main():
    try:
        register_pass(WidenSourcePass())
    except ValueError:
        pass  # already registered on re-run in the same interpreter

    catalog = toy_catalog(num_files=16, records_per_file=256,
                          bytes_per_record=50e3)
    pipeline = build_pipeline(catalog)
    machine = setup_a()

    spec = OptimizeSpec(
        passes=("fuse", "parallelism", "widen_source", "prefetch", "cache"),
        iterations=1,
        backend="analytic",       # decision-only speed
        trace_duration=2.0,
        trace_warmup=0.5,
    )
    result = Plumber(machine, spec=spec).optimize(pipeline)

    for decision in result.decisions:
        print("decision:", decision)
    kept = [n for n in result.pipeline.nodes if n.startswith("prefetch")]
    print(f"\nprefetch nodes after fuse: {kept}")
    print(f"bottleneck: {result.bottleneck}")
    print(f"speedup over the hand-tuned baseline: {result.speedup:.1f}x")


if __name__ == "__main__":
    main()
