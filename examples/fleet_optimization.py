"""Optimize a whole fleet of pipelines through the batch service.

Generates a fleet of named jobs stamped from a few templates (production
fleets re-launch the same training program constantly), drives every job
through Plumber's trace→analyze→optimize loop on a worker pool, and
prints the aggregate report: per-job speedups, the bottleneck histogram,
and the signature-cache hit rate.

Run: ``python examples/fleet_optimization.py``
"""

import time

from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import BatchOptimizer


def main():
    fleet = generate_pipeline_fleet(
        num_jobs=30,
        distinct=8,
        seed=11,
        config=FleetConfig(domain_weights={"vision": 1.0}),
    )
    print(f"generated {len(fleet)} jobs from 8 templates\n")

    service = BatchOptimizer(
        executor="thread",
        max_workers=4,
        iterations=1,
        trace_duration=3.0,
        trace_warmup=0.5,
    )
    t0 = time.time()
    report = service.optimize_fleet(fleet)
    elapsed = time.time() - t0

    print(report.to_table())
    print()
    print(report.summary_table())
    print(f"\noptimized {len(report.jobs)} jobs in {elapsed:.1f}s wallclock "
          f"({report.cache_misses} actual optimizations, "
          f"{report.cache_hit_rate:.0%} served from the signature cache)")

    # Re-submitting the fleet is free: every signature is now cached.
    again = service.optimize_fleet(fleet)
    print(f"re-submission: {again.cache_hits}/{len(again.jobs)} cache hits")


if __name__ == "__main__":
    main()
