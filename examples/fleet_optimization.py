"""Optimize a whole fleet of pipelines through the batch service.

Generates a mixed vision+NLP+RL fleet of named jobs stamped from a few
templates (production fleets re-launch the same training program
constantly), drives every job through Plumber's trace→analyze→optimize
loop on a worker pool, and prints the aggregate report: per-job
speedups, the bottleneck histogram, and the signature-cache hit rate.

The whole optimizer configuration is one ``OptimizeSpec``. Here it
selects the ``"adaptive"`` trace backend: every job is first modelled
with the closed-form analytic fast path, and only the jobs whose
bottleneck attribution is ambiguous pay for a discrete-event
simulation — the fleet-scale policy the per-trace backends exist for.

Run: ``python examples/fleet_optimization.py``
"""

import time

from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.runtime import resolve_backend
from repro.service import BatchOptimizer, OptimizeSpec


def main():
    spec = OptimizeSpec(
        iterations=1,
        trace_duration=3.0,
        trace_warmup=0.5,
        backend="adaptive",
    )
    fleet = generate_pipeline_fleet(
        num_jobs=30,
        distinct=8,
        seed=11,
        config=FleetConfig(optimize_spec=spec),  # default §3 domain mix
    )
    domains = sorted({j.domain for j in fleet})
    print(f"generated {len(fleet)} jobs from 8 templates "
          f"(domains: {', '.join(domains)})\n")

    service = BatchOptimizer(executor="thread", max_workers=4, spec=spec)
    # The registry's adaptive backend logs its routing decisions
    # in-process; snapshot the log so the report below covers only this
    # run. (With executor="process" the decisions land in the workers'
    # registry copies instead, so the report would be empty.)
    adaptive = resolve_backend("adaptive")
    seen_before = len(adaptive.decisions)
    t0 = time.time()
    report = service.optimize_fleet(fleet)
    elapsed = time.time() - t0

    print(report.to_table())
    print()
    print(report.summary_table())
    print(f"\noptimized {len(report.jobs)} jobs in {elapsed:.1f}s wallclock "
          f"({report.cache_misses} actual optimizations, "
          f"{report.cache_hit_rate:.0%} served from the signature cache)")

    # How often did the adaptive policy trust the analytic fast path?
    decisions = adaptive.decisions[seen_before:]
    if decisions:
        analytic = sum(1 for d in decisions if d.chosen == "analytic")
        print(f"adaptive backend: {analytic}/{len(decisions)} traces "
              "served analytically, the rest simulated")

    # Re-submitting the fleet is free: every signature is now cached.
    again = service.optimize_fleet(fleet)
    print(f"re-submission: {again.cache_hits}/{len(again.jobs)} cache hits")


if __name__ == "__main__":
    main()
