"""Reproduce the §3 fleet study on a synthetic job population.

Generates thousands of jobs (random pipelines, hosts, accelerators),
measures each with the operational model, and prints the Figure 3
latency quantiles and the Figure 4 utilization breakdown.

Run: ``python examples/fleet_analysis.py``
"""

from repro.analysis.tables import format_table
from repro.fleet import FleetConfig, generate_fleet, summarize
from repro.fleet.analysis import latency_cdf


def main():
    jobs = generate_fleet(FleetConfig(num_jobs=4000, seed=7))
    summary = summarize(jobs)

    print(format_table(
        ("threshold", "paper", "this fleet"),
        [
            (">50us", "92%", f"{summary.frac_over_50us:.0%}"),
            (">1ms", "62%", f"{summary.frac_over_1ms:.0%}"),
            (">100ms", "16%", f"{summary.frac_over_100ms:.0%}"),
        ],
        title="Figure 3 — jobs whose mean Next latency exceeds t",
    ))
    print()
    print(format_table(
        ("latency band", "jobs", "mean CPU", "mean mem-bw"),
        [
            (b.label, b.jobs, f"{b.mean_cpu:.0%}", f"{b.mean_membw:.0%}")
            for b in summary.bands
        ],
        title="Figure 4 — host utilization by band (Obs. 2: software, "
              "not hardware, is the bottleneck)",
    ))
    print()
    print("latency CDF sample points:")
    for latency, q in latency_cdf(jobs, points=9):
        print(f"  {q:4.0%} of jobs below {latency * 1e3:10.3f} ms")
    print(f"\n{summary.frac_input_bound:.0%} of jobs are input-bound "
          "(the pipeline is slower than the accelerator).")


if __name__ == "__main__":
    main()
