"""Tests for the discrete-event engine primitives."""

import pytest

from repro.host.disk import DiskSpec, token_bucket
from repro.runtime.engine import (
    EOS,
    Compute,
    CoreScheduler,
    FairShareDisk,
    Get,
    Put,
    SimQueue,
    Simulation,
    SimulationError,
    Timeout,
)
from repro.runtime.vector import VectorSimulation

#: Both engines must honor the same event-ordering contract; the
#: ordering tests below run against each. (VectorSimulation normalizes
#: zero-delay callbacks to exactly one positional argument — ``None``
#: when scheduled with no args — so shared callbacks take ``_=None``.)
ENGINES = [Simulation, VectorSimulation]
ENGINE_IDS = ["reference", "vectorized"]

engines = pytest.mark.parametrize("sim_cls", ENGINES, ids=ENGINE_IDS)


class TestEventLoop:
    def test_timeouts_advance_clock(self):
        sim = Simulation()
        log = []

        def proc():
            yield Timeout(1.0)
            log.append(sim.now)
            yield Timeout(2.0)
            log.append(sim.now)

        sim.spawn(proc())
        sim.run(10.0)
        assert log == [1.0, 3.0]

    def test_run_stops_at_until(self):
        sim = Simulation()

        def proc():
            while True:
                yield Timeout(1.0)

        sim.spawn(proc())
        assert sim.run(5.5) == 5.5
        assert sim.now == 5.5

    def test_run_returns_early_when_drained(self):
        sim = Simulation()

        def proc():
            yield Timeout(2.0)

        sim.spawn(proc())
        assert sim.run(100.0) == 2.0

    @engines
    def test_deterministic_ordering_at_same_time(self, sim_cls):
        sim = sim_cls()
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(1.0, lambda: log.append("b"))
        sim.run(2.0)
        assert log == ["a", "b"]

    @engines
    def test_negative_delay_rejected(self, sim_cls):
        with pytest.raises(SimulationError):
            sim_cls().schedule(-1.0, lambda: None)

    @engines
    def test_zero_delay_bypasses_heap(self, sim_cls):
        """Batched resume scheduling: same-timestamp events live in the
        ready deque, not the heap (the hot-path optimization)."""
        sim = sim_cls()
        sim.schedule(0.0, lambda _=None: None)
        assert not sim._heap
        assert len(sim._ready) == 1
        sim.schedule(0.5, lambda: None)
        assert len(sim._heap) == 1

    @engines
    def test_same_timestamp_resumes_drain_in_insertion_order(self, sim_cls):
        sim = sim_cls()
        log = []
        for tag in ("a", "b", "c"):
            sim.schedule(0.0, log.append, tag)
        sim.run(1.0)
        assert log == ["a", "b", "c"]

    @engines
    def test_timed_events_precede_resumes_born_at_their_timestamp(
            self, sim_cls):
        """Determinism contract: a heap entry due at time t was scheduled
        before the clock reached t, so it must run before any zero-delay
        event created *at* t — exactly the insertion-sequence order the
        pure-heap loop had."""
        sim = sim_cls()
        log = []

        def first_at_t():
            log.append("timed1")
            sim.schedule(0.0, log.append, "ready")

        sim.schedule(1.0, first_at_t)
        sim.schedule(1.0, log.append, "timed2")
        sim.run(2.0)
        assert log == ["timed1", "timed2", "ready"]

    @engines
    def test_ready_chain_drains_before_clock_advances(self, sim_cls):
        sim = sim_cls()
        log = []

        def chain(depth):
            log.append((sim.now, depth))
            if depth > 0:
                sim.schedule(0.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.schedule(1.0, log.append, "later")
        sim.run(2.0)
        assert log == [(0.0, 3), (0.0, 2), (0.0, 1), (0.0, 0), "later"]

    @engines
    def test_ready_drains_even_when_heap_is_empty(self, sim_cls):
        sim = sim_cls()
        log = []
        sim.schedule(0.0, log.append, "only")
        sim.run(10.0)
        assert log == ["only"]
        assert sim.now == 0.0

    def test_unknown_request_rejected(self):
        sim = Simulation()

        def proc():
            yield "nonsense"

        sim.spawn(proc())
        with pytest.raises(SimulationError, match="unknown request"):
            sim.run(1.0)


class TestSimQueue:
    def _sim(self):
        return Simulation()

    def test_fifo_order(self):
        sim = self._sim()
        q = SimQueue(sim, capacity=10)
        received = []

        def producer():
            for i in range(5):
                yield Put(q, i)

        def consumer():
            for _ in range(5):
                item = yield Get(q)
                received.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run(1.0)
        assert received == [0, 1, 2, 3, 4]

    def test_capacity_blocks_producer(self):
        sim = self._sim()
        q = SimQueue(sim, capacity=2)
        produced = []

        def producer():
            for i in range(5):
                yield Put(q, i)
                produced.append(sim.now)

        sim.spawn(producer())
        sim.run(1.0)
        # Only 2 items fit; the third put blocks forever (no consumer).
        assert len(produced) == 2

    def test_get_blocks_until_put(self):
        sim = self._sim()
        q = SimQueue(sim, capacity=2)
        got = []

        def consumer():
            item = yield Get(q)
            got.append((sim.now, item))

        def producer():
            yield Timeout(3.0)
            yield Put(q, "late")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run(10.0)
        assert got == [(3.0, "late")]

    def test_close_wakes_getters_with_eos(self):
        sim = self._sim()
        q = SimQueue(sim, capacity=2)
        got = []

        def consumer():
            item = yield Get(q)
            got.append(item)

        sim.spawn(consumer())
        sim.schedule(1.0, q.close)
        sim.run(5.0)
        assert got == [EOS]

    def test_closed_queue_drains_items_first(self):
        sim = self._sim()
        q = SimQueue(sim, capacity=5)
        got = []

        def producer():
            yield Put(q, 1)
            yield Put(q, 2)
            q.close()

        def consumer():
            while True:
                item = yield Get(q)
                got.append(item)
                if item is EOS:
                    return

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run(1.0)
        assert got == [1, 2, EOS]

    def test_put_after_close_rejected(self):
        sim = self._sim()
        q = SimQueue(sim, capacity=1)
        q.close()

        def producer():
            yield Put(q, 1)

        sim.spawn(producer())
        with pytest.raises(SimulationError, match="closed"):
            sim.run(1.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SimQueue(self._sim(), capacity=0)

    def test_mean_occupancy_tracks(self):
        sim = self._sim()
        q = SimQueue(sim, capacity=10)

        def producer():
            yield Put(q, 1)
            yield Timeout(10.0)

        sim.spawn(producer())
        sim.run(10.0)
        assert q.mean_occupancy() == pytest.approx(1.0, rel=0.05)

    def test_mean_occupancy_of_queue_created_mid_run(self):
        """Regression: the occupancy integral is divided by time since the
        queue was *created*, not the absolute clock — a queue born at t=90
        holding one item for 10s has mean occupancy 1, not 0.1."""
        sim = self._sim()
        sim.schedule(90.0, lambda: None)
        sim.run(95.0)  # advance the clock before the queue exists
        q = SimQueue(sim, capacity=10)

        def producer():
            yield Put(q, 1)
            yield Timeout(10.0)

        sim.spawn(producer())
        sim.run(200.0)
        assert q.mean_occupancy() == pytest.approx(1.0, rel=0.05)

    def test_close_wakes_blocked_putter_with_eos(self):
        """Regression: a producer parked in ``_putters`` at close() used to
        be leaked forever; it must resume and observe EOS."""
        sim = self._sim()
        q = SimQueue(sim, capacity=1)
        observed = []

        def producer():
            result = yield Put(q, "fits")
            observed.append(result)
            result = yield Put(q, "blocks")  # queue full -> parked
            observed.append(result)

        sim.spawn(producer())
        sim.schedule(1.0, q.close)
        sim.run(5.0)
        assert observed == [None, EOS]
        # The pending item was discarded, not enqueued after close.
        assert list(q.items) == ["fits"]

    def test_put_telemetry_counters(self):
        sim = self._sim()
        q = SimQueue(sim, capacity=10)

        def producer():
            for i in range(4):
                yield Put(q, i)

        def consumer():
            yield Timeout(1.0)
            for _ in range(2):
                yield Get(q)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run(5.0)
        assert q.total_puts == 4
        assert q.total_gets == 2
        assert q.peak_occupancy == 4


class TestCoreScheduler:
    def test_serial_on_one_core(self):
        sim = Simulation()
        sim.cores = CoreScheduler(sim, capacity=1)
        done = []

        def worker(tag):
            yield Compute(1.0)
            done.append((tag, sim.now))

        sim.spawn(worker("a"))
        sim.spawn(worker("b"))
        sim.run(10.0)
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_parallel_on_two_cores(self):
        sim = Simulation()
        sim.cores = CoreScheduler(sim, capacity=2)
        done = []

        def worker(tag):
            yield Compute(1.0)
            done.append((tag, sim.now))

        sim.spawn(worker("a"))
        sim.spawn(worker("b"))
        sim.run(10.0)
        assert [t for _, t in done] == [1.0, 1.0]

    def test_wide_request_waits_for_width(self):
        sim = Simulation()
        sim.cores = CoreScheduler(sim, capacity=2)
        done = []

        def narrow():
            yield Compute(1.0, width=1.0)
            done.append(("narrow", sim.now))

        def wide():
            yield Compute(1.0, width=2.0)
            done.append(("wide", sim.now))

        sim.spawn(narrow())
        sim.spawn(wide())
        sim.run(10.0)
        # Wide must wait for the narrow job to release its core.
        assert dict(done)["wide"] == pytest.approx(2.0)

    def test_oversubscription_penalty_inflates(self):
        sim = Simulation()
        sim.cores = CoreScheduler(
            sim, capacity=2, oversubscription_penalty=0.1, total_threads=6.0
        )
        # threads/capacity = 3 -> penalty = 1 + 0.1 * 2 = 1.2
        assert sim.cores.penalty == pytest.approx(1.2)
        done = []

        def worker():
            yield Compute(1.0)
            done.append(sim.now)

        sim.spawn(worker())
        sim.run(10.0)
        assert done == [pytest.approx(1.2)]

    def test_no_penalty_when_undersubscribed(self):
        sim = Simulation()
        sim.cores = CoreScheduler(
            sim, capacity=8, oversubscription_penalty=0.1, total_threads=4.0
        )
        assert sim.cores.penalty == 1.0

    def test_utilization(self):
        sim = Simulation()
        sim.cores = CoreScheduler(sim, capacity=2)

        def worker():
            yield Compute(5.0)

        sim.spawn(worker())
        sim.run(10.0)
        # 5 core-seconds on 2 cores over 10 seconds = 25%.
        assert sim.cores.utilization(10.0) == pytest.approx(0.25)

    def test_zero_compute_is_instant(self):
        sim = Simulation()
        sim.cores = CoreScheduler(sim, capacity=1)
        done = []

        def worker():
            yield Compute(0.0)
            done.append(sim.now)

        sim.spawn(worker())
        sim.run(1.0)
        assert done == [0.0]


class TestTelemetryWindowConsistency:
    """Regression tests for the ``mean_occupancy``/``utilization``
    normalization fix: both divide their time integral by elapsed time
    since *creation*, and both fold the partial window up to the current
    clock into the integral first — so a ``run(until=)`` that stops
    mid-window reports the same telemetry as one stopping on an event
    boundary at the same instant."""

    def test_utilization_defaults_to_elapsed_since_creation(self):
        sim = Simulation()
        sim.cores = CoreScheduler(sim, capacity=2)

        def worker():
            yield Compute(5.0)

        sim.spawn(worker())
        # The event supply drains at t=5, so run() returns early and
        # elapsed-since-creation is 5s: one core of two busy the whole
        # elapsed window = 50%.
        assert sim.run(10.0) == 5.0
        assert sim.cores.utilization() == pytest.approx(0.5)
        # Default == explicit duration of the elapsed window.
        assert sim.cores.utilization() == pytest.approx(
            sim.cores.utilization(sim.now)
        )
        # A caller-chosen wider window still normalizes against it.
        assert sim.cores.utilization(10.0) == pytest.approx(0.25)

    def test_utilization_mid_window_stop_counts_busy_tail(self):
        """Stopping at t=4 inside a 5-core-second compute must count the
        4 busy seconds already elapsed — not 0 (the pre-fix behavior of
        an integral that only folded on event boundaries) and not the
        full 5."""
        sim = Simulation()
        sim.cores = CoreScheduler(sim, capacity=1)

        def worker():
            yield Compute(5.0)

        sim.spawn(worker())
        assert sim.run(4.0) == 4.0  # mid-window: no event at t=4
        assert sim.cores.utilization() == pytest.approx(1.0)
        assert sim.cores.utilization(4.0) == pytest.approx(1.0)

    def test_utilization_of_scheduler_created_mid_run(self):
        """Same convention as SimQueue.mean_occupancy: a scheduler born
        at t=90 that is busy for its whole 10s life is 100% utilized,
        not 10%."""
        sim = Simulation()
        sim.schedule(90.0, lambda: None)
        sim.run(95.0)
        sim.cores = CoreScheduler(sim, capacity=1)

        def worker():
            yield Compute(10.0)

        sim.spawn(worker())
        sim.run(200.0)
        assert sim.cores.utilization() == pytest.approx(1.0)

    def test_mean_occupancy_mid_window_stop_counts_tail(self):
        """One item parked in the queue from t=0; stopping mid-window at
        t=7 (no event there) must still integrate the full 7 seconds of
        occupancy, matching a stop on the t=10 event boundary."""
        sim = Simulation()
        q = SimQueue(sim, capacity=4)

        def producer():
            yield Put(q, 1)
            yield Timeout(10.0)

        sim.spawn(producer())
        assert sim.run(7.0) == 7.0
        assert q.mean_occupancy() == pytest.approx(1.0)

    def test_queue_and_cores_agree_on_the_window(self):
        """The two surfaces use one convention: with an item resident and
        a core busy over the same span, both report 1.0 regardless of
        where ``until`` lands."""
        for until in (3.0, 4.5, 6.0):
            sim = Simulation()
            sim.cores = CoreScheduler(sim, capacity=1)
            q = SimQueue(sim, capacity=4)

            def producer():
                yield Put(q, 1)
                yield Compute(6.0)

            sim.spawn(producer())
            sim.run(until)
            assert q.mean_occupancy() == pytest.approx(1.0), until
            assert sim.cores.utilization() == pytest.approx(1.0), until


class TestFairShareDisk:
    def test_single_read_duration(self):
        sim = Simulation()
        sim.disk = FairShareDisk(sim, token_bucket(100.0))
        done = []

        def reader():
            from repro.runtime.engine import Read

            yield Read(200.0)
            done.append(sim.now)

        sim.spawn(reader())
        sim.run(10.0)
        assert done == [pytest.approx(2.0)]

    def test_fair_sharing_halves_rate(self):
        from repro.runtime.engine import Read

        sim = Simulation()
        sim.disk = FairShareDisk(sim, token_bucket(100.0))
        done = []

        def reader(tag):
            yield Read(100.0)
            done.append((tag, sim.now))

        sim.spawn(reader("a"))
        sim.spawn(reader("b"))
        sim.run(10.0)
        # Two concurrent 100-byte reads at 100 B/s total -> both at t=2.
        assert [t for _, t in done] == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_parallelism_curve_scales_bandwidth(self):
        from repro.runtime.engine import Read

        spec = DiskSpec("d", curve=((1.0, 100.0), (2.0, 200.0)))
        sim = Simulation()
        sim.disk = FairShareDisk(sim, spec)
        done = []

        def reader(tag):
            yield Read(100.0)
            done.append(sim.now)

        sim.spawn(reader("a"))
        sim.spawn(reader("b"))
        sim.run(10.0)
        # Two streams unlock 200 B/s aggregate -> 100 B/s each -> t=1.
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_read_latency_added(self):
        from repro.runtime.engine import Read

        spec = DiskSpec("d", curve=((1.0, 100.0),), read_latency=0.5)
        sim = Simulation()
        sim.disk = FairShareDisk(sim, spec)
        done = []

        def reader():
            yield Read(100.0)
            done.append(sim.now)

        sim.spawn(reader())
        sim.run(10.0)
        assert done == [pytest.approx(1.5)]

    def test_total_bytes_tracked(self):
        from repro.runtime.engine import Read

        sim = Simulation()
        sim.disk = FairShareDisk(sim, token_bucket(1e6))

        def reader():
            yield Read(123.0)
            yield Read(877.0)

        sim.spawn(reader())
        sim.run(10.0)
        assert sim.disk.total_bytes == pytest.approx(1000.0)

    def test_zero_read_is_instant(self):
        from repro.runtime.engine import Read

        sim = Simulation()
        sim.disk = FairShareDisk(sim, token_bucket(1.0))
        done = []

        def reader():
            yield Read(0.0)
            done.append(sim.now)

        sim.spawn(reader())
        sim.run(1.0)
        assert done == [0.0]

    def test_many_tiny_reads_terminate(self):
        """Regression: float underflow must not livelock completions."""
        from repro.runtime.engine import Read

        sim = Simulation()
        sim.disk = FairShareDisk(sim, token_bucket(1e9))
        count = [0]

        def reader():
            for _ in range(200):
                yield Read(0.1)
            count[0] += 1

        for _ in range(3):
            sim.spawn(reader())
        sim.run(10.0)
        assert count[0] == 3
