"""Tests for bottleneck ranking and the sequential tuner (§5.1)."""

import pytest

from repro.core.bottleneck import (
    SequentialTuner,
    local_estimate,
    rank_bottlenecks,
    throughput_estimates,
)
from repro.core.plumber import Plumber
from tests.test_core_lp import two_stage_pipeline
from tests.test_core_rates import model_of


class TestRanking:
    def test_heavy_map_ranked_first(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        ranked = rank_bottlenecks(model)
        assert ranked[0].name == "m_heavy"
        scaled = [r.scaled_rate for r in ranked]
        assert scaled == sorted(scaled)

    def test_parallelism_changes_ranking(self, small_catalog, test_machine):
        from repro.core.rewriter import set_parallelism

        pipe = two_stage_pipeline(small_catalog)
        # m_heavy is 10x m_cheap per element: at p=16 its aggregate rate
        # exceeds the cheap map's p=1 rate and the ranking must flip.
        boosted = set_parallelism(pipe, {"m_heavy": 16})
        model = model_of(boosted, test_machine)
        ranked = rank_bottlenecks(model)
        assert ranked[0].name == "m_cheap"


class TestEstimates:
    def test_local_cannot_see_past_next_bottleneck(
        self, small_catalog, test_machine
    ):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        local = local_estimate(model)
        # Boosting only m_heavy leaves m_cheap's current cap binding.
        assert local <= model.rates["m_cheap"].scaled_rate * 1.05

    def test_lp_exceeds_local_from_naive_start(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        report = throughput_estimates(model)
        assert report.lp_estimate >= report.local_estimate * 0.99
        assert report.bottleneck.name == "m_heavy"


class TestSequentialTuner:
    def test_converges_toward_lp_throughput(self, small_catalog, test_machine):
        plumber = Plumber(test_machine, trace_duration=1.5, trace_warmup=0.3)

        tuner = SequentialTuner(plumber.model, core_budget=test_machine.cores)
        pipe = two_stage_pipeline(small_catalog)
        observed = []
        for _ in range(10):
            pipe, model = tuner.step(pipe)
            observed.append(model.observed_throughput)
        # Throughput improves substantially over the naive start.
        assert observed[-1] > observed[0] * 2
        # The tuner spent most steps on the heavy map.
        heavy_steps = tuner.history.count("m_heavy")
        assert heavy_steps >= tuner.history.count("m_cheap")

    def test_respects_core_budget(self, small_catalog, test_machine):
        plumber = Plumber(test_machine, trace_duration=1.0, trace_warmup=0.2)
        tuner = SequentialTuner(plumber.model, core_budget=6)
        pipe = two_stage_pipeline(small_catalog)
        for _ in range(12):
            pipe, _ = tuner.step(pipe)
        total = sum(n.effective_parallelism for n in pipe.tunables())
        assert total <= 6
        assert "<budget>" in tuner.history
