"""Tests for the Plumber LP (§4.3)."""

import math

import pytest

from repro.core.lp import solve_allocation
from repro.graph.builder import from_tfrecords
from tests.conftest import make_udf
from tests.test_core_rates import model_of


def two_stage_pipeline(catalog, cheap=1e-4, expensive=1e-3):
    return (
        from_tfrecords(catalog, parallelism=2, name="src")
        .map(make_udf("cheap", cpu=cheap), parallelism=1, name="m_cheap")
        .map(make_udf("heavy", cpu=expensive), parallelism=1, name="m_heavy")
        .batch(16, name="b")
        .prefetch(4, name="pf")
        .repeat(None, name="r")
        .build("two_stage")
    )


class TestLP:
    def test_allocates_proportional_to_cost(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        sol = solve_allocation(model)
        # The 10x-more-expensive map should get ~10x the cores.
        ratio = sol.theta["m_heavy"] / sol.theta["m_cheap"]
        assert ratio == pytest.approx(10.0, rel=0.15)

    def test_throughput_bounded_by_cores(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        sol = solve_allocation(model)
        # Upper bound: cores / (cpu-seconds per minibatch).
        per_mb = 16 * (1e-4 + 1e-3)
        assert sol.predicted_throughput <= test_machine.cores / per_mb * 1.05
        assert sol.predicted_throughput > 0

    def test_theta_sums_within_budget(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        sol = solve_allocation(model)
        assert sum(sol.theta.values()) <= test_machine.cores * (1 + 1e-6)

    def test_sequential_nodes_capped_at_one(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .shuffle(64, cpu_seconds_per_element=1e-4, name="shuf")
            .batch(16, name="b")
            .prefetch(4, name="pf")
            .repeat(None, name="r")
            .build("seq")
        )
        model = model_of(pipe, test_machine)
        sol = solve_allocation(model)
        assert sol.theta["shuf"] <= 1.0 + 1e-9

    def test_core_budget_parameter(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        full = solve_allocation(model, cores=8)
        half = solve_allocation(model, cores=4)
        assert half.predicted_throughput == pytest.approx(
            full.predicted_throughput / 2, rel=0.05
        )

    def test_rejects_nonpositive_budget(self, small_catalog, test_machine):
        from repro.core.lp import LPError

        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        with pytest.raises(LPError):
            solve_allocation(model, cores=0)

    def test_disk_constraint_binds(self, small_catalog, test_machine):
        from repro.host.disk import token_bucket

        slow = test_machine.with_disk(token_bucket(1e6))  # 1 MB/s
        pipe = two_stage_pipeline(small_catalog)
        model = model_of(pipe, slow)
        sol = solve_allocation(model)
        # 16 x 10 KB per minibatch at 1 MB/s -> ~6.25 mb/s ceiling.
        assert sol.predicted_throughput <= 6.25 * 1.1
        assert sol.bottleneck.startswith("disk:")

    def test_io_streams_minimal(self, small_catalog, test_machine):
        """Degeneracy penalty keeps stream vars off their upper bound."""
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        sol = solve_allocation(model)
        for streams in sol.io_streams.values():
            assert streams < 64

    def test_bottleneck_is_heavy_map(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        sol = solve_allocation(model)
        assert sol.bottleneck == "m_heavy"

    def test_prediction_bounded_vs_observation(self, small_catalog, test_machine):
        """Obs. 4: the LP bound is an over-estimate but within ~2x once
        contention is visible (naive start: within ~4x)."""
        from repro.core.plumber import Plumber

        pipe = two_stage_pipeline(small_catalog)
        plumber = Plumber(test_machine, trace_duration=2.0, trace_warmup=0.5)
        res = plumber.optimize(pipe, passes=("parallelism",), iterations=2)
        observed = res.model.observed_throughput
        predicted = solve_allocation(res.model).predicted_throughput
        assert predicted >= observed * 0.95
        assert predicted <= observed * 2.0


class TestParallelismPlan:
    def test_plan_is_integral_and_positive(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        sol = solve_allocation(model)
        plan = sol.parallelism_plan(model, allocate_remaining=False)
        for name, p in plan.items():
            assert isinstance(p, int) and p >= 1, name

    def test_allocate_remaining_boosts_bottleneck(
        self, small_catalog, test_machine
    ):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        sol = solve_allocation(model)
        conservative = sol.parallelism_plan(model, allocate_remaining=False)
        greedy = sol.parallelism_plan(model, allocate_remaining=True)
        assert greedy["m_heavy"] >= conservative["m_heavy"]
        assert sum(greedy.values()) <= test_machine.cores + len(greedy)

    def test_leftover_accounts_for_sequential_theta(
        self, small_catalog, test_machine
    ):
        """Regression: leftover-core handout must subtract θ consumed by
        sequential (non-tunable) CPU nodes, or the bottleneck is granted
        cores the machine doesn't have."""
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("heavy", cpu=1e-3), parallelism=1, name="m_heavy")
            # Expensive sequential stage: its θ approaches a full core.
            .shuffle(64, cpu_seconds_per_element=9e-4, name="shuf")
            .batch(16, name="b")
            .prefetch(4, name="pf")
            .repeat(None, name="r")
            .build("seq_heavy")
        )
        model = model_of(pipe, test_machine)
        sol = solve_allocation(model)
        plan = sol.parallelism_plan(model, allocate_remaining=True)
        seq_theta = sum(
            th for name, th in sol.theta.items()
            if name not in {n.name for n in model.pipeline.tunables()}
        )
        assert seq_theta > 0.5  # the sequential stage really is busy
        assert sum(plan.values()) + seq_theta <= sol.cores + 1e-6
