"""Property and concurrency tests for the ``repro.obs`` metrics core.

The Histogram is a streaming sketch, so its contract is statistical:
hypothesis drives the three guarantees (rank-quantile relative-error
bound, merge == pooled observation, JSON round-trip), and a threaded
hammer pins that registry snapshots stay internally consistent while
writers are mid-flight.
"""

from __future__ import annotations

import json
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    merge_snapshots,
    render_text,
    reset_global_registry,
    summarize_snapshot,
)

finite_values = st.floats(
    min_value=-1e9, max_value=1e9,
    allow_nan=False, allow_infinity=False,
)
sample_lists = st.lists(finite_values, min_size=1, max_size=200)


def _rank_value(samples, q):
    ordered = sorted(samples)
    return ordered[math.floor(q * (len(ordered) - 1))]


def _within_relative(estimate, exact, relative_error):
    # fp slack on top of the sketch's guarantee: log/pow round-trips in
    # bucket math can push the estimate a hair past the exact bound.
    tolerance = relative_error * abs(exact) * 1.0001 + 1e-9
    return abs(estimate - exact) <= tolerance


# ----------------------------------------------------------------------
# Histogram properties
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(samples=sample_lists, q=st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.99, 1.0]))
def test_quantile_within_relative_error_of_rank_value(samples, q):
    hist = Histogram(relative_error=0.01)
    for value in samples:
        hist.observe(value)
    exact = _rank_value(samples, q)
    estimate = hist.quantile(q)
    assert _within_relative(estimate, exact, hist.relative_error), (
        f"quantile({q})={estimate} vs exact rank value {exact}"
    )


@settings(max_examples=200, deadline=None)
@given(left=sample_lists, right=sample_lists)
def test_merge_equals_pooled_observation(left, right):
    a = Histogram(relative_error=0.01)
    b = Histogram(relative_error=0.01)
    pooled = Histogram(relative_error=0.01)
    for value in left:
        a.observe(value)
        pooled.observe(value)
    for value in right:
        b.observe(value)
        pooled.observe(value)
    a.merge(b)

    # Bucket state is integer counts, so it must match exactly; the
    # running sum differs only by float associativity.
    assert a.to_dict()["pos"] == pooled.to_dict()["pos"]
    assert a.to_dict()["neg"] == pooled.to_dict()["neg"]
    assert a.to_dict()["zero"] == pooled.to_dict()["zero"]
    assert a.count == pooled.count
    assert a.to_dict()["min"] == pooled.to_dict()["min"]
    assert a.to_dict()["max"] == pooled.to_dict()["max"]
    assert a.sum == pytest.approx(pooled.sum, rel=1e-9, abs=1e-9)
    for q in (0.5, 0.9, 0.99):
        assert a.quantile(q) == pooled.quantile(q)


@settings(max_examples=200, deadline=None)
@given(samples=sample_lists)
def test_snapshot_round_trips_through_json(samples):
    hist = Histogram(relative_error=0.02)
    for value in samples:
        hist.observe(value)
    revived = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
    assert revived.to_dict() == hist.to_dict()
    for q in (0.0, 0.5, 0.99, 1.0):
        assert revived.quantile(q) == hist.quantile(q)


def test_histogram_bounded_memory_under_collapse():
    hist = Histogram(relative_error=0.01, max_buckets=16)
    for exponent in range(400):
        hist.observe(1.0001 ** exponent * 1e-6 * (10 ** (exponent % 12)))
    state = hist.to_dict()
    assert len(state["pos"]) <= 16
    assert state["count"] == 400
    # Collapse folds low buckets upward: the top quantile stays honest.
    assert _within_relative(hist.quantile(1.0), state["max"], 0.01)


def test_histogram_rejects_mismatched_merge_and_bad_values():
    hist = Histogram(relative_error=0.01)
    with pytest.raises(ValueError):
        hist.merge(Histogram(relative_error=0.05))
    with pytest.raises(ValueError):
        hist.merge(hist)
    with pytest.raises(TypeError):
        hist.merge("not a histogram")
    with pytest.raises(ValueError):
        hist.observe(math.nan)
    with pytest.raises(ValueError):
        hist.observe(math.inf)
    assert math.isnan(hist.quantile(0.5))  # empty sketch


def test_histogram_time_context_uses_injected_clock():
    ticks = iter([10.0, 12.5])
    registry = MetricsRegistry(clock=lambda: next(ticks))
    hist = registry.histogram("test_seconds")
    with hist.time():
        pass
    assert hist.count == 1
    assert hist.sum == pytest.approx(2.5)


# ----------------------------------------------------------------------
# Counter / Gauge / registry semantics
# ----------------------------------------------------------------------
def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("jobs_total")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)

    gauge = registry.gauge("depth")
    gauge.set(7)
    gauge.dec(2)
    assert gauge.value == 5


def test_labels_create_distinct_cells_and_unlabeled_stays_hidden():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total")
    counter.labels(route="/stats").inc()
    counter.labels(route="/stats").inc()
    counter.labels(route="/metrics").inc()
    samples = registry.as_dict()["requests_total"]["samples"]
    by_route = {s["labels"].get("route"): s["value"] for s in samples}
    # The unlabeled cell was never written: only labeled children emit.
    assert by_route == {"/stats": 2, "/metrics": 1}

    counter.inc()  # now the unlabeled cell appears too
    samples = registry.as_dict()["requests_total"]["samples"]
    assert {tuple(s["labels"].items()) for s in samples} == {
        (), (("route", "/stats"),), (("route", "/metrics"),),
    }


def test_registry_get_or_create_and_kind_mismatch():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        registry.counter("")
    assert registry.get("x").value == 0
    assert registry.get("missing") is None
    assert registry.names() == ("x",)


def test_global_registry_reset_isolation():
    first = global_registry()
    first.counter("leak_total").inc()
    fresh = reset_global_registry()
    assert fresh is global_registry()
    assert fresh.get("leak_total") is None


# ----------------------------------------------------------------------
# Snapshot-level operations
# ----------------------------------------------------------------------
def _populated_registry(scale):
    registry = MetricsRegistry()
    registry.counter("hits_total").inc(3 * scale)
    registry.gauge("lane_in_flight").labels(lane="analytic").set(scale)
    hist = registry.histogram("request_seconds")
    for i in range(1, 11):
        hist.labels(route="/stats").observe(i * 0.01 * scale)
    return registry


def test_merge_snapshots_sums_scalars_and_pools_histograms():
    merged = merge_snapshots([
        _populated_registry(1).as_dict(),
        _populated_registry(2).as_dict(),
        {},
    ])
    flat = summarize_snapshot(merged)
    assert flat["hits_total"] == 9
    assert flat['lane_in_flight{lane="analytic"}'] == 3
    pooled = flat['request_seconds{route="/stats"}']
    assert pooled["count"] == 20
    assert pooled["min"] == pytest.approx(0.01)
    assert pooled["max"] == pytest.approx(0.2)

    with pytest.raises(TypeError):
        merge_snapshots([
            {"x": {"kind": "counter", "help": "", "samples": []}},
            {"x": {"kind": "gauge", "help": "", "samples": []}},
        ])


def test_render_text_exposition_shape():
    registry = _populated_registry(1)
    text = registry.render_text()
    assert "# TYPE hits_total counter" in text
    assert "hits_total 3.0" in text
    assert '# TYPE lane_in_flight gauge' in text
    assert 'lane_in_flight{lane="analytic"} 1.0' in text
    # Histograms render as summaries: quantile series + _sum/_count.
    assert "# TYPE request_seconds summary" in text
    assert 'request_seconds{quantile="0.5",route="/stats"}' in text
    assert 'request_seconds_count{route="/stats"} 10.0' in text
    assert text.endswith("\n")


def test_render_text_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("odd_total").labels(path='a"b\\c\nd').inc()
    line = [l for l in registry.render_text().splitlines()
            if l.startswith("odd_total{")][0]
    assert '\\"' in line and "\\\\" in line and "\\n" in line


# ----------------------------------------------------------------------
# Concurrency: snapshots stay internally consistent under writers
# ----------------------------------------------------------------------
def test_snapshot_consistency_under_concurrent_writers():
    registry = MetricsRegistry()
    stop = threading.Event()
    errors = []

    def writer(worker_id):
        counter = registry.counter("ops_total")
        hist = registry.histogram("op_seconds")
        gauge = registry.gauge("busy")
        i = 0
        while not stop.is_set():
            counter.labels(worker=str(worker_id)).inc()
            hist.observe((i % 50 + 1) * 1e-3)
            gauge.set(i % 7)
            i += 1

    def checker():
        try:
            while not stop.is_set():
                snap = registry.as_dict()
                for family in snap.values():
                    if family["kind"] != "histogram":
                        continue
                    for sample in family["samples"]:
                        state = sample["value"]
                        bucketed = (sum(state["pos"].values())
                                    + sum(state["neg"].values())
                                    + state["zero"])
                        # The family lock makes count and buckets move
                        # together: a torn read would break this.
                        if bucketed != state["count"]:
                            errors.append(
                                f"count {state['count']} != buckets {bucketed}"
                            )
                        if state["count"] and not (
                                state["min"] <= state["p50"] <= state["max"]):
                            errors.append("quantile outside [min, max]")
                json.dumps(snap)  # snapshot must always be serializable
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(repr(exc))

    writers = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    checkers = [threading.Thread(target=checker) for _ in range(2)]
    for thread in writers + checkers:
        thread.start()
    threading.Event().wait(0.5)
    stop.set()
    for thread in writers + checkers:
        thread.join(timeout=10)
    assert not errors, errors[:5]

    final = registry.as_dict()
    total = sum(s["value"] for s in final["ops_total"]["samples"]
                if s["labels"])
    assert total == final["op_seconds"]["samples"][0]["value"]["count"]
