"""Shard-fabric fault tolerance: failover, quarantine, drain, taxonomy.

The acceptance bar (ISSUE): a 3-shard fleet with one host killed
mid-batch still returns a complete, correctly-deduplicated merged
report — flagged ``degraded`` with the failed host and the re-homed
jobs — and a zero-fault fleet's report is byte-identical to the
pre-failover format (no ``degraded`` key anywhere). Timing-dependent
distributed failures are made deterministic by the scripted harness in
:mod:`tests.faults`.
"""

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import (
    BatchOptimizer,
    ClientError,
    ClientTimeout,
    OptimizationClient,
    OptimizationDaemon,
    RemoteShard,
    ShardDispatchError,
    ShardSaturated,
    ShardTimeout,
    ShardUnreachable,
    ShardedOptimizer,
    shard_fleet,
)
from repro.service.client import fleet_to_body
from tests.faults import (
    FaultyHTTPServer,
    FlakyShard,
    close_mid_response,
    maybe_dump_degraded,
    ok,
    refused_port,
    stall,
    storm_429,
)
from tests.test_service_remote import _DaemonProcess, _read_port

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

FAST_SPEC = OptimizeSpec(iterations=1, backend="analytic",
                         trace_duration=1.0, trace_warmup=0.25)


def make_fleet(num_jobs=12, distinct=4, seed=5):
    return generate_pipeline_fleet(
        num_jobs=num_jobs, distinct=distinct, seed=seed,
        config=FleetConfig(domain_weights={"vision": 1.0},
                           optimize_spec=FAST_SPEC),
    )


def make_optimizers(n):
    return [BatchOptimizer(executor="serial", spec=FAST_SPEC)
            for _ in range(n)]


def occupied_indices(fleet, num_shards):
    return [i for i, shard in enumerate(shard_fleet(fleet, num_shards))
            if shard]


# ----------------------------------------------------------------------
# Satellite (a): every shard failure is reported, not just the first.
# ----------------------------------------------------------------------
class TestAllFailuresReported:
    def test_every_failing_shard_appears_in_the_error(self):
        """Regression: the old dispatch loop propagated the first
        ``f.result()`` exception and dropped the others on the floor.
        With three shards failing three different ways, the error must
        carry all of them."""

        class Boom:
            def __init__(self, msg):
                self.msg = msg

            def optimize_fleet(self, jobs):
                raise RuntimeError(self.msg)

            def stats(self):
                return {}

        fleet = make_fleet()
        occupied = occupied_indices(fleet, 3)
        assert len(occupied) == 3  # fixture precondition: all shards used
        sharded = ShardedOptimizer(
            [Boom("alpha exploded"), Boom("beta exploded"),
             Boom("gamma exploded")])
        with pytest.raises(ShardDispatchError) as excinfo:
            sharded.optimize_fleet(fleet)
        err = excinfo.value
        assert set(err.failures) == {"shard-0", "shard-1", "shard-2"}
        for fragment in ("alpha exploded", "beta exploded",
                         "gamma exploded"):
            assert fragment in str(err)

    def test_dispatch_error_is_a_runtime_error(self):
        """Back-compat: callers catching RuntimeError keep working."""
        assert issubclass(ShardDispatchError, RuntimeError)


# ----------------------------------------------------------------------
# Tentpole: retryable failures re-home through the ring.
# ----------------------------------------------------------------------
class TestFailover:
    def test_retryable_failure_rehomes_jobs_and_flags_degraded(self):
        fleet = make_fleet()
        die_idx = occupied_indices(fleet, 3)[0]
        die_host = f"shard-{die_idx}"
        lost_jobs = [j.name for j in shard_fleet(fleet, 3)[die_idx]]
        inner = make_optimizers(3)
        shards = list(inner)
        shards[die_idx] = FlakyShard(
            inner[die_idx], failures=1,
            exc_factory=lambda: ShardUnreachable(
                die_host, "connection refused"),
        )
        sharded = ShardedOptimizer(shards)

        merged = sharded.optimize_fleet(fleet)

        # Complete and correct despite the mid-batch failure.
        assert [j.name for j in merged.jobs] == [j.name for j in fleet]
        reference = BatchOptimizer(
            executor="serial", spec=FAST_SPEC).optimize_fleet(fleet)
        assert [j.optimized_throughput for j in merged.jobs] == \
               [j.optimized_throughput for j in reference.jobs]
        assert merged.cache_misses == reference.cache_misses

        # ... and honestly flagged degraded.
        degraded = merged.degraded
        assert degraded is not None
        assert degraded["redispatch_rounds"] == 1
        (failure,) = degraded["failed_shards"]
        assert failure["host"] == die_host
        assert failure["kind"] == "ShardUnreachable"
        assert failure["retryable"] is True
        assert sorted(failure["jobs"]) == sorted(lost_jobs)
        assert sorted(degraded["rehomed_jobs"]) == sorted(lost_jobs)
        for record in degraded["rehomed_jobs"].values():
            assert record["from"] == die_host
            assert record["to"] != die_host
            assert record["attempts"] == 1
            assert record["completed"] is True

        # The metrics surface tells the same story as the degraded
        # section — the two are pinned to agree.
        summary = sharded.metrics.summary()
        assert summary["repro_shard_rehomed_jobs_total"] == len(lost_jobs)
        assert summary["repro_shard_redispatch_rounds_total"] == \
            degraded["redispatch_rounds"]
        assert summary[
            "repro_shard_failures_total"
            f'{{host="{die_host}",kind="ShardUnreachable"}}'] == 1.0

    def test_zero_fault_fleet_has_no_degraded_section(self):
        merged = ShardedOptimizer(
            make_optimizers(3)).optimize_fleet(make_fleet())
        assert merged.degraded is None

    def test_stalled_shard_is_abandoned_at_the_deadline(self):
        """The bare blocking f.result() this PR replaces would hang the
        whole batch forever on one wedged host."""
        fleet = make_fleet()
        stall_idx = occupied_indices(fleet, 3)[0]
        release = threading.Event()

        class StalledShard:
            def __init__(self, inner):
                self.inner = inner

            def optimize_fleet(self, jobs):
                release.wait(20)  # wedged far past the deadline
                return self.inner.optimize_fleet(jobs)

            def stats(self):
                return self.inner.stats()

        inner = make_optimizers(3)
        shards = list(inner)
        shards[stall_idx] = StalledShard(inner[stall_idx])
        sharded = ShardedOptimizer(shards, shard_timeout=0.4)
        try:
            start = time.perf_counter()
            merged = sharded.optimize_fleet(fleet)
            elapsed = time.perf_counter() - start
        finally:
            release.set()  # unwedge the abandoned dispatcher thread
        assert elapsed < 10  # did not wait out the 20s stall
        assert [j.name for j in merged.jobs] == [j.name for j in fleet]
        (failure,) = merged.degraded["failed_shards"]
        assert failure["kind"] == "ShardTimeout"
        assert failure["host"] == f"shard-{stall_idx}"

    def test_non_retryable_failure_surfaces_immediately(self):
        """A deterministic failure (bad batch) must not bounce around
        the ring — it would fail identically on every host."""
        fleet = make_fleet()
        bad_idx = occupied_indices(fleet, 3)[0]
        inner = make_optimizers(3)
        shards = list(inner)
        shards[bad_idx] = FlakyShard(
            inner[bad_idx], failures=10,
            exc_factory=lambda: ValueError("malformed batch"),
        )
        sharded = ShardedOptimizer(shards)
        with pytest.raises(ShardDispatchError, match="malformed batch"):
            sharded.optimize_fleet(fleet)
        # one attempt, no retries: non-retryable means give up at once
        assert shards[bad_idx].dispatch_calls == 1

    def test_every_host_failing_exhausts_the_ring(self):
        fleet = make_fleet()
        inner = make_optimizers(3)
        shards = [
            FlakyShard(opt, failures=10,
                       exc_factory=lambda i=i: ShardUnreachable(
                           f"shard-{i}", "gone"))
            for i, opt in enumerate(inner)
        ]
        sharded = ShardedOptimizer(shards)
        with pytest.raises(ShardDispatchError,
                           match="no surviving hosts|re-dispatch budget"):
            sharded.optimize_fleet(fleet)

    def test_quarantine_then_readmission(self):
        """A host that keeps failing is quarantined out of routing (so
        later batches never even try it), then re-admitted the moment a
        probe sees it healthy again."""
        fleet = make_fleet()
        sick_idx = occupied_indices(fleet, 3)[0]
        sick_host = f"shard-{sick_idx}"
        inner = make_optimizers(3)
        shards = list(inner)
        flaky = FlakyShard(
            inner[sick_idx], failures=2, stats_error=True,
            exc_factory=lambda: ShardUnreachable(sick_host, "down"),
        )
        shards[sick_idx] = flaky
        sharded = ShardedOptimizer(shards, quarantine_after=1)

        # Batch 1: the sick host fails once -> quarantined immediately.
        first = sharded.optimize_fleet(fleet)
        assert first.degraded is not None
        assert sharded.quarantined == (sick_host,)
        assert sick_host not in sharded.ring

        # Batch 2: the host is still down (its probe fails), so routing
        # avoids it entirely — no fault, no degraded section.
        second = sharded.optimize_fleet(fleet)
        assert second.degraded is None
        assert sharded.quarantined == (sick_host,)

        # The host heals; the next membership probe re-admits it.
        flaky.failures_left = 0
        health = sharded.probe()
        assert health[sick_host] is True
        assert sharded.quarantined == ()
        assert sick_host in sharded.ring
        third = sharded.optimize_fleet(fleet)
        assert third.degraded is None
        assert [j.name for j in third.jobs] == [j.name for j in fleet]

        # The quarantine/re-admission cycle left its trace on the
        # metrics surface, agreeing with the membership history above.
        summary = sharded.metrics.summary()
        assert summary[
            f'repro_shard_quarantines_total{{host="{sick_host}"}}'] == 1.0
        assert summary[
            f'repro_shard_readmissions_total{{host="{sick_host}"}}'] == 1.0

    def test_all_hosts_quarantined_fails_fast(self):
        fleet = make_fleet()
        shards = [
            FlakyShard(opt, failures=99, stats_error=True,
                       exc_factory=lambda i=i: ShardUnreachable(
                           f"shard-{i}", "gone"))
            for i, opt in enumerate(make_optimizers(3))
        ]
        sharded = ShardedOptimizer(shards, quarantine_after=1)
        with pytest.raises(ShardDispatchError):
            sharded.optimize_fleet(fleet)
        assert sharded.quarantined == ("shard-0", "shard-1", "shard-2")
        with pytest.raises(ShardDispatchError, match="no healthy"):
            sharded.optimize_fleet(fleet)


# ----------------------------------------------------------------------
# Satellite (b): stats() survives an unreachable shard.
# ----------------------------------------------------------------------
class TestStatsDegraded:
    def test_stats_survive_unreachable_shard(self):
        fleet = make_fleet()
        inner = make_optimizers(3)
        ShardedOptimizer(inner).optimize_fleet(fleet)  # warm the stores

        shards = list(inner)
        shards[1] = FlakyShard(
            inner[1], failures=1, stats_error=True,
            exc_factory=lambda: ShardUnreachable("shard-1", "down"),
        )
        stats = ShardedOptimizer(shards).stats()
        by_host = {s["host"]: s for s in stats["shards"]}
        assert "error" in by_host["shard-1"]
        assert "ConnectionError" in by_host["shard-1"]["error"]
        assert stats["unreachable_shards"] == ["shard-1"]
        # Aggregates cover the reachable shards only.
        reachable_hits = sum(
            s["cache_hits"] for h, s in by_host.items() if h != "shard-1")
        assert stats["cache_hits"] == reachable_hits
        assert stats["store_entries"] == sum(
            s["store_entries"] for h, s in by_host.items()
            if h != "shard-1")


# ----------------------------------------------------------------------
# RemoteShard taxonomy under scripted transport faults.
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestRemoteShardTaxonomy:
    def test_connection_refused_is_unreachable(self):
        shard = RemoteShard(f"http://127.0.0.1:{refused_port()}",
                            probe_timeout=1.0)
        with pytest.raises(ShardUnreachable):
            shard.optimize_fleet([])

    def test_mid_response_close_is_unreachable(self):
        with FaultyHTTPServer(
                {("GET", "/ready"): close_mid_response()}) as server:
            shard = RemoteShard(server.url, probe_timeout=2.0)
            with pytest.raises(ShardUnreachable):
                shard.optimize_fleet([])
            assert ("GET", "/ready") in server.requests

    def test_indefinite_stall_is_a_timeout(self, small_catalog):
        """Ready answers, then the submit stalls forever: the client's
        deadline turns it into ShardTimeout (not a hang)."""
        from tests.test_service import small_pipeline
        with FaultyHTTPServer({
            ("GET", "/ready"): ok({"ready": True}),
            ("POST", "/optimize"): stall(),
        }) as server:
            client = OptimizationClient(server.url, timeout=0.5)
            shard = RemoteShard(client)
            start = time.perf_counter()
            with pytest.raises(ShardTimeout):
                shard.optimize_fleet(
                    [("job", small_pipeline(small_catalog))])
            assert time.perf_counter() - start < 10

    def test_429_storm_past_retry_budget_is_saturated(self, small_catalog):
        from tests.test_service import small_pipeline
        with FaultyHTTPServer({
            ("GET", "/ready"): ok({"ready": True}),
            ("POST", "/optimize"): storm_429(retry_after=0.0),
        }) as server:
            client = OptimizationClient(server.url, max_retries=2,
                                        sleep=lambda s: None)
            shard = RemoteShard(client)
            with pytest.raises(ShardSaturated):
                shard.optimize_fleet(
                    [("job", small_pipeline(small_catalog))])
            storms = [r for r in server.requests
                      if r == ("POST", "/optimize")]
            assert len(storms) == 3  # initial + the 2-retry budget

    def test_draining_daemon_is_unreachable(self):
        """A draining host's 503 re-homes its jobs instead of failing
        the batch — the other half of graceful drain."""
        with FaultyHTTPServer({
            ("GET", "/ready"): ok(
                {"ready": False, "draining": True,
                 "reason": "draining: finishing in-flight work"},
                status=503),
        }) as server:
            shard = RemoteShard(server.url)
            with pytest.raises(ShardUnreachable, match="draining"):
                shard.optimize_fleet([])


# ----------------------------------------------------------------------
# Satellite (c): typed ClientTimeout + per-call probe timeouts.
# ----------------------------------------------------------------------
class TestClientTimeout:
    def test_wait_raises_typed_timeout(self):
        with FaultyHTTPServer({
            ("GET", "/jobs/b1"): ok({"id": "b1", "status": "running",
                                     "jobs": 1, "lanes": {}}),
        }) as server:
            ticks = iter(range(0, 1000, 10))  # each clock() call +10s
            client = OptimizationClient(
                server.url, sleep=lambda s: None,
                clock=lambda: float(next(ticks)),
            )
            with pytest.raises(ClientTimeout, match="still 'running'"):
                client.wait("b1", timeout=30.0)

    def test_client_timeout_is_a_client_error(self):
        """Back-compat: except ClientError still catches timeouts."""
        assert issubclass(ClientTimeout, ClientError)

    @pytest.mark.chaos
    def test_check_ready_per_call_timeout_overrides_budget(self):
        """A probe against a stalled daemon costs the probe timeout,
        not the client's 30s request budget."""
        with FaultyHTTPServer({("GET", "/ready"): stall()}) as server:
            client = OptimizationClient(server.url, timeout=30.0)
            start = time.perf_counter()
            with pytest.raises(ClientTimeout):
                client.check_ready(timeout=0.3)
            assert time.perf_counter() - start < 5

    def test_check_health_alias_and_override(self):
        with FaultyHTTPServer({
            ("GET", "/healthz"): ok({"status": "ok"}),
        }) as server:
            client = OptimizationClient(server.url)
            assert client.check_health(timeout=1.0) == {"status": "ok"}
            assert client.health() == {"status": "ok"}


# ----------------------------------------------------------------------
# Tentpole: daemon graceful drain + self-care GC.
# ----------------------------------------------------------------------
class SlowOptimizer(BatchOptimizer):
    """A BatchOptimizer whose batches take a scripted minimum time —
    long enough to observe the daemon draining around them."""

    def __init__(self, delay, **kwargs):
        super().__init__(**kwargs)
        self.delay = delay

    def optimize_fleet(self, jobs):
        time.sleep(self.delay)
        return super().optimize_fleet(jobs)


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_refuses_new_work(self):
        fleet = make_fleet(num_jobs=4, distinct=2)
        daemon = OptimizationDaemon(
            SlowOptimizer(1.5, executor="serial", spec=FAST_SPEC),
            drain_timeout_seconds=30.0,
        ).start()
        client = OptimizationClient(daemon.url)
        accepted = client.submit(fleet)

        closer = threading.Thread(target=daemon.close, daemon=True)
        closer.start()
        deadline = time.monotonic() + 5
        while not daemon._draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert daemon._draining

        # /ready flips to 503 with the draining hint...
        with pytest.raises(ClientError) as excinfo:
            client.check_ready()
        assert excinfo.value.status == 503
        assert "draining" in str(excinfo.value)
        # ... new submissions are refused with a structured hint...
        status, payload, _ = client._request(
            "POST", "/optimize", fleet_to_body(fleet, spec=FAST_SPEC))
        assert status == 503
        assert payload["draining"] is True
        assert "draining" in payload["error"]
        # ... while status polling keeps answering for in-flight work.
        assert client.status(accepted["id"])["status"] in (
            "queued", "running")
        # ... and /metrics keeps serving mid-drain: observability lasts
        # to the final request, and the drain itself is visible.
        status, snapshot, _ = client._request(
            "GET", "/metrics?format=json")
        assert status == 200
        assert snapshot["repro_daemon_draining"]["samples"][0]["value"] == 1

        closer.join(timeout=30)
        assert not closer.is_alive()
        # The in-flight batch completed during the drain window and its
        # report survived the shutdown.
        assert daemon.job_status(accepted["id"])["status"] == "done"
        report = daemon.report_json(accepted["id"])
        assert [j["name"] for j in report["jobs"]] == \
               [j.name for j in fleet]
        assert "degraded" not in report  # clean run: byte-faithful
        # A *fresh* connection is refused — the listener is gone. (The
        # old keep-alive socket may drain its last answers; that's the
        # point of graceful shutdown.)
        client.close()
        with pytest.raises(ClientError):
            client.health(timeout=1.0)

    def test_drain_deadline_abandons_stuck_batches(self):
        fleet = make_fleet(num_jobs=2, distinct=1)
        daemon = OptimizationDaemon(
            SlowOptimizer(10.0, executor="serial", spec=FAST_SPEC),
            drain_timeout_seconds=0.3,
        ).start()
        client = OptimizationClient(daemon.url)
        accepted = client.submit(fleet)
        start = time.perf_counter()
        daemon.close(wait=True)
        assert time.perf_counter() - start < 5  # deadline, not 10s
        assert daemon.job_status(accepted["id"])["status"] != "done"

    def test_restart_after_drain_accepts_work_again(self):
        fleet = make_fleet(num_jobs=2, distinct=1)
        daemon = OptimizationDaemon(
            BatchOptimizer(executor="serial", spec=FAST_SPEC))
        with daemon:
            OptimizationClient(daemon.url).optimize_fleet(fleet)
        daemon.start()
        try:
            client = OptimizationClient(daemon.url)
            assert client.check_ready()["ready"] is True
            report = client.optimize_fleet(fleet)
            assert report.cache_hit_rate == 1.0  # store survived
        finally:
            daemon.close()

    def test_sigterm_handler_installs_only_in_main_thread(self):
        daemon = OptimizationDaemon(
            BatchOptimizer(executor="serial", spec=FAST_SPEC))
        previous = signal.getsignal(signal.SIGTERM)
        try:
            assert daemon.install_sigterm_handler() is True
            assert signal.getsignal(signal.SIGTERM) is not previous
        finally:
            signal.signal(signal.SIGTERM, previous)
        results = []
        worker = threading.Thread(
            target=lambda: results.append(daemon.install_sigterm_handler()))
        worker.start()
        worker.join()
        assert results == [False]

    @pytest.mark.chaos
    def test_sigterm_drains_a_live_daemon_process(self, tmp_path):
        """End to end: SIGTERM to a daemon subprocess exits 0 after a
        graceful drain, not with a killed-process status."""
        script = textwrap.dedent("""
            import sys, time
            from repro.core.spec import OptimizeSpec
            from repro.service import (BatchOptimizer, DiskStore,
                                       OptimizationDaemon)
            spec = OptimizeSpec(iterations=1, backend="analytic",
                                trace_duration=1.0, trace_warmup=0.25)
            daemon = OptimizationDaemon(
                BatchOptimizer(executor="serial", spec=spec,
                               store=DiskStore(sys.argv[1])))
            daemon.start()
            assert daemon.install_sigterm_handler()
            print(daemon.port, flush=True)
            while True:
                time.sleep(0.1)
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path / "store")],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            port = _read_port(proc)
            client = OptimizationClient(f"http://127.0.0.1:{port}")
            assert client.check_ready()["ready"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()


class TestGcSweep:
    def test_run_gc_sweep_compacts_by_provenance_age(self):
        tick = [0.0]
        optimizer = BatchOptimizer(executor="serial", spec=FAST_SPEC,
                                   clock=lambda: tick[0])
        daemon = OptimizationDaemon(
            optimizer,
            compact_interval_seconds=3600.0,  # thread never fires in-test
            compact_max_age_seconds=1800.0,
        )
        optimizer.optimize_fleet(make_fleet(num_jobs=6, distinct=3))
        assert len(optimizer.store) == 3
        assert daemon.run_gc_sweep() == 0  # entries are brand new
        tick[0] += 3600.0
        assert daemon.run_gc_sweep() == 3  # all past the horizon now
        assert len(optimizer.store) == 0
        gc = daemon.stats()["gc"]
        assert gc["sweeps"] == 2 and gc["removed"] == 3
        assert gc["interval_seconds"] == 3600.0
        assert gc["max_age_seconds"] == 1800.0

    def test_periodic_sweep_thread_compacts_on_its_own(self):
        optimizer = BatchOptimizer(executor="serial", spec=FAST_SPEC)
        optimizer.optimize_fleet(make_fleet(num_jobs=4, distinct=2))
        assert len(optimizer.store) == 2
        daemon = OptimizationDaemon(
            optimizer,
            compact_interval_seconds=0.05,
            compact_max_age_seconds=0.0,  # everything is old enough
        ).start()
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if len(optimizer.store) == 0 and daemon.gc_sweeps >= 1:
                    break
                time.sleep(0.02)
            assert len(optimizer.store) == 0
            assert daemon.gc_sweeps >= 1
        finally:
            daemon.close()

    def test_sweep_never_kills_the_daemon(self):
        class BrokenStoreOptimizer:
            def compact_store(self, max_age_seconds):
                raise OSError("store directory vanished")

        from repro.obs import MetricsRegistry

        daemon = OptimizationDaemon.__new__(OptimizationDaemon)
        daemon.optimizer = BrokenStoreOptimizer()
        daemon._compact_max_age = 0.0
        daemon._lock = threading.Lock()
        daemon.gc_sweeps = 0
        daemon.gc_removed = 0
        daemon.metrics = MetricsRegistry()
        assert daemon.run_gc_sweep() == 0
        assert daemon.gc_sweeps == 1


# ----------------------------------------------------------------------
# The acceptance e2e: kill one of three daemon processes mid-batch.
# ----------------------------------------------------------------------
#: like test_service_remote's DAEMON_SCRIPT, plus a "die" mode whose
#: optimizer hard-exits the process the moment a batch starts running —
#: the daemon accepts work over HTTP, then the host dies mid-batch.
FAILOVER_DAEMON_SCRIPT = textwrap.dedent("""
    import os, sys
    from repro.core.spec import OptimizeSpec
    from repro.service import BatchOptimizer, DiskStore, OptimizationDaemon

    spec = OptimizeSpec(iterations=1, backend="analytic",
                        trace_duration=1.0, trace_warmup=0.25)

    class DyingOptimizer(BatchOptimizer):
        def optimize_fleet(self, jobs):
            os._exit(17)  # the host dies mid-batch, work accepted

    cls = DyingOptimizer if sys.argv[2] == "die" else BatchOptimizer
    daemon = OptimizationDaemon(
        cls(executor="serial", spec=spec, store=DiskStore(sys.argv[1])))
    daemon.start()
    print(daemon.port, flush=True)
    sys.stdin.read()
    daemon.close()
""")


class _FailoverDaemon(_DaemonProcess):
    def __init__(self, store_dir, mode):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-c", FAILOVER_DAEMON_SCRIPT,
             str(store_dir), mode],
            env=env, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        try:
            self.url = f"http://127.0.0.1:{_read_port(self.proc)}"
        except Exception:
            self.close()
            raise


@pytest.mark.chaos
class TestEndToEndFailover:
    def test_host_killed_mid_batch_still_yields_a_complete_report(
            self, tmp_path):
        fleet = make_fleet()
        die_idx = occupied_indices(fleet, 3)[0]
        assert len(occupied_indices(fleet, 3)) == 3  # survivors exist
        lost_jobs = sorted(
            j.name for j in shard_fleet(fleet, 3)[die_idx])

        daemons = [
            _FailoverDaemon(tmp_path / f"host{i}",
                            "die" if i == die_idx else "serve")
            for i in range(3)
        ]
        try:
            shards = [
                RemoteShard(OptimizationClient(p.url, poll_interval=0.02),
                            timeout=120.0)
                for p in daemons
            ]
            sharded = ShardedOptimizer(shards, shard_timeout=120.0)
            merged = sharded.optimize_fleet(fleet)

            # Every job exactly once, correct, submission order kept.
            local = BatchOptimizer(
                executor="serial", spec=FAST_SPEC).optimize_fleet(fleet)
            assert [j.name for j in merged.jobs] == \
                   [j.name for j in local.jobs]
            assert [j.speedup for j in merged.jobs] == \
                   [j.speedup for j in local.jobs]
            assert merged.cache_misses == local.cache_misses

            # The degraded section names the dead host and every job it
            # took down with it.
            degraded = merged.degraded
            assert degraded is not None
            (failure,) = degraded["failed_shards"]
            assert failure["host"] == f"shard-{die_idx}"
            assert failure["kind"] == "ShardUnreachable"
            assert sorted(failure["jobs"]) == lost_jobs
            assert sorted(degraded["rehomed_jobs"]) == lost_jobs
            maybe_dump_degraded(merged, "e2e_host_killed_mid_batch")

            # The dead process really died our scripted death.
            assert daemons[die_idx].proc.wait(timeout=30) == 17

            # Fleet stats stay serviceable with the host gone.
            stats = sharded.stats()
            assert stats["unreachable_shards"] == [f"shard-{die_idx}"]
            # The failover counters in the merged metrics snapshot
            # agree with the degraded section.
            from repro.obs import summarize_snapshot

            summary = summarize_snapshot(stats["metrics"])
            assert summary["repro_shard_rehomed_jobs_total"] == \
                len(lost_jobs)
            assert summary[
                "repro_shard_failures_total"
                f'{{host="shard-{die_idx}",kind="ShardUnreachable"}}'
            ] == 1.0
        finally:
            for proc in daemons:
                proc.close()

    def test_zero_fault_remote_fleet_is_byte_identical(self, tmp_path):
        """Acceptance: with no faults injected, the merged report and
        the daemon's report JSON carry no degraded key at all."""
        fleet = make_fleet(num_jobs=6, distinct=2)
        daemons = [_FailoverDaemon(tmp_path / f"host{i}", "serve")
                   for i in range(2)]
        try:
            clients = [OptimizationClient(p.url, poll_interval=0.02)
                       for p in daemons]
            sharded = ShardedOptimizer(
                [RemoteShard(c) for c in clients])
            merged = sharded.optimize_fleet(fleet)
            assert merged.degraded is None
            # and on the wire: no "degraded" key in any report payload
            for client in clients:
                accepted = client.submit(fleet)
                client.wait(accepted["id"])
                assert "degraded" not in client.raw_report(accepted["id"])
        finally:
            for proc in daemons:
                proc.close()
