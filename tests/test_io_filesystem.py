"""Tests for synthetic file catalogs."""

import numpy as np
import pytest

from repro.io.filesystem import FileCatalog, FileStat


class TestFileCatalog:
    def test_deterministic_for_seed(self):
        a = FileCatalog("d", 32, 100.0, 1000.0, seed=5)
        b = FileCatalog("d", 32, 100.0, 1000.0, seed=5)
        assert [f.size_bytes for f in a] == [f.size_bytes for f in b]

    def test_different_seeds_differ(self):
        a = FileCatalog("d", 32, 100.0, 1000.0, seed=5)
        b = FileCatalog("d", 32, 100.0, 1000.0, seed=6)
        assert [f.size_bytes for f in a] != [f.size_bytes for f in b]

    def test_totals_consistent(self):
        cat = FileCatalog("d", 64, 200.0, 500.0, seed=1)
        assert cat.total_bytes == pytest.approx(
            sum(f.size_bytes for f in cat.files)
        )
        assert cat.total_records == sum(f.num_records for f in cat.files)

    def test_mean_size_near_request(self):
        cat = FileCatalog("d", 500, 1000.0, 100.0, size_cv=0.2, seed=2)
        mean_records = cat.total_records / cat.num_files
        assert mean_records == pytest.approx(1000.0, rel=0.05)
        assert cat.mean_bytes_per_record == pytest.approx(100.0)

    def test_zero_cv_is_uniform(self):
        cat = FileCatalog("d", 8, 100.0, 50.0, size_cv=0.0)
        sizes = {f.size_bytes for f in cat}
        assert len(sizes) == 1

    def test_size_variation_matches_cv(self):
        cat = FileCatalog("d", 2000, 1000.0, 100.0, size_cv=0.3, seed=3)
        sizes = np.array([f.size_bytes for f in cat])
        cv = sizes.std() / sizes.mean()
        assert cv == pytest.approx(0.3, rel=0.15)

    def test_scaled_preserves_per_file_stats(self):
        cat = FileCatalog("d", 100, 100.0, 1000.0, seed=1)
        half = cat.scaled(0.5)
        assert half.num_files == 50
        assert half.bytes_per_record == cat.bytes_per_record
        assert half.records_per_file == cat.records_per_file

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FileCatalog("d", 8, 10.0, 10.0).scaled(0.0)

    def test_round_trip(self):
        cat = FileCatalog("d", 17, 123.0, 456.0, size_cv=0.05, seed=9)
        restored = FileCatalog.from_dict(cat.to_dict())
        assert restored.total_bytes == cat.total_bytes
        assert restored.name == "d"

    def test_validation(self):
        with pytest.raises(ValueError):
            FileCatalog("d", 0, 10.0, 10.0)
        with pytest.raises(ValueError):
            FileCatalog("d", 1, 0.0, 10.0)
        with pytest.raises(ValueError):
            FileCatalog("d", 1, 10.0, -1.0)

    def test_filestat_bytes_per_record(self):
        f = FileStat("x", 1000.0, 10)
        assert f.bytes_per_record == 100.0
        assert FileStat("y", 0.0, 0).bytes_per_record == 0.0

    def test_len_and_iter(self):
        cat = FileCatalog("d", 5, 10.0, 10.0)
        assert len(cat) == 5
        assert len(list(cat)) == 5


class TestCatalogPresets:
    def test_imagenet_statistics(self):
        from repro.io.catalogs import imagenet_catalog

        cat = imagenet_catalog()
        assert cat.num_files == 1024
        # ~148 GB and ~1.2M images (§D).
        assert cat.total_bytes == pytest.approx(148e9, rel=0.07)
        assert cat.total_records == pytest.approx(1.2e6, rel=0.07)

    def test_coco_statistics(self):
        from repro.io.catalogs import coco_catalog

        cat = coco_catalog()
        assert cat.total_bytes == pytest.approx(20e9, rel=0.1)

    def test_wmt_statistics(self):
        from repro.io.catalogs import wmt16_catalog, wmt17_catalog

        assert wmt17_catalog().total_bytes == pytest.approx(1.2e9, rel=0.1)
        assert wmt16_catalog().total_bytes == pytest.approx(1.9e9, rel=0.1)

    def test_imagenet_validation_smaller(self):
        from repro.io.catalogs import imagenet_validation_catalog

        cat = imagenet_validation_catalog()
        assert cat.total_records == pytest.approx(50_000, rel=0.1)
