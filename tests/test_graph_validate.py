"""Tests for structural pipeline validation."""

import pytest

from repro.graph.builder import from_tfrecords, zip_datasets
from repro.graph.datasets import CacheNode, MapNode, Pipeline, ZipNode
from repro.graph.validate import (
    GraphValidationError,
    find_batch_node,
    validate_pipeline,
)
from tests.conftest import make_udf


class TestValidation:
    def test_valid_pipeline_passes(self, simple_pipeline):
        validate_pipeline(simple_pipeline)

    def test_missing_source_rejected(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        lone_map = MapNode("m", src, make_udf("f"))
        lone_map.inputs = []  # simulate a detached subgraph
        with pytest.raises(GraphValidationError, match="no source"):
            validate_pipeline(Pipeline(lone_map))

    def test_cache_above_unbounded_repeat_rejected(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .repeat(None, name="rep")
            .cache(name="cache")
            .build("bad", validate=False)
        )
        with pytest.raises(GraphValidationError, match="unbounded repeat"):
            validate_pipeline(pipe)

    def test_cache_above_shuffle_and_repeat_rejected(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .shuffle_and_repeat(8, name="snr")
            .cache(name="cache")
            .build("bad", validate=False)
        )
        with pytest.raises(GraphValidationError):
            validate_pipeline(pipe)

    def test_cache_above_bounded_repeat_allowed(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .repeat(2, name="rep")
            .cache(name="cache")
            .build("ok", validate=False)
        )
        validate_pipeline(pipe)

    def test_cache_below_repeat_allowed(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .cache(name="cache")
            .repeat(None, name="rep")
            .build("ok")
        )
        validate_pipeline(pipe)

    def test_builder_validates_by_default(self, small_catalog):
        with pytest.raises(GraphValidationError):
            (
                from_tfrecords(small_catalog, name="src")
                .repeat(None, name="rep")
                .cache(name="cache")
                .build("bad")
            )

    def test_cycle_detected(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        m1 = MapNode("m1", src, make_udf("a"))
        m2 = MapNode("m2", m1, make_udf("b"))
        m1.inputs = [m2]  # introduce a cycle
        with pytest.raises(GraphValidationError, match="cycle"):
            validate_pipeline(Pipeline(m2))

    def test_fan_out_rejected(self, small_catalog):
        """Pipelines are rooted in-trees: one node feeding two consumers
        (here, both zip branches) must fail validation."""
        src = from_tfrecords(small_catalog, name="src").node
        m1 = MapNode("m1", src, make_udf("a"))
        m2 = MapNode("m2", src, make_udf("b"))  # src now fans out
        z = ZipNode("z", [m1, m2])
        with pytest.raises(GraphValidationError, match="in-trees"):
            validate_pipeline(Pipeline(z))

    def test_distinct_merge_branches_pass(self, small_catalog):
        a = from_tfrecords(small_catalog, name="src_a").map(
            make_udf("fa"), name="map_a")
        b = from_tfrecords(small_catalog, name="src_b").map(
            make_udf("fb"), name="map_b")
        validate_pipeline(zip_datasets([a, b], name="z").build("p"))

    def test_find_batch_node(self, simple_pipeline, small_catalog):
        assert find_batch_node(simple_pipeline).name == "batch"
        no_batch = from_tfrecords(small_catalog, name="src").build("nb")
        assert find_batch_node(no_batch) is None
