"""Tests for the adaptive trace backend (analytic-first policy).

The policy contract: decisive analytic pictures are served analytically,
ambiguous or degenerate ones fall back to the discrete-event simulator,
every trace records which path produced it, and either way the
bottleneck the optimizer derives matches a pure-simulate run on the
seed workloads.
"""

import math

import pytest

from repro.core.lp import solve_allocation
from repro.core.plumber import Plumber
from repro.core.rates import build_model
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.graph.builder import from_tfrecords
from repro.host.machine import setup_a
from repro.runtime import resolve_backend
from repro.runtime.adaptive import AdaptiveBackend
from repro.runtime.analytic import equilibrium_diagnostics
from repro.service import BatchOptimizer, OptimizeSpec
from repro.workloads.registry import MICROBENCH_WORKLOADS
from tests.conftest import make_udf


def lopsided_pipeline(catalog):
    """One dominant stage: the analytic bottleneck is unambiguous."""
    return (
        from_tfrecords(catalog, parallelism=2, name="src")
        .map(make_udf("heavy", cpu=5e-3), parallelism=1, name="m_heavy")
        .batch(16, name="b")
        .repeat(None, name="r")
        .build("lopsided")
    )


def tied_pipeline(catalog):
    """Two equally expensive sequential stages: the binding cap and the
    runner-up are nearly tied, which is the seeded-disagreement case the
    fallback exists for."""
    return (
        from_tfrecords(catalog, parallelism=2, name="src")
        .map(make_udf("a", cpu=2e-3), parallelism=1, name="m_a")
        .map(make_udf("b", cpu=2e-3), parallelism=1, name="m_b")
        .batch(16, name="b")
        .repeat(None, name="r")
        .build("tied")
    )


@pytest.fixture(scope="module")
def machine():
    return setup_a()


class TestPolicy:
    def test_registered(self):
        assert resolve_backend("adaptive").name == "adaptive"

    def test_confident_case_served_analytically(self, machine,
                                                small_catalog):
        backend = AdaptiveBackend()
        plumber = Plumber(machine, backend=backend, trace_duration=1.5,
                          trace_warmup=0.3)
        trace = plumber.trace(lopsided_pipeline(small_catalog))
        assert trace.backend == "adaptive[analytic]"
        decision = backend.decisions[-1]
        assert decision.chosen == "analytic"
        assert decision.reason == "confident"
        assert decision.margin >= backend.margin

    def test_seeded_disagreement_falls_back_to_simulation(self, machine,
                                                          small_catalog):
        pipe = tied_pipeline(small_catalog)
        diag = equilibrium_diagnostics(pipe, machine, duration=1.5,
                                       warmup=0.3)
        # The seed is real: two caps within the default margin.
        assert diag.margin < 0.1
        backend = AdaptiveBackend()
        plumber = Plumber(machine, backend=backend, trace_duration=1.5,
                          trace_warmup=0.3)
        trace = plumber.trace(pipe)
        assert trace.backend == "adaptive[simulate]"
        decision = backend.decisions[-1]
        assert decision.chosen == "simulate"
        assert decision.reason == "low-confidence"
        # The fallback audits the bottleneck comparison either way.
        assert decision.agreed in (True, False)

    def test_margin_zero_always_trusts_analytic(self, machine,
                                                small_catalog):
        backend = AdaptiveBackend(margin=0.0)
        plumber = Plumber(machine, backend=backend, trace_duration=1.5,
                          trace_warmup=0.3)
        trace = plumber.trace(tied_pipeline(small_catalog))
        assert trace.backend == "adaptive[analytic]"

    def test_huge_margin_always_simulates(self, machine, small_catalog):
        backend = AdaptiveBackend(margin=1e9)
        plumber = Plumber(machine, backend=backend, trace_duration=1.5,
                          trace_warmup=0.3)
        trace = plumber.trace(lopsided_pipeline(small_catalog))
        assert trace.backend == "adaptive[simulate]"

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError, match="margin"):
            AdaptiveBackend(margin=-0.1)

    def test_decision_log_bounded_and_clearable(self, machine,
                                                small_catalog):
        backend = AdaptiveBackend()
        plumber = Plumber(machine, backend=backend, trace_duration=1.0,
                          trace_warmup=0.25)
        pipe = lopsided_pipeline(small_catalog)
        for _ in range(3):
            plumber.trace(pipe)
        assert len(backend.decisions) == 3
        backend.clear_decisions()
        assert backend.decisions == []

    def test_trace_json_round_trips_producer_label(self, machine,
                                                   small_catalog):
        from repro.core.trace import PipelineTrace

        plumber = Plumber(machine, backend="adaptive", trace_duration=1.5,
                          trace_warmup=0.3)
        trace = plumber.trace(lopsided_pipeline(small_catalog))
        restored = PipelineTrace.from_json(trace.to_json())
        assert restored.backend == trace.backend
        assert restored.backend.startswith("adaptive[")


class TestSeedWorkloadParity:
    """Acceptance: adaptive has bottleneck parity with pure simulation
    on the five seed workloads (whichever path the policy takes)."""

    @pytest.fixture(scope="class", params=sorted(MICROBENCH_WORKLOADS))
    def trace_pair(self, request):
        machine = setup_a()
        pipe = MICROBENCH_WORKLOADS[request.param].build(
            scale=0.01, parallelism=4
        )
        plumber = Plumber(machine)
        return plumber.trace(pipe), plumber.trace(pipe, backend="adaptive")

    def test_producer_recorded(self, trace_pair):
        _sim, ada = trace_pair
        assert ada.backend in ("adaptive[analytic]", "adaptive[simulate]")

    def test_bottleneck_parity_with_simulate(self, trace_pair):
        sim, ada = trace_pair
        lp_sim = solve_allocation(build_model(sim))
        lp_ada = solve_allocation(build_model(ada))
        assert lp_ada.bottleneck == lp_sim.bottleneck


class TestAdaptiveFleet:
    """Acceptance: backend="adaptive" optimizes a mixed
    vision+nlp+rl fleet end to end."""

    @pytest.fixture(scope="class")
    def fleet(self):
        jobs = []
        for domain in ("vision", "nlp", "rl"):
            jobs.extend(
                generate_pipeline_fleet(
                    num_jobs=3, distinct=3, seed=5,
                    config=FleetConfig(domain_weights={domain: 1.0}),
                )
            )
        return jobs

    def test_mixed_fleet_end_to_end(self, fleet):
        svc = BatchOptimizer(
            executor="serial",
            spec=OptimizeSpec(iterations=1, backend="adaptive"),
        )
        report = svc.optimize_fleet(fleet)
        assert len(report.jobs) == len(fleet)
        assert {j.domain for j in fleet} == {"vision", "nlp", "rl"}
        for job in report.jobs:
            assert math.isfinite(job.optimized_throughput)
            assert job.optimized_throughput > 0
            assert job.bottleneck
        assert report.speedups().geomean >= 1.0

    def test_adaptive_survives_process_pool(self, small_catalog,
                                            test_machine):
        """The adaptive backend resolves by name in worker processes."""
        from tests.test_service import small_pipeline

        pipe = small_pipeline(small_catalog)
        spec = OptimizeSpec(iterations=1, trace_duration=1.0,
                            trace_warmup=0.25, backend="adaptive")
        kwargs = dict(machine=test_machine, spec=spec)
        serial = BatchOptimizer(executor="serial", **kwargs)
        procs = BatchOptimizer(executor="process", max_workers=1, **kwargs)
        a = serial.optimize_fleet({"j": pipe}).jobs[0]
        b = procs.optimize_fleet({"j": pipe}).jobs[0]
        assert a.decisions == b.decisions
        assert a.optimized_throughput == b.optimized_throughput
