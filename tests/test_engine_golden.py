"""Golden-trace equivalence harness for the simulation engines.

``tests/golden/`` holds one checked-in reference fingerprint per corpus
case: every observable of a run on the *reference* (scalar generator)
engine — the serialized trace JSON string, per-queue telemetry, and the
consumer-visible results. These tests pin both engines to that corpus:

* the vectorized engine must reproduce each reference fingerprint
  exactly (byte-identical trace string, equal counters) — the
  tentpole's correctness contract;
* the reference engine must still reproduce its own corpus — so a
  behavioural change to the shared resource models is caught as a
  corpus drift, distinct from a vectorization bug.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python -m pytest tests/test_engine_golden.py \
        --regenerate-golden

Failures persist both fingerprints under ``$REPRO_DIFF_DUMP_DIR``
(default ``diff_failures/``) for offline diffing.
"""

from __future__ import annotations

import json

import pytest

from tests.engine_equivalence import (
    GOLDEN_CASES,
    dump_mismatch,
    golden_path,
    load_golden,
    run_fingerprint,
    write_golden,
)

CASE_IDS = [c[0] for c in GOLDEN_CASES]


def test_corpus_is_complete():
    """Every corpus case has a checked-in golden file and vice versa."""
    expected = {golden_path(name).name for name in CASE_IDS}
    on_disk = {p.name for p in golden_path("x").parent.glob("*.json")}
    assert on_disk == expected


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=CASE_IDS)
def test_vectorized_matches_golden(case, regenerate_golden):
    """The vectorized engine reproduces the reference corpus exactly."""
    name = case[0]
    if regenerate_golden:
        write_golden(name, run_fingerprint(case, "reference"))
    golden = load_golden(name)
    got = run_fingerprint(case, "vectorized")
    assert got == golden, dump_mismatch(f"{name}_vectorized", golden, got)


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=CASE_IDS)
def test_reference_matches_golden(case, regenerate_golden):
    """The reference engine still reproduces its own corpus (drift
    detector: separates resource-model changes from vectorization
    bugs)."""
    if regenerate_golden:
        pytest.skip("corpus being regenerated from this engine")
    name = case[0]
    golden = load_golden(name)
    got = run_fingerprint(case, "reference")
    assert got == golden, dump_mismatch(f"{name}_reference", golden, got)


def test_golden_traces_parse_and_carry_programs():
    """Corpus files are loadable artifacts, not just strings: the trace
    JSON round-trips through PipelineTrace and carries the program."""
    from repro.core.trace import PipelineTrace

    for name in CASE_IDS:
        trace = PipelineTrace.from_json(load_golden(name)["trace"])
        assert trace.backend == "simulate"
        assert trace.stats, name
        rebuilt = trace.pipeline()
        assert rebuilt.topological_order()


def test_mismatch_dump_written(tmp_path, monkeypatch):
    """A failed comparison persists both fingerprints for diffing."""
    import tests.engine_equivalence as eq

    monkeypatch.setattr(eq, "DUMP_DIR", str(tmp_path / "dumps"))
    msg = dump_mismatch("unit", {"trace": "a", "completed": True},
                        {"trace": "b", "completed": True})
    assert "unit" in msg and "trace" in msg
    ref = json.loads(
        (tmp_path / "dumps" / "golden_unit_reference.json").read_text())
    got = json.loads(
        (tmp_path / "dumps" / "golden_unit_candidate.json").read_text())
    assert ref["trace"] == "a" and got["trace"] == "b"
