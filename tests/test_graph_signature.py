"""Tests for element-signature propagation (n_i / b_i declared rules)."""

import math

import pytest

from repro.graph.builder import from_tfrecords
from repro.graph.signature import infer_signatures
from tests.conftest import make_udf


class TestSignatures:
    def test_source_spec_matches_catalog(self, small_catalog):
        pipe = from_tfrecords(small_catalog, name="src").build("p")
        spec = infer_signatures(pipe)["src"]
        assert spec.kind == "record"
        assert spec.cardinality == small_catalog.total_records
        assert spec.avg_bytes == pytest.approx(small_catalog.mean_bytes_per_record)
        assert spec.total_bytes == pytest.approx(small_catalog.total_bytes, rel=1e-6)

    def test_decode_amplifies_bytes_not_count(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .map(make_udf("decode", size_ratio=6.0), name="dec")
            .build("p")
        )
        specs = infer_signatures(pipe)
        assert specs["dec"].cardinality == specs["src"].cardinality
        assert specs["dec"].avg_bytes == pytest.approx(6 * specs["src"].avg_bytes)

    def test_filter_shrinks_count_not_bytes(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .filter(make_udf("f"), keep_fraction=0.5, name="filt")
            .build("p")
        )
        specs = infer_signatures(pipe)
        assert specs["filt"].cardinality == pytest.approx(
            0.5 * specs["src"].cardinality
        )
        assert specs["filt"].avg_bytes == specs["src"].avg_bytes

    def test_batch_trades_count_for_bytes(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src").batch(32, name="b").build("p")
        )
        specs = infer_signatures(pipe)
        assert specs["b"].kind == "minibatch"
        assert specs["b"].avg_bytes == pytest.approx(32 * specs["src"].avg_bytes)
        assert specs["b"].cardinality == math.floor(specs["src"].cardinality / 32)

    def test_unbounded_repeat_is_infinite(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src").repeat(None, name="r").build("p")
        )
        assert math.isinf(infer_signatures(pipe)["r"].cardinality)

    def test_bounded_repeat_multiplies(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src").repeat(3, name="r").build("p")
        )
        specs = infer_signatures(pipe)
        assert specs["r"].cardinality == pytest.approx(3 * specs["src"].cardinality)

    def test_take_truncates(self, small_catalog):
        pipe = from_tfrecords(small_catalog, name="src").take(10, name="t").build("p")
        assert infer_signatures(pipe)["t"].cardinality == 10

    def test_shuffle_and_repeat_is_infinite(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .shuffle_and_repeat(16, name="snr")
            .build("p")
        )
        assert math.isinf(infer_signatures(pipe)["snr"].cardinality)

    def test_fixed_output_bytes(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .map(make_udf("crop"), name="crop")
            .build("p")
        )
        # Rebuild with a fixed-output UDF.
        from repro.graph.udf import UserFunction

        crop = UserFunction("crop", output_bytes=1234.0)
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .map(crop, name="crop")
            .build("p2")
        )
        assert infer_signatures(pipe)["crop"].avg_bytes == 1234.0

    def test_decode_then_batch_composition(self, small_catalog):
        """End-to-end: root materialization = records x ratio x bytes."""
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .map(make_udf("decode", size_ratio=2.0), name="dec")
            .batch(16, name="b")
            .build("p")
        )
        specs = infer_signatures(pipe)
        assert specs["b"].total_bytes == pytest.approx(
            specs["dec"].cardinality // 16 * 16 * specs["dec"].avg_bytes,
            rel=0.01,
        )
