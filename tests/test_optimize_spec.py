"""Tests for OptimizeSpec: validation, serialization, cache identity."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.spec import DEFAULT_PASSES, STORE_SCHEMA_VERSION, OptimizeSpec
from repro.service import BatchOptimizer, DiskStore, OptimizationJob
from repro.util import canonical_hash
from tests.test_service import small_pipeline


class TestValidation:
    def test_defaults_match_legacy_plumber_defaults(self):
        spec = OptimizeSpec()
        assert spec.passes == DEFAULT_PASSES
        assert spec.iterations == 2
        assert spec.backend == "simulate"
        assert spec.trace_duration == 3.0
        assert spec.trace_warmup == 0.5

    @pytest.mark.parametrize("bad", [
        dict(iterations=0),
        dict(granularity=0),
        dict(event_budget=0),
        dict(trace_duration=0.0),
        dict(trace_warmup=-0.1),
        dict(trace_duration=1.0, trace_warmup=1.0),
        dict(memory_bytes=0.0),
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError):
            OptimizeSpec(**bad)

    def test_passes_coerced_to_tuple(self):
        spec = OptimizeSpec(passes=["parallelism", "cache"])
        assert spec.passes == ("parallelism", "cache")

    def test_replace_revalidates(self):
        spec = OptimizeSpec()
        with pytest.raises(ValueError, match="iterations"):
            spec.replace(iterations=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            OptimizeSpec().iterations = 3


class TestSerialization:
    def test_round_trip(self):
        spec = OptimizeSpec(
            passes=("fuse", "parallelism"), iterations=3,
            backend="analytic", granularity=4, event_budget=10_000,
            trace_duration=2.0, trace_warmup=0.25, memory_bytes=1e9,
            allocate_remaining=False,
        )
        assert OptimizeSpec.from_dict(spec.to_dict()) == spec

    def test_cache_token_is_json_compatible(self):
        import json

        token = OptimizeSpec().cache_token()
        assert json.loads(json.dumps(token, sort_keys=True)) == token

    def test_every_field_changes_the_token(self):
        base = OptimizeSpec()
        variants = [
            base.replace(passes=("parallelism",)),
            base.replace(iterations=1),
            base.replace(backend="analytic"),
            base.replace(granularity=4),
            base.replace(event_budget=10_000),
            base.replace(trace_duration=2.0),
            base.replace(trace_warmup=0.25),
            base.replace(memory_bytes=1e9),
            base.replace(allocate_remaining=False),
        ]
        tokens = [str(sorted(v.cache_token().items())) for v in variants]
        tokens.append(str(sorted(base.cache_token().items())))
        assert len(set(tokens)) == len(tokens)

    def test_object_backend_has_no_token(self):
        class Fake:
            name = "fake"

            def trace(self, pipeline, machine, config):
                raise NotImplementedError

        spec = OptimizeSpec(backend=Fake())
        assert spec.backend_name == "fake"
        with pytest.raises(TypeError, match="backend object"):
            spec.cache_token()

    def test_object_pass_has_no_token(self):
        class Fake:
            name = "fake_pass"

            def plan(self, ctx):
                return []

        with pytest.raises(TypeError, match="pass objects"):
            OptimizeSpec(passes=(Fake(),)).cache_token()


class TestServiceCacheIdentity:
    """Distinct specs must never share service cache entries."""

    def _svc(self, test_machine, **kwargs):
        return BatchOptimizer(machine=test_machine, executor="serial",
                              **kwargs)

    def test_spec_flows_to_cache_key(self, small_catalog, test_machine):
        pipe = small_pipeline(small_catalog)
        base = OptimizeSpec(iterations=1, trace_duration=1.0,
                            trace_warmup=0.25, backend="analytic")
        svc = self._svc(test_machine, spec=base)
        report = svc.optimize_fleet([
            OptimizationJob("a", pipe, test_machine),
            OptimizationJob("b", pipe, test_machine,
                            spec=base.replace(event_budget=10_000)),
            OptimizationJob("c", pipe, test_machine,
                            spec=base.replace(trace_duration=2.0)),
            OptimizationJob("d", pipe, test_machine, spec=base),
        ])
        # a and d share the service spec; b and c differ in one field.
        assert report.cache_misses == 3
        assert report.cache_hits == 1
        assert report.job("d").cache_hit

    def test_per_job_spec_honoured_in_worker(self, small_catalog,
                                             test_machine):
        from repro.core.plumber import Plumber

        pipe = small_pipeline(small_catalog)
        job_spec = OptimizeSpec(iterations=1, trace_duration=1.0,
                                trace_warmup=0.25, backend="analytic",
                                passes=("parallelism",))
        svc = self._svc(test_machine)  # service default: simulate, 2 iters
        got = svc.optimize_fleet(
            [OptimizationJob("solo", pipe, test_machine, spec=job_spec)]
        ).jobs[0]
        serial = Plumber(test_machine, spec=job_spec).optimize(pipe)
        assert got.decisions == tuple(serial.decisions)
        assert got.optimized_throughput == pytest.approx(
            serial.model.observed_throughput
        )

    def test_legacy_positional_construction_still_works(self, small_catalog,
                                                        test_machine):
        """Pre-spec callers built jobs positionally as (name, pipeline,
        machine, granularity, backend); the new `spec` field must not
        shift that surface."""
        pipe = small_pipeline(small_catalog)
        with pytest.warns(DeprecationWarning):
            job = OptimizationJob("j", pipe, test_machine, 8, "analytic")
        assert job.granularity == 8
        assert job.backend == "analytic"
        assert job.spec is None

    def test_deprecated_fields_warn_and_fold_into_spec(self, small_catalog,
                                                       test_machine):
        pipe = small_pipeline(small_catalog)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = OptimizationJob("legacy", pipe, test_machine,
                                     backend="analytic", granularity=8)
        svc = self._svc(test_machine, iterations=1, trace_duration=1.0,
                        trace_warmup=0.25)
        modern = OptimizationJob(
            "modern", pipe, test_machine,
            spec=svc.spec.replace(backend="analytic", granularity=8),
        )
        report = svc.optimize_fleet([legacy, modern])
        # Identical effective specs: the legacy job's folded identity
        # matches the spec-first job, so the second is a cache hit.
        assert report.cache_misses == 1
        assert report.cache_hits == 1

    def test_spec_with_pass_objects_rejected_by_service(self,
                                                        small_catalog,
                                                        test_machine):
        class Fake:
            name = "fake_pass"

            def plan(self, ctx):
                return []

        with pytest.raises(TypeError, match="pass names"):
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=OptimizeSpec(passes=(Fake(),)))

    def test_unknown_pass_name_fails_at_construction(self, test_machine):
        """Fail fast with context, not deep inside a worker pool."""
        with pytest.raises(ValueError, match="unknown optimizer passes"):
            self._svc(test_machine, spec=OptimizeSpec(passes=("magic",)))

    def test_unknown_per_job_pass_fails_at_submission(self, small_catalog,
                                                      test_machine):
        svc = self._svc(test_machine)
        job = OptimizationJob(
            "bad", small_pipeline(small_catalog), test_machine,
            spec=OptimizeSpec(passes=("magic",)),
        )
        with pytest.raises(ValueError, match="unknown optimizer passes"):
            svc.optimize_fleet([job])


class TestCacheTokenProperties:
    """Seeded-random property tests for the token's cache-identity
    contract: equal specs always collide, distinct specs never do, and
    a token-derived key is stable across process restarts (so a
    :class:`DiskStore` populated by one process serves the next)."""

    #: per-field value pools; every warmup choice is < every duration
    #: choice so any combination is a valid spec
    FIELD_CHOICES = {
        "passes": [("parallelism",), ("parallelism", "prefetch"),
                   DEFAULT_PASSES, ("fuse",) + DEFAULT_PASSES],
        "iterations": [1, 2, 3],
        "backend": ["simulate", "analytic", "adaptive"],
        "granularity": [None, 1, 4, 16],
        "event_budget": [None, 10_000, 300_000],
        "trace_duration": [1.0, 3.0, 5.0],
        "trace_warmup": [0.0, 0.25, 0.5],
        "memory_bytes": [None, 1e9, 32e9],
        "allocate_remaining": [True, False],
    }

    @classmethod
    def random_spec(cls, rng) -> OptimizeSpec:
        return OptimizeSpec(**{
            name: choices[int(rng.integers(len(choices)))]
            for name, choices in cls.FIELD_CHOICES.items()
        })

    def _key(self, spec: OptimizeSpec) -> str:
        return canonical_hash(spec.cache_token())

    def test_equal_specs_always_collide(self):
        for seed in range(50):
            a = self.random_spec(np.random.default_rng(seed))
            b = self.random_spec(np.random.default_rng(seed))
            assert a == b
            assert self._key(a) == self._key(b), seed

    def test_distinct_specs_never_collide(self):
        rng = np.random.default_rng(1234)
        by_key = {}
        for i in range(200):
            spec = self.random_spec(rng)
            key = self._key(spec)
            if key in by_key:
                assert by_key[key] == spec, (
                    f"collision at draw {i}: {by_key[key]} vs {spec}"
                )
            by_key[key] = spec
        assert len(by_key) > 1  # the sampler actually varies specs

    def test_single_field_mutation_changes_the_key(self):
        rng = np.random.default_rng(99)
        for _ in range(60):
            spec = self.random_spec(rng)
            field = list(self.FIELD_CHOICES)[
                int(rng.integers(len(self.FIELD_CHOICES)))
            ]
            current = getattr(spec, field)
            others = [v for v in self.FIELD_CHOICES[field] if v != current]
            mutated = spec.replace(**{field: others[
                int(rng.integers(len(others)))
            ]})
            assert self._key(mutated) != self._key(spec), field

    def test_schema_version_is_part_of_the_token(self, monkeypatch):
        """Bumping the store schema must invalidate every cache key."""
        before = self._key(OptimizeSpec())
        monkeypatch.setattr("repro.core.spec.STORE_SCHEMA_VERSION",
                            STORE_SCHEMA_VERSION + 1)
        assert self._key(OptimizeSpec()) != before

    def test_token_stable_across_process_restart(self, tmp_path):
        """A fresh interpreter derives the same key and reads the entry
        this process wrote through a DiskStore — the token depends only
        on field values, never on process state (hash seeds, ids)."""
        spec = OptimizeSpec(passes=("fuse", "parallelism"), iterations=3,
                            backend="analytic", granularity=4,
                            event_budget=10_000, trace_duration=2.0,
                            trace_warmup=0.25, memory_bytes=1e9,
                            allocate_remaining=False)
        key = self._key(spec)
        DiskStore(tmp_path).put(key, {"result": {"marker": 42}})
        script = textwrap.dedent(f"""
            import json
            from repro.core.spec import OptimizeSpec
            from repro.service import DiskStore
            from repro.util import canonical_hash

            spec = OptimizeSpec(passes=("fuse", "parallelism"), iterations=3,
                                backend="analytic", granularity=4,
                                event_budget=10_000, trace_duration=2.0,
                                trace_warmup=0.25, memory_bytes=1e9,
                                allocate_remaining=False)
            key = canonical_hash(spec.cache_token())
            print(key)
            print(json.dumps(DiskStore({str(tmp_path)!r}).get(key)))
        """)
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, timeout=120)
        assert out.returncode == 0, out.stderr
        child_key, child_entry = out.stdout.strip().splitlines()
        assert child_key == key
        assert json.loads(child_entry) == {"result": {"marker": 42}}


class TestPlumberSpec:
    def test_spec_and_legacy_kwargs_equivalent(self, small_catalog,
                                               test_machine):
        from repro.core.plumber import Plumber
        from tests.test_core_lp import two_stage_pipeline

        pipe = two_stage_pipeline(small_catalog)
        legacy = Plumber(test_machine, trace_duration=1.5, trace_warmup=0.3,
                         backend="analytic").optimize(pipe, iterations=1)
        spec = OptimizeSpec(trace_duration=1.5, trace_warmup=0.3,
                            backend="analytic", iterations=1)
        modern = Plumber(test_machine, spec=spec).optimize(pipe)
        assert modern.decisions == legacy.decisions
        assert modern.model.observed_throughput == pytest.approx(
            legacy.model.observed_throughput
        )

    def test_call_level_spec_governs_trace_acquisition(self, small_catalog,
                                                       test_machine):
        """Regression: a per-call ``spec=`` must drive the trace backend
        and window too, not just pass selection — identical results to
        constructing the Plumber with that spec."""
        from repro.core.plumber import Plumber
        from tests.test_core_lp import two_stage_pipeline

        pipe = two_stage_pipeline(small_catalog)
        spec = OptimizeSpec(iterations=1, backend="analytic",
                            trace_duration=1.0, trace_warmup=0.25)
        per_call = Plumber(test_machine).optimize(pipe, spec=spec)
        per_instance = Plumber(test_machine, spec=spec).optimize(pipe)
        assert per_call.decisions == per_instance.decisions
        assert per_call.model.observed_throughput == pytest.approx(
            per_instance.model.observed_throughput
        )
        # The analytic backend stamps its traces; a simulate-window trace
        # would differ in measured_seconds.
        assert per_call.model.trace.backend == "analytic"
        assert per_call.model.trace.measured_seconds == pytest.approx(0.75)

    def test_legacy_kwargs_override_spec(self, test_machine):
        from repro.core.plumber import Plumber

        spec = OptimizeSpec(backend="simulate", trace_duration=9.0)
        plumber = Plumber(test_machine, spec=spec, backend="analytic",
                          trace_duration=1.0)
        assert plumber.backend.name == "analytic"
        assert plumber.trace_duration == 1.0
        assert plumber.trace_warmup == spec.trace_warmup  # inherited

    def test_memory_bytes_caps_cache_planning(self, small_catalog,
                                              test_machine):
        """A tiny memory ceiling suppresses the cache pass entirely."""
        from repro.core.plumber import Plumber
        from tests.test_core_lp import two_stage_pipeline

        pipe = two_stage_pipeline(small_catalog)
        spec = OptimizeSpec(trace_duration=1.0, trace_warmup=0.25,
                            backend="analytic", iterations=1,
                            memory_bytes=1024.0)
        result = Plumber(test_machine, spec=spec).optimize(pipe)
        assert result.cache is None
