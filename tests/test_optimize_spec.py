"""Tests for OptimizeSpec: validation, serialization, cache identity."""

import pytest

from repro.core.spec import DEFAULT_PASSES, OptimizeSpec
from repro.service import BatchOptimizer, OptimizationJob
from tests.test_service import small_pipeline


class TestValidation:
    def test_defaults_match_legacy_plumber_defaults(self):
        spec = OptimizeSpec()
        assert spec.passes == DEFAULT_PASSES
        assert spec.iterations == 2
        assert spec.backend == "simulate"
        assert spec.trace_duration == 3.0
        assert spec.trace_warmup == 0.5

    @pytest.mark.parametrize("bad", [
        dict(iterations=0),
        dict(granularity=0),
        dict(event_budget=0),
        dict(trace_duration=0.0),
        dict(trace_warmup=-0.1),
        dict(trace_duration=1.0, trace_warmup=1.0),
        dict(memory_bytes=0.0),
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError):
            OptimizeSpec(**bad)

    def test_passes_coerced_to_tuple(self):
        spec = OptimizeSpec(passes=["parallelism", "cache"])
        assert spec.passes == ("parallelism", "cache")

    def test_replace_revalidates(self):
        spec = OptimizeSpec()
        with pytest.raises(ValueError, match="iterations"):
            spec.replace(iterations=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            OptimizeSpec().iterations = 3


class TestSerialization:
    def test_round_trip(self):
        spec = OptimizeSpec(
            passes=("fuse", "parallelism"), iterations=3,
            backend="analytic", granularity=4, event_budget=10_000,
            trace_duration=2.0, trace_warmup=0.25, memory_bytes=1e9,
            allocate_remaining=False,
        )
        assert OptimizeSpec.from_dict(spec.to_dict()) == spec

    def test_cache_token_is_json_compatible(self):
        import json

        token = OptimizeSpec().cache_token()
        assert json.loads(json.dumps(token, sort_keys=True)) == token

    def test_every_field_changes_the_token(self):
        base = OptimizeSpec()
        variants = [
            base.replace(passes=("parallelism",)),
            base.replace(iterations=1),
            base.replace(backend="analytic"),
            base.replace(granularity=4),
            base.replace(event_budget=10_000),
            base.replace(trace_duration=2.0),
            base.replace(trace_warmup=0.25),
            base.replace(memory_bytes=1e9),
            base.replace(allocate_remaining=False),
        ]
        tokens = [str(sorted(v.cache_token().items())) for v in variants]
        tokens.append(str(sorted(base.cache_token().items())))
        assert len(set(tokens)) == len(tokens)

    def test_object_backend_has_no_token(self):
        class Fake:
            name = "fake"

            def trace(self, pipeline, machine, config):
                raise NotImplementedError

        spec = OptimizeSpec(backend=Fake())
        assert spec.backend_name == "fake"
        with pytest.raises(TypeError, match="backend object"):
            spec.cache_token()

    def test_object_pass_has_no_token(self):
        class Fake:
            name = "fake_pass"

            def plan(self, ctx):
                return []

        with pytest.raises(TypeError, match="pass objects"):
            OptimizeSpec(passes=(Fake(),)).cache_token()


class TestServiceCacheIdentity:
    """Distinct specs must never share service cache entries."""

    def _svc(self, test_machine, **kwargs):
        return BatchOptimizer(machine=test_machine, executor="serial",
                              **kwargs)

    def test_spec_flows_to_cache_key(self, small_catalog, test_machine):
        pipe = small_pipeline(small_catalog)
        base = OptimizeSpec(iterations=1, trace_duration=1.0,
                            trace_warmup=0.25, backend="analytic")
        svc = self._svc(test_machine, spec=base)
        report = svc.optimize_fleet([
            OptimizationJob("a", pipe, test_machine),
            OptimizationJob("b", pipe, test_machine,
                            spec=base.replace(event_budget=10_000)),
            OptimizationJob("c", pipe, test_machine,
                            spec=base.replace(trace_duration=2.0)),
            OptimizationJob("d", pipe, test_machine, spec=base),
        ])
        # a and d share the service spec; b and c differ in one field.
        assert report.cache_misses == 3
        assert report.cache_hits == 1
        assert report.job("d").cache_hit

    def test_per_job_spec_honoured_in_worker(self, small_catalog,
                                             test_machine):
        from repro.core.plumber import Plumber

        pipe = small_pipeline(small_catalog)
        job_spec = OptimizeSpec(iterations=1, trace_duration=1.0,
                                trace_warmup=0.25, backend="analytic",
                                passes=("parallelism",))
        svc = self._svc(test_machine)  # service default: simulate, 2 iters
        got = svc.optimize_fleet(
            [OptimizationJob("solo", pipe, test_machine, spec=job_spec)]
        ).jobs[0]
        serial = Plumber(test_machine, spec=job_spec).optimize(pipe)
        assert got.decisions == tuple(serial.decisions)
        assert got.optimized_throughput == pytest.approx(
            serial.model.observed_throughput
        )

    def test_legacy_positional_construction_still_works(self, small_catalog,
                                                        test_machine):
        """Pre-spec callers built jobs positionally as (name, pipeline,
        machine, granularity, backend); the new `spec` field must not
        shift that surface."""
        pipe = small_pipeline(small_catalog)
        with pytest.warns(DeprecationWarning):
            job = OptimizationJob("j", pipe, test_machine, 8, "analytic")
        assert job.granularity == 8
        assert job.backend == "analytic"
        assert job.spec is None

    def test_deprecated_fields_warn_and_fold_into_spec(self, small_catalog,
                                                       test_machine):
        pipe = small_pipeline(small_catalog)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = OptimizationJob("legacy", pipe, test_machine,
                                     backend="analytic", granularity=8)
        svc = self._svc(test_machine, iterations=1, trace_duration=1.0,
                        trace_warmup=0.25)
        modern = OptimizationJob(
            "modern", pipe, test_machine,
            spec=svc.spec.replace(backend="analytic", granularity=8),
        )
        report = svc.optimize_fleet([legacy, modern])
        # Identical effective specs: the legacy job's folded identity
        # matches the spec-first job, so the second is a cache hit.
        assert report.cache_misses == 1
        assert report.cache_hits == 1

    def test_spec_with_pass_objects_rejected_by_service(self,
                                                        small_catalog,
                                                        test_machine):
        class Fake:
            name = "fake_pass"

            def plan(self, ctx):
                return []

        with pytest.raises(TypeError, match="pass names"):
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=OptimizeSpec(passes=(Fake(),)))

    def test_unknown_pass_name_fails_at_construction(self, test_machine):
        """Fail fast with context, not deep inside a worker pool."""
        with pytest.raises(ValueError, match="unknown optimizer passes"):
            self._svc(test_machine, spec=OptimizeSpec(passes=("magic",)))

    def test_unknown_per_job_pass_fails_at_submission(self, small_catalog,
                                                      test_machine):
        svc = self._svc(test_machine)
        job = OptimizationJob(
            "bad", small_pipeline(small_catalog), test_machine,
            spec=OptimizeSpec(passes=("magic",)),
        )
        with pytest.raises(ValueError, match="unknown optimizer passes"):
            svc.optimize_fleet([job])


class TestPlumberSpec:
    def test_spec_and_legacy_kwargs_equivalent(self, small_catalog,
                                               test_machine):
        from repro.core.plumber import Plumber
        from tests.test_core_lp import two_stage_pipeline

        pipe = two_stage_pipeline(small_catalog)
        legacy = Plumber(test_machine, trace_duration=1.5, trace_warmup=0.3,
                         backend="analytic").optimize(pipe, iterations=1)
        spec = OptimizeSpec(trace_duration=1.5, trace_warmup=0.3,
                            backend="analytic", iterations=1)
        modern = Plumber(test_machine, spec=spec).optimize(pipe)
        assert modern.decisions == legacy.decisions
        assert modern.model.observed_throughput == pytest.approx(
            legacy.model.observed_throughput
        )

    def test_call_level_spec_governs_trace_acquisition(self, small_catalog,
                                                       test_machine):
        """Regression: a per-call ``spec=`` must drive the trace backend
        and window too, not just pass selection — identical results to
        constructing the Plumber with that spec."""
        from repro.core.plumber import Plumber
        from tests.test_core_lp import two_stage_pipeline

        pipe = two_stage_pipeline(small_catalog)
        spec = OptimizeSpec(iterations=1, backend="analytic",
                            trace_duration=1.0, trace_warmup=0.25)
        per_call = Plumber(test_machine).optimize(pipe, spec=spec)
        per_instance = Plumber(test_machine, spec=spec).optimize(pipe)
        assert per_call.decisions == per_instance.decisions
        assert per_call.model.observed_throughput == pytest.approx(
            per_instance.model.observed_throughput
        )
        # The analytic backend stamps its traces; a simulate-window trace
        # would differ in measured_seconds.
        assert per_call.model.trace.backend == "analytic"
        assert per_call.model.trace.measured_seconds == pytest.approx(0.75)

    def test_legacy_kwargs_override_spec(self, test_machine):
        from repro.core.plumber import Plumber

        spec = OptimizeSpec(backend="simulate", trace_duration=9.0)
        plumber = Plumber(test_machine, spec=spec, backend="analytic",
                          trace_duration=1.0)
        assert plumber.backend.name == "analytic"
        assert plumber.trace_duration == 1.0
        assert plumber.trace_warmup == spec.trace_warmup  # inherited

    def test_memory_bytes_caps_cache_planning(self, small_catalog,
                                              test_machine):
        """A tiny memory ceiling suppresses the cache pass entirely."""
        from repro.core.plumber import Plumber
        from tests.test_core_lp import two_stage_pipeline

        pipe = two_stage_pipeline(small_catalog)
        spec = OptimizeSpec(trace_duration=1.0, trace_warmup=0.25,
                            backend="analytic", iterations=1,
                            memory_bytes=1024.0)
        result = Plumber(test_machine, spec=spec).optimize(pipe)
        assert result.cache is None
