"""Fault-injection harness for the shard-fabric tests.

Real distributed failures are timing-dependent and unreproducible; the
chaos tests instead *script* them. This module provides:

* :func:`refused_port` — an address that deterministically refuses TCP
  connections (a dead host).
* :class:`FaultyHTTPServer` — a real listening socket whose handling of
  each request follows a per-(method, path) script: answer normally,
  close the socket mid-response, stall forever, or storm ``429``s.
  Scripts let one endpoint behave (``GET /ready`` → 200) while another
  misbehaves (``POST /optimize`` → stall), which is exactly how partial
  failures look in production.
* :class:`FlakyShard` — an in-process shard wrapper that fails its
  first N dispatches with a scripted exception, then recovers —
  deterministic "host died and came back" without sockets.
* :func:`maybe_dump_degraded` — writes a degraded report's JSON to
  ``$REPRO_DEGRADED_DUMP_DIR`` (when set) so CI uploads the actual
  degraded payloads as artifacts for offline inspection.

Everything is stdlib: raw ``socket`` + ``threading``, no test-only
dependencies.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Callable, Dict, Optional, Tuple, Union

__all__ = [
    "refused_port",
    "FaultyHTTPServer",
    "FlakyShard",
    "maybe_dump_degraded",
    "ok",
    "stall",
    "close_mid_response",
    "storm_429",
]


def refused_port() -> int:
    """A port on 127.0.0.1 that refuses connections.

    Bound once to reserve it, then closed — nothing listens, so every
    connect gets ``ECONNREFUSED`` immediately (no timeout involved):
    the cheapest deterministic "host is gone".
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
    finally:
        sock.close()


# ----------------------------------------------------------------------
# Behaviors: how FaultyHTTPServer answers one parsed request.
# Each is a callable (conn, method, path) -> bool; the return says
# whether the connection may be reused for another request.
# ----------------------------------------------------------------------
def _http_response(status: int, reason: str, body: dict,
                   extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        *(f"{k}: {v}" for k, v in (extra_headers or {}).items()),
        "",
        "",
    ]
    return "\r\n".join(headers).encode("utf-8") + payload


def ok(body: dict, status: int = 200):
    """Answer a normal JSON response and keep the connection alive."""
    response = _http_response(status, "OK", body)

    def behave(conn, method, path) -> bool:
        conn.sendall(response)
        return True

    return behave


def stall(event_timeout: float = 60.0):
    """Accept the request, then never answer — a wedged daemon.

    The stall breaks when the server shuts down (or after
    ``event_timeout`` as a backstop), so a finished test never leaks a
    thread parked on a dead socket.
    """

    def behave(conn, method, path, _stop=None) -> bool:
        # _stop is injected by the server loop; wait on it so close()
        # releases stalled handlers immediately.
        if _stop is not None:
            _stop.wait(event_timeout)
        return False

    behave.wants_stop = True  # marker: server injects its stop event
    return behave


def close_mid_response(prefix: bytes = b"HTTP/1.1 200 OK\r\n"
                                       b"Content-Length: 10000\r\n\r\n{"):
    """Send a plausible response *prefix*, then slam the socket shut —
    the daemon died while writing (promised 10000 bytes, sent a few)."""

    def behave(conn, method, path) -> bool:
        conn.sendall(prefix)
        conn.shutdown(socket.SHUT_RDWR)
        return False

    return behave


def storm_429(retry_after: float = 0.0, limit: Optional[int] = None,
              then: Optional[Callable] = None):
    """Answer ``429`` (with a ``Retry-After`` hint) ``limit`` times —
    or forever — then fall through to ``then`` (default: keep 429ing).
    A saturated daemon that never recovers within the client's retry
    budget."""
    state = {"count": 0}

    def behave(conn, method, path) -> bool:
        state["count"] += 1
        if limit is not None and state["count"] > limit and then is not None:
            return then(conn, method, path)
        conn.sendall(_http_response(
            429, "Too Many Requests",
            {"error": "scripted saturation",
             "retry_after_seconds": retry_after},
            {"Retry-After": str(retry_after)},
        ))
        return True

    return behave


Behavior = Callable
Script = Dict[Union[Tuple[str, str], str], Behavior]


class FaultyHTTPServer:
    """A scriptable HTTP/1.1 server speaking just enough protocol to
    fault-inject the real ``OptimizationClient``.

    ``script`` maps ``(method, path)`` (or a bare ``path``, any method)
    to a behavior; unmatched requests 404. Example — ready but wedged::

        server = FaultyHTTPServer({
            ("GET", "/ready"): ok({"ready": True}),
            ("POST", "/optimize"): stall(),
        })

    Use as a context manager; ``url`` is the base URL to point a client
    at. ``requests`` records every (method, path) seen, so tests can
    assert the client actually exercised the faulty endpoint.
    """

    def __init__(self, script: Script) -> None:
        self.script = script
        self.requests = []
        self._stop = threading.Event()
        self._conns = []
        self._lock = threading.Lock()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="faulty-http-accept", daemon=True
        )
        self._accept_thread.start()

    # -- protocol plumbing ---------------------------------------------
    @staticmethod
    def _read_request(conn) -> Optional[Tuple[str, str]]:
        """Read one request (headers + body); return (method, path)."""
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return None
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        method, path, _version = lines[0].split(" ", 2)
        length = 0
        for line in lines[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1].strip())
        while len(rest) < length:
            chunk = conn.recv(65536)
            if not chunk:
                return None
            rest += chunk
        return method, path.split("?", 1)[0]

    def _behavior_for(self, method: str, path: str) -> Behavior:
        for key in ((method, path), path):
            if key in self.script:
                return self.script[key]
        return ok({"error": f"unscripted {method} {path}"}, status=404)

    def _handle(self, conn) -> None:
        try:
            while not self._stop.is_set():
                request = self._read_request(conn)
                if request is None:
                    return
                method, path = request
                self.requests.append((method, path))
                behavior = self._behavior_for(method, path)
                if getattr(behavior, "wants_stop", False):
                    keep = behavior(conn, method, path, _stop=self._stop)
                else:
                    keep = behavior(conn, method, path)
                if not keep:
                    return
        except OSError:
            pass  # client went away or close() shut us down
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                self._conns.append(conn)
            threading.Thread(
                target=self._handle, args=(conn,),
                name="faulty-http-conn", daemon=True,
            ).start()

    def close(self) -> None:
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=5)

    def __enter__(self) -> "FaultyHTTPServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FlakyShard:
    """An in-process shard that fails its first ``failures`` dispatches.

    Each failed dispatch raises ``exc_factory()`` (fresh exception per
    call — exceptions hold tracebacks and must not be shared); after
    the scripted failures it delegates to ``inner`` — the host
    "recovered". ``stats_error`` makes ``stats()`` (and therefore the
    probe fallback) fail while the shard is still down, so quarantine
    probes see the same outage dispatch does.
    """

    def __init__(self, inner, failures: int, exc_factory: Callable,
                 stats_error: bool = False) -> None:
        self.inner = inner
        self.failures_left = failures
        self.exc_factory = exc_factory
        self.stats_error = stats_error
        self.dispatch_calls = 0

    @property
    def down(self) -> bool:
        return self.failures_left > 0

    def optimize_fleet(self, jobs):
        self.dispatch_calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise self.exc_factory()
        return self.inner.optimize_fleet(jobs)

    def stats(self):
        if self.down and self.stats_error:
            raise ConnectionError("scripted stats outage")
        return self.inner.stats()


def maybe_dump_degraded(report, name: str) -> Optional[str]:
    """Dump a degraded report's JSON for CI artifact upload.

    When ``$REPRO_DEGRADED_DUMP_DIR`` is set (the chaos CI job sets
    it), the report's job names and full ``degraded`` section are
    written there as ``<name>.json``; returns the path (or ``None``
    when dumping is off or the report is not degraded).
    """
    dump_dir = os.environ.get("REPRO_DEGRADED_DUMP_DIR")
    if not dump_dir or report.degraded is None:
        return None
    os.makedirs(dump_dir, exist_ok=True)
    path = os.path.join(dump_dir, f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "jobs": [j.name for j in report.jobs],
                "cache_hits": report.cache_hits,
                "cache_misses": report.cache_misses,
                "degraded": report.degraded,
            },
            fh, indent=2, sort_keys=True,
        )
    return path
