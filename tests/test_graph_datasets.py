"""Unit tests for dataset node types and the Pipeline container."""

import math

import pytest

from repro.graph.builder import (
    from_tfrecords,
    interleave_datasets,
    zip_datasets,
)
from repro.graph.datasets import (
    AUTOTUNE,
    BatchNode,
    CacheNode,
    InterleaveDatasetsNode,
    MapNode,
    Pipeline,
    RepeatNode,
    ShuffleNode,
    TakeNode,
    ZipNode,
)
from tests.conftest import make_udf


class TestNodeBasics:
    def test_source_is_tunable(self, small_catalog):
        src = from_tfrecords(small_catalog, parallelism=4, name="src").node
        assert src.tunable
        assert src.effective_parallelism == 4
        assert not src.sequential

    def test_autotune_sentinel_maps_to_one(self, small_catalog):
        src = from_tfrecords(small_catalog, parallelism=AUTOTUNE, name="s").node
        assert src.effective_parallelism == 1

    def test_shuffle_is_sequential(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .shuffle(8, name="shuf")
            .build("p")
        )
        assert pipe.node("shuf").sequential
        assert pipe.node("shuf").effective_parallelism == 1

    def test_sequential_map(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .map(make_udf("pack"), sequential=True, name="pack")
            .build("p")
        )
        node = pipe.node("pack")
        assert node.sequential
        assert not node.tunable

    def test_batch_rejects_zero(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        with pytest.raises(ValueError, match="batch_size"):
            BatchNode("b", src, batch_size=0)

    def test_repeat_rejects_zero_count(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        with pytest.raises(ValueError, match="repeat"):
            RepeatNode("r", src, count=0)

    def test_take_rejects_zero(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        with pytest.raises(ValueError):
            TakeNode("t", src, count=0)

    def test_cache_rejects_bad_storage(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        with pytest.raises(ValueError, match="storage"):
            CacheNode("c", src, storage="tape")

    def test_elements_ratio_by_kind(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        assert src.elements_ratio() == 1.0
        m = MapNode("m", src, make_udf("f"))
        assert m.elements_ratio() == 1.0
        b = BatchNode("b", m, batch_size=32)
        assert b.elements_ratio() == pytest.approx(1 / 32)


class TestPipeline:
    def test_duplicate_names_rejected(self, small_catalog):
        src = from_tfrecords(small_catalog, name="x").node
        m = MapNode("x", src, make_udf("f"))
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline(m)

    def test_topological_order_sources_first(self, simple_pipeline):
        order = [n.name for n in simple_pipeline.topological_order()]
        assert order[0] == "src"
        assert order[-1] == "repeat"
        assert order.index("map_work") < order.index("batch")

    def test_node_lookup_error_lists_names(self, simple_pipeline):
        with pytest.raises(KeyError, match="no node named"):
            simple_pipeline.node("missing")

    def test_parent_of(self, simple_pipeline):
        assert simple_pipeline.parent_of("src").name == "map_work"
        assert simple_pipeline.parent_of("repeat") is None

    def test_visit_ratios_account_for_batch(self, simple_pipeline):
        ratios = simple_pipeline.visit_ratios()
        assert ratios["repeat"] == 1.0
        assert ratios["batch"] == 1.0
        # Pre-batch nodes complete batch_size elements per minibatch.
        assert ratios["map_work"] == pytest.approx(16.0)
        assert ratios["src"] == pytest.approx(16.0)

    def test_batch_size_product(self, simple_pipeline):
        assert simple_pipeline.batch_size() == 16

    def test_tunables(self, simple_pipeline):
        names = {n.name for n in simple_pipeline.tunables()}
        assert names == {"src", "map_work", "batch"}

    def test_clone_is_deep_for_nodes(self, simple_pipeline):
        clone = simple_pipeline.clone()
        clone.node("map_work").parallelism = 7
        assert simple_pipeline.node("map_work").parallelism == 1
        assert [n.name for n in clone.topological_order()] == [
            n.name for n in simple_pipeline.topological_order()
        ]

    def test_sources(self, simple_pipeline):
        assert [s.name for s in simple_pipeline.sources()] == ["src"]


class TestMergeNodes:
    def _branches(self, catalog):
        a = from_tfrecords(catalog, name="src_a").map(
            make_udf("fa"), name="map_a")
        b = from_tfrecords(catalog, name="src_b").map(
            make_udf("fb"), name="map_b")
        return a, b

    def _zip_pipeline(self, catalog):
        a, b = self._branches(catalog)
        return (
            zip_datasets([a, b], name="z")
            .batch(4, name="batch")
            .repeat(None, name="rep")
            .build("p")
        )

    def test_zip_is_variadic(self, small_catalog):
        pipe = self._zip_pipeline(small_catalog)
        z = pipe.node("z")
        assert isinstance(z, ZipNode)
        assert z.merges and z.input_arity is None
        assert z.input_consumption(0) == 1.0
        assert z.input_consumption(1) == 1.0

    def test_zip_needs_two_inputs(self, small_catalog):
        with pytest.raises(ValueError, match="at least 2"):
            zip_datasets([from_tfrecords(small_catalog, name="s")])

    def test_zip_visit_ratios_reach_every_branch(self, small_catalog):
        ratios = self._zip_pipeline(small_catalog).visit_ratios()
        # batch(4) consumes 4 zip outputs per root element; a zip output
        # consumes one element from *each* branch.
        assert ratios["z"] == pytest.approx(4.0)
        assert ratios["map_a"] == pytest.approx(4.0)
        assert ratios["src_b"] == pytest.approx(4.0)

    def test_zip_batch_size_sums_branches(self, small_catalog):
        # One zip output carries one element per branch: 2 examples,
        # then batch(4) packs 4 of them.
        assert self._zip_pipeline(small_catalog).batch_size() == 8

    def test_interleave_weights_normalize(self, small_catalog):
        a, b = self._branches(small_catalog)
        pipe = interleave_datasets(
            [a, b], weights=[3.0, 1.0], name="mix").build("p")
        mix = pipe.node("mix")
        assert isinstance(mix, InterleaveDatasetsNode)
        assert mix.weights == pytest.approx([0.75, 0.25])
        assert mix.input_consumption(0) == pytest.approx(0.75)
        assert mix.input_consumption(1) == pytest.approx(0.25)
        ratios = pipe.visit_ratios()
        assert ratios["src_a"] == pytest.approx(0.75)
        assert ratios["src_b"] == pytest.approx(0.25)

    def test_interleave_default_weights_uniform(self, small_catalog):
        a, b = self._branches(small_catalog)
        pipe = interleave_datasets([a, b], name="mix").build("p")
        assert pipe.node("mix").weights == pytest.approx([0.5, 0.5])

    def test_clone_preserves_merge_structure(self, small_catalog):
        pipe = self._zip_pipeline(small_catalog)
        clone = pipe.clone()
        assert [n.name for n in clone.topological_order()] == [
            n.name for n in pipe.topological_order()
        ]
        assert clone.node("z") is not pipe.node("z")
        assert [c.name for c in clone.node("z").inputs] == ["map_a", "map_b"]
        assert all(c is not o for c, o in
                   zip(clone.node("z").inputs, pipe.node("z").inputs))

    def test_clone_preserves_interleave_weights(self, small_catalog):
        a, b = self._branches(small_catalog)
        pipe = interleave_datasets(
            [a, b], weights=[3.0, 1.0], name="mix").build("p")
        assert pipe.clone().node("mix").weights == pytest.approx(
            [0.75, 0.25])

    # -- repr/describe must render branch structure, not flatten the
    # -- topological order into a fake linear chain (regression pin)
    def test_repr_renders_branches(self, small_catalog):
        pipe = self._zip_pipeline(small_catalog)
        assert repr(pipe) == (
            "Pipeline('p': rep <- batch <- z <- "
            "[map_a <- src_a | map_b <- src_b])"
        )

    def test_repr_never_flattens_to_a_chain(self, small_catalog):
        # The old bug: topological order joined with "<-" shows
        # "... map_a <- src_a <- map_b ..." — a chain that does not exist.
        assert "src_a <- map_b" not in repr(self._zip_pipeline(small_catalog))

    def test_describe_indents_branches(self, small_catalog):
        lines = self._zip_pipeline(small_catalog).describe().splitlines()
        assert lines[0].startswith("rep [repeat")
        assert lines[1].startswith("  batch [batch")
        assert lines[2].startswith("    z [zip")
        assert lines[3].startswith("      map_a [map")
        assert lines[4].startswith("        src_a [")
        assert lines[5].startswith("      map_b [map")
        assert lines[6].startswith("        src_b [")
