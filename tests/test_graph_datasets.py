"""Unit tests for dataset node types and the Pipeline container."""

import math

import pytest

from repro.graph.builder import from_tfrecords
from repro.graph.datasets import (
    AUTOTUNE,
    BatchNode,
    CacheNode,
    MapNode,
    Pipeline,
    RepeatNode,
    ShuffleNode,
    TakeNode,
)
from tests.conftest import make_udf


class TestNodeBasics:
    def test_source_is_tunable(self, small_catalog):
        src = from_tfrecords(small_catalog, parallelism=4, name="src").node
        assert src.tunable
        assert src.effective_parallelism == 4
        assert not src.sequential

    def test_autotune_sentinel_maps_to_one(self, small_catalog):
        src = from_tfrecords(small_catalog, parallelism=AUTOTUNE, name="s").node
        assert src.effective_parallelism == 1

    def test_shuffle_is_sequential(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .shuffle(8, name="shuf")
            .build("p")
        )
        assert pipe.node("shuf").sequential
        assert pipe.node("shuf").effective_parallelism == 1

    def test_sequential_map(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .map(make_udf("pack"), sequential=True, name="pack")
            .build("p")
        )
        node = pipe.node("pack")
        assert node.sequential
        assert not node.tunable

    def test_batch_rejects_zero(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        with pytest.raises(ValueError, match="batch_size"):
            BatchNode("b", src, batch_size=0)

    def test_repeat_rejects_zero_count(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        with pytest.raises(ValueError, match="repeat"):
            RepeatNode("r", src, count=0)

    def test_take_rejects_zero(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        with pytest.raises(ValueError):
            TakeNode("t", src, count=0)

    def test_cache_rejects_bad_storage(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        with pytest.raises(ValueError, match="storage"):
            CacheNode("c", src, storage="tape")

    def test_elements_ratio_by_kind(self, small_catalog):
        src = from_tfrecords(small_catalog, name="src").node
        assert src.elements_ratio() == 1.0
        m = MapNode("m", src, make_udf("f"))
        assert m.elements_ratio() == 1.0
        b = BatchNode("b", m, batch_size=32)
        assert b.elements_ratio() == pytest.approx(1 / 32)


class TestPipeline:
    def test_duplicate_names_rejected(self, small_catalog):
        src = from_tfrecords(small_catalog, name="x").node
        m = MapNode("x", src, make_udf("f"))
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline(m)

    def test_topological_order_sources_first(self, simple_pipeline):
        order = [n.name for n in simple_pipeline.topological_order()]
        assert order[0] == "src"
        assert order[-1] == "repeat"
        assert order.index("map_work") < order.index("batch")

    def test_node_lookup_error_lists_names(self, simple_pipeline):
        with pytest.raises(KeyError, match="no node named"):
            simple_pipeline.node("missing")

    def test_parent_of(self, simple_pipeline):
        assert simple_pipeline.parent_of("src").name == "map_work"
        assert simple_pipeline.parent_of("repeat") is None

    def test_visit_ratios_account_for_batch(self, simple_pipeline):
        ratios = simple_pipeline.visit_ratios()
        assert ratios["repeat"] == 1.0
        assert ratios["batch"] == 1.0
        # Pre-batch nodes complete batch_size elements per minibatch.
        assert ratios["map_work"] == pytest.approx(16.0)
        assert ratios["src"] == pytest.approx(16.0)

    def test_batch_size_product(self, simple_pipeline):
        assert simple_pipeline.batch_size() == 16

    def test_tunables(self, simple_pipeline):
        names = {n.name for n in simple_pipeline.tunables()}
        assert names == {"src", "map_work", "batch"}

    def test_clone_is_deep_for_nodes(self, simple_pipeline):
        clone = simple_pipeline.clone()
        clone.node("map_work").parallelism = 7
        assert simple_pipeline.node("map_work").parallelism == 1
        assert [n.name for n in clone.topological_order()] == [
            n.name for n in simple_pipeline.topological_order()
        ]

    def test_sources(self, simple_pipeline):
        assert [s.name for s in simple_pipeline.sources()] == ["src"]
