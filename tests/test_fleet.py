"""Tests for the §3 fleet analysis."""

import pytest

from repro.fleet.analysis import latency_cdf, latency_fractions, summarize
from repro.fleet.generator import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(FleetConfig(num_jobs=800, seed=11))


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = generate_fleet(FleetConfig(num_jobs=50, seed=2))
        b = generate_fleet(FleetConfig(num_jobs=50, seed=2))
        assert [j.next_latency for j in a] == [j.next_latency for j in b]

    def test_job_fields_sane(self, fleet):
        for job in fleet:
            assert job.next_latency >= 0
            assert 0 <= job.cpu_utilization <= 1
            assert 0 <= job.membw_utilization <= 1
            assert job.pipeline_rate > 0
            assert job.model_rate > 0

    def test_naive_jobs_slower_than_tuned(self, fleet):
        import numpy as np

        naive = [j.pipeline_rate for j in fleet if j.config == "naive"]
        tuned = [j.pipeline_rate for j in fleet if j.config == "tuned"]
        assert np.median(naive) < np.median(tuned)

    def test_input_bound_jobs_have_latency(self, fleet):
        for job in fleet:
            if job.input_bound:
                assert job.next_latency > 25e-6 * 0.99


class TestSummary:
    def test_observation_1_quantiles(self, fleet):
        """Obs. 1: 92% > 50us, 62% > 1ms, 16% > 100ms (loose bands)."""
        s = summarize(fleet)
        assert s.frac_over_50us == pytest.approx(0.92, abs=0.07)
        assert s.frac_over_1ms == pytest.approx(0.62, abs=0.12)
        assert s.frac_over_100ms == pytest.approx(0.16, abs=0.08)

    def test_observation_2_low_utilization_when_stalled(self, fleet):
        """Obs. 2: heavily input-bound jobs do not saturate the host."""
        s = summarize(fleet)
        worst = s.band(">100ms")
        assert worst.jobs > 0
        assert worst.mean_cpu < 0.5
        assert worst.mean_membw < 0.5
        # The >100ms cluster uses less CPU than faster jobs (Fig. 4).
        assert worst.mean_cpu <= s.band("50us-100ms").mean_cpu + 0.02

    def test_fractions_monotone(self, fleet):
        f50, f1k, f100k = latency_fractions(fleet)
        assert f50 >= f1k >= f100k

    def test_cdf_monotone(self, fleet):
        cdf = latency_cdf(fleet, points=20)
        lats = [p[0] for p in cdf]
        assert lats == sorted(lats)
        assert cdf[0][1] == 0.0 and cdf[-1][1] == 1.0

    def test_band_lookup(self, fleet):
        s = summarize(fleet)
        assert s.band("<50us").label == "<50us"
        with pytest.raises(KeyError):
            s.band("nope")

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError):
            latency_fractions([])

    def test_threshold_boundary_consistent_with_bands(self):
        """Regression: a job at exactly 100 ms lands in the >100ms band
        (``low <= x < high``) and must also be counted by
        ``frac_over_100ms`` — the fraction comparison is inclusive."""
        from repro.fleet.generator import JobSample

        def job_at(latency):
            return JobSample(
                domain="vision", config="naive", next_latency=latency,
                cpu_utilization=0.1, membw_utilization=0.1,
                pipeline_rate=1.0, model_rate=2.0, cores=16,
            )

        jobs = [job_at(100e-3), job_at(1e-6)]
        summary = summarize(jobs)
        assert summary.band(">100ms").jobs == 1
        assert summary.frac_over_100ms == pytest.approx(0.5)
        # Same boundary convention at every threshold.
        f50, f1k, f100k = latency_fractions([job_at(50e-6), job_at(1e-3)])
        assert f50 == pytest.approx(1.0)   # both >= 50us
        assert f1k == pytest.approx(0.5)
        assert f100k == pytest.approx(0.0)
