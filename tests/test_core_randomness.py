"""Tests for the §B.1 randomness transitive closure."""

from repro.core.randomness import node_is_random, tainted_nodes, udf_is_random
from repro.graph.builder import from_tfrecords
from repro.graph.udf import UserFunction
from tests.conftest import make_udf


class TestUdfClosure:
    def test_direct_seed_access(self):
        assert udf_is_random(UserFunction("f", accesses_seed=True))
        assert not udf_is_random(UserFunction("f"))

    def test_transitive_one_hop(self):
        rng = UserFunction("rng", accesses_seed=True)
        outer = UserFunction("outer", calls=(rng,))
        assert udf_is_random(outer)

    def test_transitive_deep_chain(self):
        f = UserFunction("leaf", accesses_seed=True)
        for i in range(5):
            f = UserFunction(f"level{i}", calls=(f,))
        assert udf_is_random(f)

    def test_deterministic_chain(self):
        f = UserFunction("leaf")
        g = UserFunction("mid", calls=(f,))
        assert not udf_is_random(UserFunction("top", calls=(g, f)))

    def test_shared_subfunction_visited_once(self):
        shared = UserFunction("shared")
        top = UserFunction("top", calls=(shared, shared, shared))
        assert not udf_is_random(top)


class TestTaint:
    def test_taint_propagates_to_root(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .map(make_udf("decode"), name="dec")
            .map(make_udf("crop", random=True), name="crop")
            .map(make_udf("transpose"), name="tr")
            .batch(4, name="b")
            .build("p")
        )
        tainted = tainted_nodes(pipe)
        assert tainted == {"crop", "tr", "b"}

    def test_no_random_means_no_taint(self, simple_pipeline):
        assert tainted_nodes(simple_pipeline) == set()

    def test_fused_random_taints_from_fusion_point(self, small_catalog):
        """Figure 11: fusing crop into decode makes decode random too."""
        seeded = UserFunction("crop", accesses_seed=True)
        fused = UserFunction("fused_decode_crop", calls=(seeded,))
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .map(fused, name="dec")
            .batch(4, name="b")
            .build("p")
        )
        assert tainted_nodes(pipe) == {"dec", "b"}

    def test_shuffle_not_random_for_caching(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .shuffle(16, name="shuf")
            .build("p")
        )
        assert tainted_nodes(pipe) == set()
        assert not node_is_random(pipe.node("shuf"))
