"""Daemon lifecycle tests: serve/shutdown, concurrent submission,
admission control (429 + retry hint), and disk-store fault tolerance."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.spec import OptimizeSpec
from repro.graph.serialize import pipeline_to_dict
from repro.service import (
    AdmissionController,
    BatchOptimizer,
    DiskStore,
    OptimizationDaemon,
    job_lane,
)
from tests.test_service import small_pipeline

#: analytic backend keeps daemon tests sub-second per batch
FAST_SPEC = OptimizeSpec(iterations=1, backend="analytic",
                         trace_duration=1.0, trace_warmup=0.25)
SIM_SPEC = FAST_SPEC.replace(backend="simulate")


# ----------------------------------------------------------------------
# Tiny HTTP client helpers (stdlib only, mirroring daemon transport).
# ----------------------------------------------------------------------
def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc), dict(exc.headers)


def _post(url, body):
    data = json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc), dict(exc.headers)


def _wait_done(base, batch_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload, _ = _get(f"{base}/jobs/{batch_id}")
        assert status == 200
        if payload["status"] in ("done", "failed"):
            return payload
        time.sleep(0.02)
    raise AssertionError(f"batch {batch_id} did not finish in {timeout}s")


def _job_body(name, pipeline, machine, spec=None):
    body = {"name": name, "pipeline": pipeline_to_dict(pipeline),
            "machine": machine.to_dict()}
    if spec is not None:
        body["spec"] = spec.to_dict()
    return body


@pytest.fixture
def daemon(test_machine):
    dm = OptimizationDaemon(
        BatchOptimizer(machine=test_machine, executor="serial",
                       spec=FAST_SPEC),
    )
    with dm:
        yield dm


class TestLifecycle:
    def test_start_serve_shutdown(self, test_machine, small_catalog):
        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC)
        )
        dm.start()
        assert dm.port > 0
        status, payload, _ = _get(f"{dm.url}/stats")
        assert status == 200 and payload["queue_depth"] == 0
        url = dm.url
        dm.close()
        with pytest.raises(Exception):
            urllib.request.urlopen(f"{url}/stats", timeout=2)

    def test_start_is_idempotent(self, daemon):
        port = daemon.port
        daemon.start()
        assert daemon.port == port

    def test_port_requires_running_server(self, test_machine):
        dm = OptimizationDaemon(BatchOptimizer(machine=test_machine))
        with pytest.raises(RuntimeError, match="not running"):
            dm.port

    def test_submit_poll_report(self, daemon, small_catalog, test_machine):
        pipe = small_pipeline(small_catalog)
        status, accepted, _ = _post(
            f"{daemon.url}/optimize",
            {"jobs": [_job_body("a", pipe, test_machine),
                      _job_body("b", pipe, test_machine)]},
        )
        assert status == 202
        final = _wait_done(daemon.url, accepted["id"])
        assert final["status"] == "done"
        status, report, _ = _get(f"{daemon.url}/report/{accepted['id']}")
        assert status == 200
        assert [j["name"] for j in report["jobs"]] == ["a", "b"]
        # Structurally identical jobs share one optimization.
        assert report["cache_misses"] == 1 and report["cache_hits"] == 1
        assert report["jobs"][1]["cache_hit"]
        assert report["jobs"][0]["provenance"]["producer"] == "analytic"
        # The rewritten program travels in the report (§4.1: traces and
        # results are programs).
        assert report["jobs"][0]["pipeline"]["nodes"]

    def test_single_job_form(self, daemon, small_catalog, test_machine):
        body = _job_body("solo", small_pipeline(small_catalog), test_machine)
        status, accepted, _ = _post(f"{daemon.url}/optimize", body)
        assert status == 202 and accepted["jobs"] == 1
        assert _wait_done(daemon.url, accepted["id"])["status"] == "done"

    def test_report_for_unknown_batch_404(self, daemon):
        status, payload, _ = _get(f"{daemon.url}/report/batch-9999")
        assert status == 404 and "unknown batch" in payload["error"]

    def test_unknown_endpoint_404(self, daemon):
        assert _get(f"{daemon.url}/nope")[0] == 404
        assert _post(f"{daemon.url}/nope", {})[0] == 404

    def test_malformed_bodies_400(self, daemon, small_catalog, test_machine):
        pipe = small_pipeline(small_catalog)
        cases = [
            {},                                        # no jobs/pipeline
            {"jobs": []},                              # empty batch
            {"jobs": [{"pipeline": pipeline_to_dict(pipe)}]},  # no name
            {"jobs": [{"name": "x", "pipeline": {"bad": 1}}]},  # bad program
            {"jobs": [_job_body("d", pipe, test_machine),
                      _job_body("d", pipe, test_machine)]},     # dup name
            {"name": "x", "pipeline": pipeline_to_dict(pipe),
             "spec": {"nonsense": True}},              # bad spec
        ]
        for body in cases:
            status, payload, _ = _post(f"{daemon.url}/optimize", body)
            assert status == 400, body
            assert "error" in payload

    def test_invalid_json_400(self, daemon):
        req = urllib.request.Request(
            f"{daemon.url}/optimize", data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    def test_malformed_content_length_400(self, daemon):
        """A bad Content-Length header answers 400, not a dropped
        connection."""
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", daemon.port,
                                          timeout=10)
        try:
            conn.putrequest("POST", "/optimize")
            conn.putheader("Content-Length", "abc")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            assert "Content-Length" in json.load(resp)["error"]
        finally:
            conn.close()

    def test_restart_after_close(self, test_machine, small_catalog):
        """close() then start() yields a fully working daemon again —
        the dispatcher pool is recreated, not left shut down."""
        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC))
        dm.start()
        dm.close()
        dm.start()
        try:
            body = _job_body("again", small_pipeline(small_catalog),
                             test_machine)
            status, accepted, _ = _post(f"{dm.url}/optimize", body)
            assert status == 202
            assert _wait_done(dm.url, accepted["id"])["status"] == "done"
            assert dm.admission.in_flight() == {"simulate": 0,
                                                "analytic": 0}
        finally:
            dm.close()

    def test_submit_on_closed_daemon_releases_slots(self, test_machine,
                                                    small_catalog):
        """A submit that cannot enqueue (daemon closed) must answer 503
        and give back its reserved admission slots."""
        from repro.service.daemon import _RequestError

        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC))
        body = _job_body("late", small_pipeline(small_catalog),
                         test_machine)  # daemon never started: no pool
        with pytest.raises(_RequestError) as err:
            dm.submit(body)
        assert err.value.status == 503
        assert dm.admission.in_flight() == {"simulate": 0, "analytic": 0}
        with pytest.raises(_RequestError, match="unknown batch"):
            dm.job_status("batch-0001")

    def test_finished_batches_evicted_beyond_bound(self, test_machine,
                                                   small_catalog):
        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC),
            max_finished_batches=2,
        )
        with dm:
            pipe = small_pipeline(small_catalog)
            ids = []
            for i in range(3):
                _, accepted, _ = _post(f"{dm.url}/optimize",
                                       _job_body(f"j{i}", pipe, test_machine))
                ids.append(accepted["id"])
                _wait_done(dm.url, accepted["id"])
            # Oldest finished record evicted; latest two retained.
            assert _get(f"{dm.url}/report/{ids[0]}")[0] == 404
            assert _get(f"{dm.url}/report/{ids[1]}")[0] == 200
            assert _get(f"{dm.url}/report/{ids[2]}")[0] == 200

    def test_missing_machine_400_when_no_default(self, small_catalog):
        dm = OptimizationDaemon(
            BatchOptimizer(executor="serial", spec=FAST_SPEC))
        with dm:
            body = {"name": "x",
                    "pipeline": pipeline_to_dict(small_pipeline(small_catalog))}
            status, payload, _ = _post(f"{dm.url}/optimize", body)
            assert status == 400 and "no machine" in payload["error"]

    def test_failed_batch_reported_not_fatal(self, daemon, small_catalog,
                                             test_machine):
        def boom(jobs):
            raise RuntimeError("worker exploded")

        daemon.optimizer.optimize_fleet = boom
        body = _job_body("x", small_pipeline(small_catalog), test_machine)
        _, accepted, _ = _post(f"{daemon.url}/optimize", body)
        final = _wait_done(daemon.url, accepted["id"])
        assert final["status"] == "failed"
        assert "worker exploded" in final["error"]
        status, payload, _ = _get(f"{daemon.url}/report/{accepted['id']}")
        assert status == 500
        # The daemon survives and admission slots were released.
        assert daemon.admission.in_flight() == {"simulate": 0, "analytic": 0}


class TestConcurrentSubmission:
    def test_concurrent_posts_all_served(self, small_catalog, test_machine):
        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC),
            workers=4,
        )
        with dm:
            pipe = small_pipeline(small_catalog)
            results = []
            lock = threading.Lock()

            def submit(i):
                status, accepted, _ = _post(
                    f"{dm.url}/optimize",
                    _job_body(f"job{i}", pipe, test_machine),
                )
                with lock:
                    results.append((status, accepted))

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert [s for s, _ in results] == [202] * 8
            ids = [a["id"] for _, a in results]
            assert len(set(ids)) == 8
            for batch_id in ids:
                assert _wait_done(dm.url, batch_id)["status"] == "done"
            _, stats, _ = _get(f"{dm.url}/stats")
            assert stats["queue_depth"] == 0
            assert stats["batches"]["done"] == 8
            # 8 structurally identical jobs; at least one optimization
            # ran, the rest were served from the shared store. (Batches
            # racing on an unpopulated store may each compute the key.)
            assert stats["cache"]["cache_hits"] >= 1
            # Counter updates are locked: no increment is lost even
            # with dispatcher threads finishing batches concurrently.
            assert stats["cache"]["cache_hits"] + \
                stats["cache"]["cache_misses"] == 8
            assert stats["cache"]["store_entries"] == 1


class TestAdmissionControl:
    def test_job_lane_classification(self):
        assert job_lane(FAST_SPEC) == "analytic"
        assert job_lane(SIM_SPEC) == "simulate"
        assert job_lane(FAST_SPEC.replace(backend="adaptive")) == "simulate"

    def test_controller_admits_and_releases(self):
        ctl = AdmissionController(max_simulate_jobs=2)
        ok, _ = ctl.try_admit({"simulate": 2})
        assert ok
        ok, hint = ctl.try_admit({"simulate": 1})
        assert not ok and "simulate lane is full" in hint
        ctl.release({"simulate": 2})
        assert ctl.try_admit({"simulate": 1})[0]

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_simulate_jobs=-1)

    def test_simulate_lane_rejection_is_429_with_hint(self, small_catalog,
                                                      test_machine):
        """While the simulate lane is occupied by in-flight work, a new
        simulate batch answers 429 + retry hint; the analytic lane stays
        open; once the lane drains, the retry succeeds."""
        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC),
            max_simulate_jobs=1,
        )
        with dm:
            gate = threading.Event()
            original = dm.optimizer.optimize_fleet

            def gated(jobs):
                assert gate.wait(timeout=60)
                return original(jobs)

            dm.optimizer.optimize_fleet = gated
            pipe = small_pipeline(small_catalog)
            body = _job_body("sim1", pipe, test_machine, spec=SIM_SPEC)
            status, first, _ = _post(f"{dm.url}/optimize", body)
            assert status == 202  # occupies the whole simulate lane
            body = _job_body("sim2", pipe, test_machine, spec=SIM_SPEC)
            status, payload, headers = _post(f"{dm.url}/optimize", body)
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert payload["retry_after_seconds"] == 1
            assert "simulate lane is full" in payload["error"]
            assert "retry" in payload["error"]
            # The analytic lane is bounded separately: same pipeline,
            # analytic spec, admitted while simulate is saturated.
            ok_body = _job_body("ana", pipe, test_machine, spec=FAST_SPEC)
            status, accepted, _ = _post(f"{dm.url}/optimize", ok_body)
            assert status == 202
            gate.set()  # drain the lane
            assert _wait_done(dm.url, first["id"])["status"] == "done"
            assert _wait_done(dm.url, accepted["id"])["status"] == "done"
            # The rejected batch fits now.
            body = _job_body("sim3", pipe, test_machine, spec=SIM_SPEC)
            status, retried, _ = _post(f"{dm.url}/optimize", body)
            assert status == 202
            assert _wait_done(dm.url, retried["id"])["status"] == "done"
            _, stats, _ = _get(f"{dm.url}/stats")
            assert stats["rejected_batches"] == 1

    def test_oversized_batch_rejected_permanently_not_429(self,
                                                          small_catalog,
                                                          test_machine):
        """A batch larger than a lane's whole bound can never fit; the
        daemon must say so (400 + remedy), not ask the client to retry
        forever."""
        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC),
            max_analytic_jobs=2,
        )
        with dm:
            pipe = small_pipeline(small_catalog)
            body = {"jobs": [_job_body(f"j{i}", pipe, test_machine)
                             for i in range(3)]}
            status, payload, _ = _post(f"{dm.url}/optimize", body)
            assert status == 400
            assert "split the batch" in payload["error"]
            # An idle daemon still has all its slots.
            assert dm.admission.in_flight() == {"simulate": 0,
                                                "analytic": 0}

    def test_admission_recovers_after_drain(self, small_catalog,
                                            test_machine):
        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC),
            max_analytic_jobs=2,
        )
        with dm:
            pipe = small_pipeline(small_catalog)
            body = {"jobs": [_job_body("a", pipe, test_machine),
                             _job_body("b", pipe, test_machine)]}
            status, accepted, _ = _post(f"{dm.url}/optimize", body)
            assert status == 202
            _wait_done(dm.url, accepted["id"])
            # Slots released on completion: the same batch fits again.
            body = {"jobs": [_job_body("c", pipe, test_machine),
                             _job_body("d", pipe, test_machine)]}
            assert _post(f"{dm.url}/optimize", body)[0] == 202


class TestBugfixRegressions:
    """Pinned fixes: catch-all 500s, finished_at eviction order, and
    query-string routing. Each of these fails on the pre-fix daemon."""

    def test_unexpected_get_error_answers_500_json(self, daemon):
        """A bug anywhere under do_GET (here: a stats serializer that
        raises) must answer 500 with a JSON error body — previously the
        exception propagated into BaseHTTPRequestHandler and the client
        saw a dropped connection."""
        original = daemon.stats
        daemon.stats = lambda: 1 / 0
        try:
            status, payload, _ = _get(f"{daemon.url}/stats")
            assert status == 500
            assert "internal error" in payload["error"]
            assert "ZeroDivisionError" in payload["error"]
        finally:
            daemon.stats = original
        # The daemon survives its own bug and keeps serving.
        assert _get(f"{daemon.url}/stats")[0] == 200

    def test_unexpected_post_error_answers_500_json(self, daemon,
                                                    small_catalog,
                                                    test_machine):
        original = daemon.submit

        def broken_submit(body):
            raise RuntimeError("bug in submit")

        daemon.submit = broken_submit
        try:
            status, payload, _ = _post(
                f"{daemon.url}/optimize",
                _job_body("x", small_pipeline(small_catalog), test_machine))
            assert status == 500
            assert "bug in submit" in payload["error"]
        finally:
            daemon.submit = original
        assert _get(f"{daemon.url}/stats")[0] == 200

    def test_eviction_orders_by_finished_at_not_submission(self,
                                                           test_machine):
        """Regression: finished batches were evicted in submission
        order, so a batch that finished *seconds ago* could be dropped
        (done -> 404 for its polling client) while much older finishes
        survived. Eviction must order by finished_at."""
        from repro.service.daemon import _Batch

        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC),
            max_finished_batches=2,
        )
        # Submission order A, B, C; finish order B (t=10), C (t=20),
        # A (t=30) — A ran long and finished last.
        for batch_id, finished_at in (("batch-A", 30.0), ("batch-B", 10.0),
                                      ("batch-C", 20.0)):
            dm._batches[batch_id] = _Batch(
                id=batch_id, jobs=[], lanes={}, status="done",
                submitted_at=0.0, finished_at=finished_at)
        dm._evict_finished()
        # The earliest *finish* (B) is evicted; A — submitted first but
        # freshly finished — must survive.
        assert set(dm._batches) == {"batch-A", "batch-C"}

    def test_eviction_never_drops_batch_without_finished_at(self,
                                                            test_machine):
        """A done batch whose finally-block hasn't stamped finished_at
        yet counts as newest, never as evictable."""
        from repro.service.daemon import _Batch

        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC),
            max_finished_batches=1,
        )
        dm._batches["batch-X"] = _Batch(
            id="batch-X", jobs=[], lanes={}, status="done",
            submitted_at=0.0, finished_at=None)
        dm._batches["batch-Y"] = _Batch(
            id="batch-Y", jobs=[], lanes={}, status="done",
            submitted_at=0.0, finished_at=5.0)
        dm._evict_finished()
        assert set(dm._batches) == {"batch-X"}

    def test_query_strings_do_not_break_routing(self, daemon,
                                                small_catalog,
                                                test_machine):
        """Regression: `POST /optimize?x=1` routed to 404 because the
        path matcher compared the query string too. Both verbs must
        split on `?` before routing."""
        body = _job_body("qs", small_pipeline(small_catalog), test_machine)
        status, accepted, _ = _post(f"{daemon.url}/optimize?source=ci",
                                    body)
        assert status == 202
        status, payload, _ = _get(
            f"{daemon.url}/jobs/{accepted['id']}?poll=1")
        assert status == 200 and payload["id"] == accepted["id"]
        assert _get(f"{daemon.url}/stats?verbose=1")[0] == 200
        final = _wait_done(daemon.url, accepted["id"])
        assert final["status"] == "done"
        assert _get(f"{daemon.url}/report/{accepted['id']}?fmt=json")[0] \
            == 200
        # Unknown endpoints still 404 with or without a query string.
        assert _get(f"{daemon.url}/nope?x=1")[0] == 404
        assert _post(f"{daemon.url}/nope?x=1", {})[0] == 404


class TestHealthEndpoints:
    def test_healthz_is_pure_liveness(self, daemon):
        status, payload, _ = _get(f"{daemon.url}/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_ready_on_running_daemon(self, daemon):
        status, payload, _ = _get(f"{daemon.url}/ready")
        assert status == 200
        assert payload["ready"] is True
        assert payload["store_entries"] == 0

    def test_ready_503_when_dispatcher_down(self, daemon):
        """Liveness and readiness must diverge: an HTTP thread serving
        over a dead dispatcher pool is alive but not ready."""
        daemon._pool.shutdown(wait=True)
        daemon._pool = None
        assert _get(f"{daemon.url}/healthz")[0] == 200
        status, payload, _ = _get(f"{daemon.url}/ready")
        assert status == 503
        assert payload["ready"] is False
        assert "dispatcher pool" in payload["reason"]

    def test_ready_503_when_store_unreachable(self, daemon):
        class BrokenStore:
            def __len__(self):
                raise OSError("backing directory gone")

        daemon.optimizer.store = BrokenStore()
        status, payload, _ = _get(f"{daemon.url}/ready")
        assert status == 503
        assert payload["ready"] is False
        assert "store unreachable" in payload["reason"]
        assert "backing directory gone" in payload["reason"]

    def test_readiness_before_start(self, test_machine):
        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC),
        )
        ready, payload = dm.readiness()
        assert not ready and payload["ready"] is False


class TestCompactEndpointRouting:
    def test_compact_rejects_non_object_body(self, daemon):
        status, payload, _ = _post(f"{daemon.url}/compact", [1, 2])
        assert status == 400 and "JSON object" in payload["error"]

    def test_compact_roundtrip(self, daemon, small_catalog, test_machine):
        body = _job_body("gc", small_pipeline(small_catalog), test_machine)
        _, accepted, _ = _post(f"{daemon.url}/optimize", body)
        _wait_done(daemon.url, accepted["id"])
        # Horizon of an hour: nothing is stale yet.
        status, payload, _ = _post(f"{daemon.url}/compact",
                                   {"max_age_seconds": 3600})
        assert status == 200
        assert payload == {"removed": 0, "store_entries": 1}
        # Horizon zero: every dated entry is at/over it.
        status, payload, _ = _post(f"{daemon.url}/compact",
                                   {"max_age_seconds": 0})
        assert status == 200
        assert payload == {"removed": 1, "store_entries": 0}


class TestDiskStoreFaultTolerance:
    def test_killed_mid_write_entry_skipped_not_fatal(self, tmp_path,
                                                      small_catalog,
                                                      test_machine):
        """A daemon restarted onto a store with a torn entry (killed
        mid-write) recomputes that key and serves the rest from disk."""
        pipe_a = small_pipeline(small_catalog, name="a")
        pipe_b = small_pipeline(small_catalog, parallelism=4, name="b")
        first = BatchOptimizer(machine=test_machine, executor="serial",
                               spec=FAST_SPEC, store=DiskStore(tmp_path))
        first.optimize_fleet({"a": pipe_a, "b": pipe_b})
        store = DiskStore(tmp_path)
        assert len(store) == 2
        # Tear one final entry file and leave a mid-write temp orphan —
        # the two crash artifacts a kill -9 can leave behind.
        victim = store.keys()[0]
        path = tmp_path / f"{victim}.json"
        path.write_text(path.read_text()[: 25])
        (tmp_path / f"{victim}.json.tmp-777-cafe").write_text('{"sch')

        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC, store=DiskStore(tmp_path)),
        )
        with dm:
            body = {"jobs": [_job_body("a", pipe_a, test_machine),
                             _job_body("b", pipe_b, test_machine)]}
            _, accepted, _ = _post(f"{dm.url}/optimize", body)
            assert _wait_done(dm.url, accepted["id"])["status"] == "done"
            _, report, _ = _get(f"{dm.url}/report/{accepted['id']}")
            # Exactly the torn key was recomputed.
            assert report["cache_misses"] == 1
            assert report["cache_hits"] == 1
        # The recompute repaired the torn entry on disk.
        assert DiskStore(tmp_path).get(victim) is not None


# ----------------------------------------------------------------------
# GET /metrics: live text exposition + mergeable JSON snapshot.
# ----------------------------------------------------------------------
def _get_text(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, resp.read().decode("utf-8"), dict(resp.headers)


class TestMetricsEndpoint:
    def _run_one_batch(self, daemon, small_catalog, test_machine):
        body = {"jobs": [_job_body(
            "job", small_pipeline(small_catalog), test_machine)]}
        _, accepted, _ = _post(f"{daemon.url}/optimize", body)
        assert _wait_done(daemon.url, accepted["id"])["status"] == "done"

    def test_text_exposition_on_live_daemon(
        self, daemon, small_catalog, test_machine
    ):
        self._run_one_batch(daemon, small_catalog, test_machine)
        status, text, headers = _get_text(f"{daemon.url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        # Route latency histograms surface p50 and p99 per route.
        assert ('repro_daemon_request_seconds{quantile="0.5",'
                'route="optimize"}') in text
        assert ('repro_daemon_request_seconds{quantile="0.99",'
                'route="jobs"}') in text
        # Admission lane occupancy gauges exist per lane (idle = 0).
        assert 'repro_daemon_lane_in_flight{lane="analytic"} 0.0' in text
        assert 'repro_daemon_lane_in_flight{lane="simulate"} 0.0' in text
        # Hit-rate counters from the optimizer's registry merged in.
        assert 'repro_service_jobs_total{result="miss"} 1.0' in text
        # And the engine's process-global counters rode along too.
        assert "repro_sim_events_total" in text or \
            "repro_trace_total" in text

    def test_json_snapshot_is_mergeable_form(
        self, daemon, small_catalog, test_machine
    ):
        from repro.obs import merge_snapshots, summarize_snapshot

        self._run_one_batch(daemon, small_catalog, test_machine)
        status, snap, _ = _get(f"{daemon.url}/metrics?format=json")
        assert status == 200
        family = snap["repro_daemon_request_seconds"]
        assert family["kind"] == "histogram"
        routes = {s["labels"]["route"] for s in family["samples"]}
        assert {"optimize", "jobs"} <= routes
        for sample in family["samples"]:
            value = sample["value"]
            assert value["count"] >= 1
            assert value["p50"] <= value["p99"]
        # The snapshot is the mergeable wire form: merging it with
        # itself doubles counts instead of raising.
        doubled = merge_snapshots([snap, snap])
        summary = summarize_snapshot(doubled)
        assert summary[
            'repro_daemon_batches_total{status="done"}'] == 2.0

    def test_unknown_routes_collapse_to_other(self, daemon):
        status, _, _ = _get(f"{daemon.url}/nope")
        assert status == 404
        _, snap, _ = _get(f"{daemon.url}/metrics?format=json")
        counts = snap["repro_daemon_requests_total"]["samples"]
        labels = [s["labels"] for s in counts]
        assert any(l["route"] == "other" and l["status"] == "404"
                   for l in labels)
        # Bounded cardinality: every route label is from the known set.
        known = {"optimize", "compact", "healthz", "ready", "stats",
                 "jobs", "report", "metrics", "other"}
        assert {l["route"] for l in labels} <= known

    def test_stats_carries_metrics_summary(
        self, daemon, small_catalog, test_machine
    ):
        self._run_one_batch(daemon, small_catalog, test_machine)
        status, payload, _ = _get(f"{daemon.url}/stats")
        assert status == 200
        summary = payload["metrics"]
        assert summary['repro_daemon_batches_total{status="done"}'] == 1.0
        route = summary[
            'repro_daemon_request_seconds{route="optimize"}']
        assert route["count"] >= 1 and "p99" in route
