"""Differential testing across the three trace backends.

Thirty seeded random pipeline graphs — varying depth, UDF costs, source
parallelism, shuffle/batch shapes, and cache/prefetch placement — are
traced with ``simulate``, ``analytic``, and ``adaptive``. For every
graph, all three backends must agree on the LP's bottleneck identity,
and the non-simulate backends must land root throughput and the LP's
predicted throughput within tolerance of the simulator.

On failure, the offending graph's serialized program is dumped under
``$REPRO_DIFF_DUMP_DIR`` (default ``diff_failures/``) and the assertion
message names the file — CI uploads the directory as an artifact, so a
disagreement is reproducible from the dump alone:

    from repro.graph.serialize import pipeline_from_json
    pipe = pipeline_from_json(open(dump).read())
"""

import json
import math
import os

import numpy as np
import pytest

from repro.core.lp import solve_allocation
from repro.core.plumber import Plumber
from repro.core.rates import build_model
from repro.graph.builder import (
    from_tfrecords,
    interleave_datasets,
    zip_datasets,
)
from repro.graph.serialize import pipeline_to_dict
from repro.graph.udf import CostModel, UserFunction
from repro.host.machine import setup_a
from repro.io.filesystem import FileCatalog
from tests.engine_equivalence import cache_heavy

#: number of generated graphs (seeds 0..N-1)
NUM_CASES = 30
#: number of generated multi-source graphs (seeds 0..N-1)
NUM_MULTISOURCE_CASES = 12
#: number of cache-heavy (populate-then-serve) graphs (seeds 0..N-1)
NUM_CACHE_HEAVY_CASES = 8
#: relative tolerance for analytic/adaptive vs simulated throughput —
#: matches the seed-workload parity bar in test_trace_backends.py
THROUGHPUT_TOLERANCE = 0.15
#: where failing graphs' serialized programs are dumped
DUMP_DIR = os.environ.get("REPRO_DIFF_DUMP_DIR", "diff_failures")

BACKENDS = ("simulate", "analytic", "adaptive")


def random_pipeline(seed: int):
    """One seeded random linear pipeline in the simulate-cheap regime.

    Costs are vision-like (0.5–4 ms per element) so element rates stay
    low and 30 simulated traces remain a sub-minute harness; structure
    varies where the backends can actually diverge: map depth, per-op
    cost spread, parallelism, shuffle presence, batch size, and
    cache/prefetch placement.
    """
    rng = np.random.default_rng(seed)
    catalog = FileCatalog(
        name=f"diff{seed}",
        num_files=int(rng.integers(8, 33)),
        records_per_file=float(rng.integers(100, 500)),
        bytes_per_record=float(rng.uniform(2e3, 40e3)),
        size_cv=float(rng.uniform(0.0, 0.3)),
        seed=int(rng.integers(0, 2**31)),
    )
    depth = int(rng.integers(1, 5))
    # At most one cache, placed after a random map (or absent).
    cache_after = int(rng.integers(0, depth)) if rng.random() < 0.35 else -1
    ds = from_tfrecords(
        catalog,
        parallelism=int(rng.integers(1, 5)),
        name="src",
        read_cpu_seconds_per_record=1e-5,
    )
    for i in range(depth):
        cost = float(rng.uniform(0.5e-3, 4e-3))
        udf = UserFunction(
            f"op{i}",
            cost=CostModel(cpu_seconds=cost),
            size_ratio=float(rng.uniform(0.8, 2.5)) if i == 0 else 1.0,
        )
        ds = ds.map(udf, parallelism=int(rng.integers(1, 7)), name=f"map{i}")
        if i == cache_after:
            ds = ds.cache(name="cachenode")
    if rng.random() < 0.5:
        ds = ds.shuffle(int(rng.integers(64, 257)),
                        cpu_seconds_per_element=2e-6, name="shufflenode")
    ds = ds.batch(int(rng.choice((4, 8, 16))), name="batchnode")
    if rng.random() < 0.7:
        ds = ds.prefetch(int(rng.integers(2, 9)), name="prefetchnode")
    ds = ds.repeat(None, name="repeatnode")
    return ds.build(f"diff_{seed}", validate=False)


def random_multisource_pipeline(seed: int):
    """One seeded random multi-source DAG (zip or weighted interleave).

    2–3 branches of varying depth, per-op cost, parallelism, and
    branch-local cache placement feed a merge node; the trunk varies
    batch size and prefetch presence. Seeds are offset from the linear
    generator's so the two populations never collide.
    """
    rng = np.random.default_rng(1000 + seed)
    n_branches = int(rng.integers(2, 4))
    branches = []
    for b in range(n_branches):
        catalog = FileCatalog(
            name=f"mdiff{seed}_{b}",
            num_files=int(rng.integers(8, 25)),
            records_per_file=float(rng.integers(100, 400)),
            bytes_per_record=float(rng.uniform(2e3, 30e3)),
            size_cv=float(rng.uniform(0.0, 0.3)),
            seed=int(rng.integers(0, 2**31)),
        )
        depth = int(rng.integers(1, 4))
        cache_after = int(rng.integers(0, depth)) if rng.random() < 0.3 else -1
        ds = from_tfrecords(
            catalog,
            parallelism=int(rng.integers(1, 4)),
            name=f"src{b}",
            read_cpu_seconds_per_record=1e-5,
        )
        for i in range(depth):
            cost = float(rng.uniform(0.5e-3, 4e-3))
            udf = UserFunction(
                f"b{b}op{i}",
                cost=CostModel(cpu_seconds=cost),
                size_ratio=(
                    float(rng.uniform(0.8, 2.0)) if i == 0 else 1.0
                ),
            )
            ds = ds.map(udf, parallelism=int(rng.integers(1, 6)),
                        name=f"b{b}map{i}")
            if i == cache_after:
                ds = ds.cache(name=f"b{b}cache")
        branches.append(ds)
    if rng.random() < 0.5:
        ds = zip_datasets(branches, name="mergenode")
    else:
        weights = [float(rng.uniform(0.2, 1.0)) for _ in branches]
        ds = interleave_datasets(branches, weights=weights,
                                 name="mergenode")
    ds = ds.batch(int(rng.choice((4, 8, 16))), name="batchnode")
    if rng.random() < 0.6:
        ds = ds.prefetch(int(rng.integers(2, 9)), name="prefetchnode")
    ds = ds.repeat(None, name="repeatnode")
    return ds.build(f"mdiff_{seed}", validate=False)


def cache_heavy_pipeline(seed: int):
    """One seeded cache-heavy graph with a long serve phase.

    These reuse the golden corpus's populate-then-serve shape
    (:func:`tests.engine_equivalence.cache_heavy`) — the vectorized
    engine's hottest path — with seeded variation in read/map cost,
    parallelism, batch size, and catalog size. Traced over a window
    several epochs long, the cache spends most of the run in the serve
    regime, which is exactly where a chunk-replay bug in the simulator
    (or a serve-regime modelling bug in the analytic backend) would
    surface as cross-backend divergence.
    """
    rng = np.random.default_rng(2000 + seed)
    return cache_heavy(
        seed=seed,
        read_cpu=float(rng.choice((0.0, 1e-5))),
        map_cpu=float(rng.uniform(4e-4, 2e-3)),
        par=int(rng.integers(2, 5)),
        batch=int(rng.choice((4, 8))),
        files=int(rng.integers(8, 17)),
        rpf=float(rng.integers(120, 301)),
    )


def _dump_failure(seed, pipeline, reason: str, prefix: str = "case") -> str:
    """Persist the offending graph; return the assertion message."""
    os.makedirs(DUMP_DIR, exist_ok=True)
    path = os.path.join(DUMP_DIR, f"{prefix}_{seed:02d}.json")
    program = pipeline_to_dict(pipeline)
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"seed": seed, "reason": reason, "program": program},
                  f, indent=2, sort_keys=True)
    return (
        f"seed {seed}: {reason}\n"
        f"serialized program dumped to {path}\n"
        f"program: {json.dumps(program, sort_keys=True)}"
    )


@pytest.fixture(scope="module")
def machine():
    return setup_a()


def _solved_traces(pipeline, machine, duration=3.0, warmup=0.5):
    """(trace, LP solution) per backend for one graph."""
    plumber = Plumber(machine, trace_duration=duration, trace_warmup=warmup)
    out = {}
    for name in BACKENDS:
        trace = plumber.trace(pipeline, backend=name)
        out[name] = (trace, solve_allocation(build_model(trace)))
    return out


class TestBackendDifferential:
    @pytest.fixture(scope="class", params=range(NUM_CASES))
    def case(self, request, machine):
        pipeline = random_pipeline(request.param)
        return request.param, pipeline, _solved_traces(pipeline, machine)

    def test_bottleneck_identity_agrees(self, case):
        seed, pipeline, solved = case
        reference = solved["simulate"][1].bottleneck
        for name in ("analytic", "adaptive"):
            got = solved[name][1].bottleneck
            assert got == reference, _dump_failure(
                seed, pipeline,
                f"bottleneck mismatch: simulate={reference!r} "
                f"{name}={got!r}",
            )

    def test_root_throughput_within_tolerance(self, case):
        seed, pipeline, solved = case
        reference = solved["simulate"][0].root_throughput
        for name in ("analytic", "adaptive"):
            got = solved[name][0].root_throughput
            rel = abs(got - reference) / reference
            assert rel <= THROUGHPUT_TOLERANCE, _dump_failure(
                seed, pipeline,
                f"root throughput diverges: simulate={reference:.3f} "
                f"{name}={got:.3f} rel={rel:.1%} "
                f"(tolerance {THROUGHPUT_TOLERANCE:.0%})",
            )

    def test_lp_prediction_within_tolerance(self, case):
        seed, pipeline, solved = case
        reference = solved["simulate"][1].predicted_throughput
        for name in ("analytic", "adaptive"):
            got = solved[name][1].predicted_throughput
            if not math.isfinite(reference):
                # Unconstrained graphs (e.g. fully cache-served) predict
                # inf; the other backends must agree exactly.
                assert got == reference, _dump_failure(
                    seed, pipeline,
                    f"LP prediction diverges: simulate={reference} "
                    f"{name}={got}",
                )
                continue
            rel = abs(got - reference) / reference
            assert rel <= THROUGHPUT_TOLERANCE, _dump_failure(
                seed, pipeline,
                f"LP prediction diverges: simulate={reference:.3f} "
                f"{name}={got:.3f} rel={rel:.1%} "
                f"(tolerance {THROUGHPUT_TOLERANCE:.0%})",
            )

    def test_traces_are_labelled_by_producer(self, case):
        _seed, _pipeline, solved = case
        assert solved["simulate"][0].backend == "simulate"
        assert solved["analytic"][0].backend == "analytic"
        assert solved["adaptive"][0].backend.startswith("adaptive[")


class TestMultiSourceDifferential:
    """The same three-backend parity bar, over multi-source DAGs."""

    @pytest.fixture(scope="class", params=range(NUM_MULTISOURCE_CASES))
    def case(self, request, machine):
        pipeline = random_multisource_pipeline(request.param)
        return request.param, pipeline, _solved_traces(pipeline, machine)

    def test_bottleneck_identity_agrees(self, case):
        seed, pipeline, solved = case
        reference = solved["simulate"][1].bottleneck
        for name in ("analytic", "adaptive"):
            got = solved[name][1].bottleneck
            assert got == reference, _dump_failure(
                seed, pipeline,
                f"bottleneck mismatch: simulate={reference!r} "
                f"{name}={got!r}",
                prefix="multisource",
            )

    def test_root_throughput_within_tolerance(self, case):
        seed, pipeline, solved = case
        reference = solved["simulate"][0].root_throughput
        for name in ("analytic", "adaptive"):
            got = solved[name][0].root_throughput
            rel = abs(got - reference) / reference
            assert rel <= THROUGHPUT_TOLERANCE, _dump_failure(
                seed, pipeline,
                f"root throughput diverges: simulate={reference:.3f} "
                f"{name}={got:.3f} rel={rel:.1%} "
                f"(tolerance {THROUGHPUT_TOLERANCE:.0%})",
                prefix="multisource",
            )

    def test_lp_prediction_within_tolerance(self, case):
        seed, pipeline, solved = case
        reference = solved["simulate"][1].predicted_throughput
        observed = solved["simulate"][0].root_throughput
        for name in ("analytic", "adaptive"):
            got = solved[name][1].predicted_throughput
            if not math.isfinite(reference):
                assert got == reference, _dump_failure(
                    seed, pipeline,
                    f"LP prediction diverges: simulate={reference} "
                    f"{name}={got}",
                    prefix="multisource",
                )
                continue
            if min(got, reference) > 1e3 * observed:
                # Both predictions are orders of magnitude beyond
                # anything observable: a branch cache that flips to the
                # serve regime mid-window leaves the LP a noise-scale
                # cache coefficient (a handful of served elements times
                # a µs of copy cost), so the prediction's magnitude
                # carries no decision value — bottleneck identity,
                # asserted separately, is the meaningful comparison.
                continue
            rel = abs(got - reference) / reference
            assert rel <= THROUGHPUT_TOLERANCE, _dump_failure(
                seed, pipeline,
                f"LP prediction diverges: simulate={reference:.3f} "
                f"{name}={got:.3f} rel={rel:.1%} "
                f"(tolerance {THROUGHPUT_TOLERANCE:.0%})",
                prefix="multisource",
            )

    def test_traces_are_labelled_by_producer(self, case):
        _seed, _pipeline, solved = case
        assert solved["simulate"][0].backend == "simulate"
        assert solved["analytic"][0].backend == "analytic"
        assert solved["adaptive"][0].backend.startswith("adaptive[")


class TestCacheHeavyDifferential:
    """Three-backend parity over long-serve-phase cache graphs.

    The window (duration 6, warmup 1) spans several epochs of each
    graph, so the cache populates once and then serves for most of the
    measured window — the regime the vectorized engine optimizes
    hardest and the analytic backend models as pure memory-copy cost.
    """

    @pytest.fixture(scope="class", params=range(NUM_CACHE_HEAVY_CASES))
    def case(self, request, machine):
        pipeline = cache_heavy_pipeline(request.param)
        return request.param, pipeline, _solved_traces(
            pipeline, machine, duration=6.0, warmup=1.0
        )

    def test_bottleneck_identity_agrees(self, case):
        seed, pipeline, solved = case
        reference = solved["simulate"][1].bottleneck
        for name in ("analytic", "adaptive"):
            got = solved[name][1].bottleneck
            assert got == reference, _dump_failure(
                seed, pipeline,
                f"bottleneck mismatch: simulate={reference!r} "
                f"{name}={got!r}",
                prefix="cacheheavy",
            )

    def test_root_throughput_within_tolerance(self, case):
        seed, pipeline, solved = case
        reference = solved["simulate"][0].root_throughput
        for name in ("analytic", "adaptive"):
            got = solved[name][0].root_throughput
            rel = abs(got - reference) / reference
            assert rel <= THROUGHPUT_TOLERANCE, _dump_failure(
                seed, pipeline,
                f"root throughput diverges: simulate={reference:.3f} "
                f"{name}={got:.3f} rel={rel:.1%} "
                f"(tolerance {THROUGHPUT_TOLERANCE:.0%})",
                prefix="cacheheavy",
            )

    def test_lp_prediction_within_tolerance(self, case):
        seed, pipeline, solved = case
        reference = solved["simulate"][1].predicted_throughput
        observed = solved["simulate"][0].root_throughput
        for name in ("analytic", "adaptive"):
            got = solved[name][1].predicted_throughput
            if not math.isfinite(reference):
                # A fully cache-served window is unconstrained: every
                # backend must agree it predicts inf.
                assert got == reference, _dump_failure(
                    seed, pipeline,
                    f"LP prediction diverges: simulate={reference} "
                    f"{name}={got}",
                    prefix="cacheheavy",
                )
                continue
            if min(got, reference) > 1e3 * observed:
                # Noise-scale cache coefficients (see the multi-source
                # suite): magnitude carries no decision value here.
                continue
            rel = abs(got - reference) / reference
            assert rel <= THROUGHPUT_TOLERANCE, _dump_failure(
                seed, pipeline,
                f"LP prediction diverges: simulate={reference:.3f} "
                f"{name}={got:.3f} rel={rel:.1%} "
                f"(tolerance {THROUGHPUT_TOLERANCE:.0%})",
                prefix="cacheheavy",
            )

    def test_serve_phase_dominates_the_window(self, case):
        """The generator holds its premise: the simulate trace's cache
        node reports serve-regime activity (elements flowing out of the
        cache, not just into it)."""
        seed, pipeline, solved = case
        trace = solved["simulate"][0]
        cache_stats = trace.stats.get("cachenode")
        assert cache_stats is not None, _dump_failure(
            seed, pipeline, "trace lost the cache node",
            prefix="cacheheavy",
        )
        # Serve regime: the cache emits far more than it ingests inside
        # the measured window (populate happened during warmup).
        assert cache_stats.elements_produced > \
            10 * cache_stats.elements_consumed, _dump_failure(
                seed, pipeline,
                "cache not in the serve regime: produced="
                f"{cache_stats.elements_produced} consumed="
                f"{cache_stats.elements_consumed}",
                prefix="cacheheavy",
            )


class TestGeneratorCoversTheSpace:
    """The harness is only as strong as its generator: the 30 graphs
    must actually vary cache/prefetch placement and depth."""

    def test_structural_variety(self):
        pipelines = [random_pipeline(s) for s in range(NUM_CASES)]
        with_cache = sum(
            1 for p in pipelines
            if any("cache" in type(n).__name__.lower()
                   for n in p.nodes.values())
        )
        with_prefetch = sum(
            1 for p in pipelines
            if any("prefetch" in type(n).__name__.lower()
                   for n in p.nodes.values())
        )
        depths = {len(p.nodes) for p in pipelines}
        assert with_cache >= 5
        assert NUM_CASES > with_prefetch >= 15
        assert len(depths) >= 4

    def test_generator_is_deterministic(self):
        from repro.graph.signature import structural_signature

        a = [structural_signature(random_pipeline(s)) for s in range(5)]
        b = [structural_signature(random_pipeline(s)) for s in range(5)]
        assert a == b
        assert len(set(a)) == 5

    def test_multisource_generator_covers_both_merges(self):
        pipelines = [
            random_multisource_pipeline(s)
            for s in range(NUM_MULTISOURCE_CASES)
        ]
        kinds = [
            next(n.kind for n in p.nodes.values()
                 if n.kind in ("zip", "interleave_datasets"))
            for p in pipelines
        ]
        assert kinds.count("zip") >= 3
        assert kinds.count("interleave_datasets") >= 3
        with_cache = sum(
            1 for p in pipelines
            if any("cache" in type(n).__name__.lower()
                   for n in p.nodes.values())
        )
        assert with_cache >= 2
        branch_counts = {
            sum(1 for n in p.nodes.values() if not n.inputs)
            for p in pipelines
        }
        assert branch_counts >= {2, 3}

    def test_multisource_generator_is_deterministic(self):
        from repro.graph.signature import structural_signature

        a = [structural_signature(random_multisource_pipeline(s))
             for s in range(5)]
        b = [structural_signature(random_multisource_pipeline(s))
             for s in range(5)]
        assert a == b
        assert len(set(a)) == 5
