"""Tests for deterministic fleet sharding and report merging."""

import pytest

from repro.core.spec import OptimizeSpec
from repro.fleet.analysis import merged_cache_counts
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.graph.signature import structural_signature
from repro.service import (
    BatchOptimizer,
    FleetOptimizationReport,
    JobResult,
    ShardedOptimizer,
    merge_fleet_reports,
    shard_fleet,
    shard_index,
)
from tests.test_service import small_pipeline

FAST_SPEC = OptimizeSpec(iterations=1, backend="analytic",
                         trace_duration=1.0, trace_warmup=0.25)


def make_fleet(num_jobs=12, distinct=4, seed=5):
    return generate_pipeline_fleet(
        num_jobs=num_jobs, distinct=distinct, seed=seed,
        config=FleetConfig(domain_weights={"vision": 1.0},
                           optimize_spec=FAST_SPEC),
    )


def _result(name, signature, cache_hit, cache_key):
    """A minimal JobResult for merge-arithmetic tests."""
    return JobResult(
        name=name, signature=signature, cache_hit=cache_hit,
        baseline_throughput=1.0, optimized_throughput=2.0,
        predicted_throughput=2.0, bottleneck="src",
        decisions=("d",), pipeline_json="{}", cache_key=cache_key,
    )


class TestShardFleet:
    def test_deterministic_across_calls(self):
        fleet = make_fleet()
        a = shard_fleet(fleet, 4)
        b = shard_fleet(list(fleet), 4)
        assert [[j.name for j in s] for s in a] == \
               [[j.name for j in s] for s in b]

    def test_signature_affinity(self):
        """Structurally identical jobs always land on the same shard, so
        per-shard caches dedup as well as a global one."""
        fleet = make_fleet()
        shards = shard_fleet(fleet, 3)
        location = {}
        for idx, shard in enumerate(shards):
            for job in shard:
                sig = structural_signature(job.pipeline)
                assert location.setdefault(sig, idx) == idx

    def test_all_jobs_kept_order_preserved_within_shard(self):
        fleet = make_fleet()
        shards = shard_fleet(fleet, 3)
        assert sum(len(s) for s in shards) == len(fleet)
        order = {j.name: i for i, j in enumerate(fleet)}
        for shard in shards:
            indices = [order[j.name] for j in shard]
            assert indices == sorted(indices)

    def test_single_shard_takes_everything(self):
        fleet = make_fleet(num_jobs=5, distinct=2)
        shards = shard_fleet(fleet, 1)
        assert len(shards) == 1 and len(shards[0]) == 5

    def test_mapping_input_shards_as_tuples(self, small_catalog):
        jobs = {"a": small_pipeline(small_catalog, name="a"),
                "b": small_pipeline(small_catalog, parallelism=4, name="b")}
        shards = shard_fleet(jobs, 2)
        flat = [entry for shard in shards for entry in shard]
        assert sorted(name for name, _ in flat) == ["a", "b"]

    def test_shard_index_matches_signature_hash(self, small_catalog):
        sig = structural_signature(small_pipeline(small_catalog))
        assert shard_index(sig, 5) == int(sig, 16) % 5

    def test_invalid_inputs_rejected(self, small_catalog):
        with pytest.raises(ValueError, match="num_shards"):
            shard_index("ff", 0)
        with pytest.raises(ValueError, match="job tuples"):
            shard_fleet([("only-name",)], 2)


class TestMergeArithmetic:
    def test_merged_cache_counts_dedups_distinct_keys(self):
        hits, misses = merged_cache_counts([
            ("k1", False), ("k1", True),   # shard A: miss + hit
            ("k1", False), ("k2", False),  # shard B: duplicate miss + new
        ])
        assert (hits, misses) == (2, 2)

    def test_merge_does_not_double_count_shared_signature(self):
        """Regression: the same signature missed in two shards is ONE
        distinct optimization fleet-wide; the surplus computation is a
        hit in the merged hit-rate arithmetic."""
        shard_a = FleetOptimizationReport(
            jobs=[_result("a0", "sigS", False, "k_s"),
                  _result("a1", "sigS", True, "k_s")],
            cache_hits=1, cache_misses=1,
        )
        shard_b = FleetOptimizationReport(
            jobs=[_result("b0", "sigS", False, "k_s"),
                  _result("b1", "sigT", False, "k_t")],
            cache_hits=0, cache_misses=2,
        )
        merged = FleetOptimizationReport.merge([shard_a, shard_b])
        # Naive summing would report 3 misses / 1 hit (rate 0.25).
        assert merged.cache_misses == 2
        assert merged.cache_hits == 2
        assert merged.cache_hit_rate == pytest.approx(0.5)
        assert len(merged.jobs) == 4

    def test_merge_falls_back_to_signature_without_keys(self):
        jobs = [_result("x", "sigX", False, ""),
                _result("y", "sigX", False, "")]
        merged = merge_fleet_reports([
            FleetOptimizationReport(jobs=[j], cache_hits=0, cache_misses=1)
            for j in jobs
        ])
        assert merged.cache_misses == 1 and merged.cache_hits == 1

    def test_merge_of_nothing_is_empty(self):
        merged = FleetOptimizationReport.merge([])
        assert merged.jobs == [] and merged.cache_hit_rate == 0.0


class TestShardedOptimizer:
    def test_matches_unsharded_results(self):
        fleet = make_fleet()
        global_report = BatchOptimizer(
            executor="serial", spec=FAST_SPEC).optimize_fleet(fleet)
        sharded = ShardedOptimizer([
            BatchOptimizer(executor="serial", spec=FAST_SPEC)
            for _ in range(3)
        ])
        merged = sharded.optimize_fleet(fleet)
        # Same jobs, submission order restored across shards.
        assert [j.name for j in merged.jobs] == [j.name for j in fleet]
        # Signature-affine sharding: cache dedup is as good as global.
        assert merged.cache_misses == global_report.cache_misses
        assert merged.cache_hits == global_report.cache_hits
        for mine, ref in zip(merged.jobs, global_report.jobs):
            assert mine.decisions == ref.decisions
            assert mine.optimized_throughput == ref.optimized_throughput

    def test_sharded_disk_stores_one_dir_per_host(self, tmp_path):
        fleet = make_fleet(num_jobs=8, distinct=3)
        def build():
            from repro.service import DiskStore
            return ShardedOptimizer([
                BatchOptimizer(executor="serial", spec=FAST_SPEC,
                               store=DiskStore(tmp_path / f"host{i}"))
                for i in range(2)
            ])
        build().optimize_fleet(fleet)
        # A fresh set of per-host services reuses each host's store.
        merged = build().optimize_fleet(fleet)
        assert merged.cache_misses == 0
        assert merged.cache_hit_rate == 1.0

    def test_stats_aggregate_across_shards(self):
        fleet = make_fleet(num_jobs=6, distinct=2)
        sharded = ShardedOptimizer([
            BatchOptimizer(executor="serial", spec=FAST_SPEC)
            for _ in range(2)
        ])
        sharded.optimize_fleet(fleet)
        stats = sharded.stats()
        assert stats["cache_hits"] + stats["cache_misses"] == 6
        assert stats["cache_misses"] == 2
        assert len(stats["shards"]) == 2

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedOptimizer([])

    def test_shard_contract_enforced(self):
        """A shard is anything with optimize_fleet + stats; anything
        else is rejected at construction, not deep inside dispatch."""
        class HalfShard:
            def optimize_fleet(self, jobs):
                return None

        with pytest.raises(TypeError, match="shard contract"):
            ShardedOptimizer([object()])
        with pytest.raises(TypeError, match="shard contract"):
            ShardedOptimizer([HalfShard()])

    def test_dispatch_is_concurrent_not_sequential(self):
        """Acceptance: on a delayed-shard fixture, fleet wallclock must
        be under the *sum* of per-shard times — shards run on their own
        dispatcher threads, so total time tracks the slowest shard."""
        import time as _time

        class DelayedShard:
            """A shard whose optimize_fleet blocks before delegating,
            timing its own busy window."""

            def __init__(self, delay=0.35):
                self.inner = BatchOptimizer(executor="serial",
                                            spec=FAST_SPEC)
                self.delay = delay
                self.busy_seconds = 0.0

            def optimize_fleet(self, jobs):
                start = _time.perf_counter()
                _time.sleep(self.delay)
                report = self.inner.optimize_fleet(jobs)
                self.busy_seconds = _time.perf_counter() - start
                return report

            def stats(self):
                return self.inner.stats()

        fleet = make_fleet()
        shards = [DelayedShard() for _ in range(3)]
        sharded = ShardedOptimizer(shards)
        start = _time.perf_counter()
        merged = sharded.optimize_fleet(fleet)
        wallclock = _time.perf_counter() - start

        occupied = [s for s in shards if s.busy_seconds > 0]
        assert len(occupied) >= 2  # the fixture must actually fan out
        per_shard_sum = sum(s.busy_seconds for s in occupied)
        # Sequential dispatch would take at least the sum of per-shard
        # times; concurrent dispatch tracks the slowest shard.
        assert wallclock < per_shard_sum
        assert wallclock < 0.35 * len(occupied)
        # Concurrency must not change results.
        reference = BatchOptimizer(executor="serial",
                                   spec=FAST_SPEC).optimize_fleet(fleet)
        assert [j.name for j in merged.jobs] == \
               [j.name for j in reference.jobs]
        assert [j.optimized_throughput for j in merged.jobs] == \
               [j.optimized_throughput for j in reference.jobs]

    def test_shard_error_propagates(self):
        class BoomShard:
            def optimize_fleet(self, jobs):
                raise RuntimeError("shard host down")

            def stats(self):
                return {}

        fleet = make_fleet()
        sharded = ShardedOptimizer([BoomShard(), BoomShard(),
                                    BoomShard()])
        with pytest.raises(RuntimeError, match="shard host down"):
            sharded.optimize_fleet(fleet)

    def test_duplicate_names_rejected_even_across_shards(self,
                                                         small_catalog):
        """BatchOptimizer rejects duplicate names; the sharded front-end
        must too, even when the duplicates' pipelines would hash to
        different shards and each shard would see the name once."""
        sharded = ShardedOptimizer([
            BatchOptimizer(executor="serial", spec=FAST_SPEC)
            for _ in range(2)
        ])
        p1 = small_pipeline(small_catalog, name="p1")
        p2 = small_pipeline(small_catalog, parallelism=4, name="p2")
        with pytest.raises(ValueError, match="duplicate"):
            sharded.optimize_fleet([("same", p1), ("same", p2)])


class TestShardMetricsAndClock:
    def test_injected_clock_times_out_without_sleeping(self):
        """A fake clock jumped past the dispatch deadline times shards
        out immediately — deadline arithmetic runs on the injected
        clock, not wall time (satellite: no-sleep deadline tests)."""
        import itertools
        import threading
        import time as _time

        from repro.service.errors import ShardDispatchError

        release = threading.Event()

        class StuckShard:
            def __init__(self):
                self.inner = BatchOptimizer(executor="serial",
                                            spec=FAST_SPEC)

            def optimize_fleet(self, jobs):
                release.wait(10)
                return self.inner.optimize_fleet(jobs)

            def stats(self):
                return self.inner.stats()

        ticks = itertools.count(0, 1000.0)
        sharded = ShardedOptimizer(
            [StuckShard()],
            shard_timeout=10.0,           # << the 1000/read fake clock
            quarantine_after=1,
            monotonic=lambda: float(next(ticks)),
        )
        start = _time.perf_counter()
        try:
            with pytest.raises(ShardDispatchError, match="no surviving"):
                sharded.optimize_fleet(make_fleet(num_jobs=4, distinct=2))
        finally:
            release.set()
        # No real waiting happened: the 10 s deadline expired on the
        # fake clock, not the wall clock.
        assert _time.perf_counter() - start < 5.0
        summary = sharded.metrics.summary()
        assert summary[
            'repro_shard_failures_total'
            '{host="shard-0",kind="ShardTimeout"}'] == 1.0
        assert summary[
            'repro_shard_quarantines_total{host="shard-0"}'] == 1.0

    def test_stats_merges_shard_metric_snapshots(self):
        """stats()['metrics'] is the fleet-wide snapshot: the router's
        own dispatch histograms merged bucket-wise with every reachable
        shard's registry."""
        from repro.obs import summarize_snapshot

        fleet = make_fleet(num_jobs=12, distinct=4)
        sharded = ShardedOptimizer([
            BatchOptimizer(executor="serial", spec=FAST_SPEC)
            for _ in range(3)
        ])
        sharded.optimize_fleet(fleet)
        stats = sharded.stats()
        summary = summarize_snapshot(stats["metrics"])
        # Counter families sum across shards: signature-affine routing
        # means per-shard misses add up to the deduped global count.
        assert summary['repro_service_jobs_total{result="miss"}'] == \
            stats["cache_misses"]
        assert summary['repro_service_jobs_total{result="hit"}'] == \
            stats["cache_hits"]
        # The front-end's dispatch latency histogram covers every
        # occupied host, and histograms survive the merge as quantiles.
        dispatch = {
            key: value for key, value in summary.items()
            if key.startswith("repro_shard_dispatch_seconds")
        }
        assert len(dispatch) >= 2  # the fleet actually fanned out
        for value in dispatch.values():
            assert value["count"] == 1
            assert value["p50"] <= value["p99"]
        # Per-shard job latency histograms pooled: one observation per
        # executed (miss) job across the whole fleet.
        job_seconds = summary[
            'repro_service_job_seconds{backend="analytic"}']
        assert job_seconds["count"] == stats["cache_misses"]
