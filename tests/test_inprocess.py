"""Tests for the real in-process executor."""

import numpy as np
import pytest

from repro.graph.builder import from_tfrecords
from repro.graph.udf import UserFunction
from repro.inprocess.executor import (
    InProcessError,
    iterate,
    materialize,
    trace_real_run,
)
from repro.io.filesystem import FileCatalog
from tests.conftest import make_udf


@pytest.fixture
def tiny_catalog():
    return FileCatalog("tiny", num_files=4, records_per_file=8.0,
                       bytes_per_record=100.0, size_cv=0.0, seed=0)


def double_udf():
    return make_udf("double", fn=lambda x: (x[0], x[1] * 2))


class TestSemantics:
    def test_source_emits_all_records(self, tiny_catalog):
        pipe = from_tfrecords(tiny_catalog, name="src").build("p")
        out = materialize(pipe)
        assert len(out) == tiny_catalog.total_records
        assert set(out) == {
            (f, r) for f in range(4) for r in range(8)
        }

    def test_interleave_mixes_files(self, tiny_catalog):
        pipe = from_tfrecords(tiny_catalog, parallelism=4, name="src").build("p")
        out = materialize(pipe, limit=4)
        # Cycle length 4: the first four records come from four files.
        assert {f for f, _ in out} == {0, 1, 2, 3}

    def test_map_applies_fn(self, tiny_catalog):
        pipe = (
            from_tfrecords(tiny_catalog, name="src")
            .map(double_udf(), name="m")
            .build("p")
        )
        out = materialize(pipe, limit=5)
        assert all(v % 2 == 0 for _, v in out)

    def test_map_without_fn_raises(self, tiny_catalog):
        pipe = (
            from_tfrecords(tiny_catalog, name="src")
            .map(make_udf("nofn"), name="m")
            .build("p")
        )
        with pytest.raises(InProcessError, match="no Python fn"):
            materialize(pipe, limit=1)

    def test_filter_keeps_matching(self, tiny_catalog):
        keep_even = make_udf("even", fn=lambda x: x[1] % 2 == 0)
        pipe = (
            from_tfrecords(tiny_catalog, name="src")
            .filter(keep_even, name="f")
            .build("p")
        )
        out = materialize(pipe)
        assert len(out) == tiny_catalog.total_records // 2
        assert all(v % 2 == 0 for _, v in out)

    def test_batch_groups_and_drops_remainder(self, tiny_catalog):
        pipe = (
            from_tfrecords(tiny_catalog, name="src").batch(5, name="b").build("p")
        )
        out = materialize(pipe)
        assert len(out) == tiny_catalog.total_records // 5
        assert all(len(b) == 5 for b in out)

    def test_batch_keep_remainder(self, tiny_catalog):
        from repro.graph.datasets import BatchNode, Pipeline

        src = from_tfrecords(tiny_catalog, name="src").node
        pipe = Pipeline(BatchNode("b", src, 5, drop_remainder=False))
        out = materialize(pipe)
        assert sum(len(b) for b in out) == tiny_catalog.total_records

    def test_batch_stacks_arrays(self, tiny_catalog):
        to_array = make_udf("arr", fn=lambda x: np.full(3, x[1]))
        pipe = (
            from_tfrecords(tiny_catalog, name="src")
            .map(to_array, name="m")
            .batch(4, name="b")
            .build("p")
        )
        out = materialize(pipe, limit=2)
        assert out[0].shape == (4, 3)

    def test_shuffle_permutes_deterministically(self, tiny_catalog):
        def build(seed):
            return (
                from_tfrecords(tiny_catalog, name="src")
                .shuffle(16, seed=seed, name="s")
                .build("p")
            )

        a = materialize(build(1))
        b = materialize(build(1))
        c = materialize(build(2))
        assert a == b
        assert a != c
        assert sorted(a) == sorted(c)  # same multiset

    def test_repeat_bounded(self, tiny_catalog):
        pipe = (
            from_tfrecords(tiny_catalog, name="src").repeat(2, name="r").build("p")
        )
        assert len(materialize(pipe)) == 2 * tiny_catalog.total_records

    def test_repeat_unbounded_streams(self, tiny_catalog):
        pipe = (
            from_tfrecords(tiny_catalog, name="src")
            .repeat(None, name="r")
            .build("p")
        )
        out = materialize(pipe, limit=3 * tiny_catalog.total_records)
        assert len(out) == 3 * tiny_catalog.total_records

    def test_take_truncates(self, tiny_catalog):
        pipe = from_tfrecords(tiny_catalog, name="src").take(7, name="t").build("p")
        assert len(materialize(pipe)) == 7

    def test_cache_replays_identically(self, tiny_catalog):
        calls = []

        def record(x):
            calls.append(x)
            return x

        pipe = (
            from_tfrecords(tiny_catalog, name="src")
            .map(make_udf("spy", fn=record), name="m")
            .cache(name="c")
            .repeat(2, name="r")
            .build("p")
        )
        out = materialize(pipe)
        # Two epochs of output, but the UDF ran... note: the in-process
        # cache replays within one pull; repeat re-opens the subtree, so
        # the spy observes one epoch per open in this executor.
        assert len(out) == 2 * tiny_catalog.total_records

    def test_prefetch_is_transparent(self, tiny_catalog):
        pipe = (
            from_tfrecords(tiny_catalog, name="src")
            .prefetch(4, name="pf")
            .build("p")
        )
        assert len(materialize(pipe)) == tiny_catalog.total_records


class TestRealTracing:
    def test_trace_shape_matches_plumber_input(self, tiny_catalog, test_machine):
        from repro.core.rates import build_model

        expensive = make_udf(
            "busy",
            fn=lambda x: sum(i * i for i in range(2000)),
        )
        pipe = (
            from_tfrecords(tiny_catalog, name="src")
            .map(expensive, name="m")
            .batch(4, name="b")
            .build("p")
        )
        trace = trace_real_run(pipe, test_machine, limit=6)
        model = build_model(trace)
        assert model.rates["m"].elements_produced > 0
        assert model.rates["m"].cpu_core_seconds >= 0
        assert trace.root_throughput > 0
