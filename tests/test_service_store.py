"""Tests for the persistent result stores (repro.service.store).

The acceptance bar for disk persistence: a ``BatchOptimizer`` pointed at
a ``DiskStore`` directory that a *separate process* already populated
must serve an unchanged fleet at >= 90% cache hit rate.
"""

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.core.spec import STORE_SCHEMA_VERSION, OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import BatchOptimizer, DiskStore, InMemoryStore, ResultStore

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: analytic backend keeps every store test sub-second
FAST_SPEC = OptimizeSpec(iterations=1, backend="analytic",
                         trace_duration=1.0, trace_warmup=0.25)

FLEET_KWARGS = dict(
    num_jobs=10, distinct=3, seed=3,
    config=FleetConfig(domain_weights={"vision": 1.0},
                       optimize_spec=FAST_SPEC),
)


def make_fleet():
    return generate_pipeline_fleet(**FLEET_KWARGS)


class TestInMemoryStore:
    def test_round_trip(self):
        store = InMemoryStore()
        store.put("k1", {"result": {"x": 1}})
        assert store.get("k1") == {"result": {"x": 1}}
        assert store.get("missing") is None
        assert len(store) == 1
        assert store.keys() == ("k1",)

    def test_lru_bound_evicts_oldest(self):
        store = InMemoryStore(max_entries=2)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        store.put("c", {"v": 3})
        assert store.get("a") is None
        assert store.get("b") is not None and store.get("c") is not None

    def test_get_refreshes_recency(self):
        store = InMemoryStore(max_entries=2)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        store.get("a")               # a is now most recent
        store.put("c", {"v": 3})
        assert store.get("b") is None
        assert store.get("a") is not None

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            InMemoryStore(max_entries=0)


class TestDiskStore:
    def test_round_trip_and_layout(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("k1", {"result": {"x": 1}})
        assert store.get("k1") == {"result": {"x": 1}}
        # One JSON file per entry, wrapped with the schema version.
        data = json.loads((tmp_path / "k1.json").read_text())
        assert data["schema"] == STORE_SCHEMA_VERSION
        assert data["entry"] == {"result": {"x": 1}}
        assert store.keys() == ("k1",)

    def test_fresh_instance_reads_existing_entries(self, tmp_path):
        DiskStore(tmp_path).put("k1", {"result": {"x": 1}})
        assert DiskStore(tmp_path).get("k1") == {"result": {"x": 1}}

    def test_missing_is_none(self, tmp_path):
        assert DiskStore(tmp_path).get("nope") is None

    def test_unsafe_keys_rejected(self, tmp_path):
        store = DiskStore(tmp_path)
        for bad in ("", "../escape", "a/b", ".hidden", "sp ace"):
            with pytest.raises(ValueError):
                store.put(bad, {})

    def test_corrupt_entry_is_a_miss_not_fatal(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("k1", {"result": {"x": 1}})
        (tmp_path / "k1.json").write_text('{"schema": 1, "entry": {"resu')
        assert store.get("k1") is None

    def test_killed_mid_write_orphan_is_invisible(self, tmp_path):
        """A temp file left by a killed writer is never read as an
        entry and never shadows the key."""
        store = DiskStore(tmp_path)
        (tmp_path / "k1.json.tmp-999-deadbeef").write_text('{"schema"')
        assert store.get("k1") is None
        assert store.keys() == ()
        store.put("k1", {"result": {"x": 1}})  # key still writable
        assert store.get("k1") == {"result": {"x": 1}}

    def test_wrong_schema_version_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        (tmp_path / "k1.json").write_text(json.dumps(
            {"schema": STORE_SCHEMA_VERSION + 1, "entry": {"result": {}}}
        ))
        assert store.get("k1") is None

    def test_non_dict_payloads_are_misses(self, tmp_path):
        store = DiskStore(tmp_path)
        (tmp_path / "k1.json").write_text(json.dumps([1, 2, 3]))
        (tmp_path / "k2.json").write_text(json.dumps(
            {"schema": STORE_SCHEMA_VERSION, "entry": "not-a-dict"}
        ))
        assert store.get("k1") is None
        assert store.get("k2") is None

    def test_lru_bound_evicts_least_recently_used(self, tmp_path):
        store = DiskStore(tmp_path, max_entries=2)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        # Age the files deterministically: a older than b.
        os.utime(tmp_path / "a.json", (1000, 1000))
        os.utime(tmp_path / "b.json", (2000, 2000))
        store.get("a")               # refreshes a's mtime to "now"
        store.put("c", {"v": 3})     # evicts b (oldest mtime)
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.get("c") is not None
        assert len(store) == 2

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskStore(tmp_path, max_entries=0)

    def test_clear_removes_entries_and_orphans(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("k1", {"v": 1})
        (tmp_path / "k2.json.tmp-1-ab").write_text("junk")
        store.clear()
        assert store.keys() == ()
        assert list(tmp_path.iterdir()) == []

    def test_satisfies_result_store_protocol(self, tmp_path):
        assert isinstance(DiskStore(tmp_path), ResultStore)
        assert isinstance(InMemoryStore(), ResultStore)


@pytest.fixture(params=["memory", "disk"])
def any_store(request, tmp_path):
    """Both store implementations, behavioral-parity tested."""
    if request.param == "memory":
        return InMemoryStore()
    return DiskStore(tmp_path)


class TestStoreAliasingParity:
    """Regression: InMemoryStore.get returned the cached entry dict
    itself, so a caller mutating the returned mapping silently
    corrupted the shared cache — diverging from DiskStore, which
    re-parses per read. Both stores must isolate callers."""

    @staticmethod
    def entry():
        # A fresh mapping per use: comparing against a shared constant
        # would alias through the very bug this class pins.
        return {"result": {"pipeline": "{}", "decisions": ["d"]},
                "provenance": {"producer": "analytic",
                               "created_at": 100.0}}

    def test_mutating_a_read_entry_does_not_corrupt_the_cache(self,
                                                              any_store):
        any_store.put("k", self.entry())
        first = any_store.get("k")
        first["provenance"]["created_at"] = -1.0
        first["result"]["decisions"].append("evil")
        del first["result"]["pipeline"]
        assert any_store.get("k") == self.entry()

    def test_mutating_the_put_mapping_does_not_reach_the_cache(self,
                                                               any_store):
        entry = {"result": {"x": 1}, "provenance": {"created_at": 5.0}}
        any_store.put("k", entry)
        entry["result"]["x"] = 999
        entry["provenance"]["created_at"] = -1.0
        assert any_store.get("k") == {"result": {"x": 1},
                                      "provenance": {"created_at": 5.0}}

    def test_reads_are_mutually_isolated(self, any_store):
        any_store.put("k", self.entry())
        a = any_store.get("k")
        b = any_store.get("k")
        a["result"]["decisions"].append("mine")
        assert b == self.entry()


def _dated(created_at):
    return {"result": {"v": 1},
            "provenance": {"producer": "analytic",
                           "created_at": created_at}}


class TestCompactGC:
    """Provenance-age GC properties, pinned identically on both stores:
    entries at/over the horizon are evicted, newer entries survive, the
    pass is idempotent, and undatable entries are never aged out."""

    def test_at_or_over_horizon_evicted_newer_survive(self, any_store):
        any_store.put("ancient", _dated(100.0))   # age 100
        any_store.put("boundary", _dated(150.0))  # age 50 == horizon
        any_store.put("fresh", _dated(190.0))     # age 10
        removed = any_store.compact(50, now=200.0)
        assert removed == 2
        assert any_store.get("ancient") is None
        assert any_store.get("boundary") is None  # at the horizon: out
        assert any_store.get("fresh") == _dated(190.0)
        assert len(any_store) == 1

    def test_idempotent_for_fixed_now(self, any_store):
        any_store.put("old", _dated(10.0))
        any_store.put("new", _dated(95.0))
        assert any_store.compact(60, now=100.0) == 1
        assert any_store.compact(60, now=100.0) == 0
        assert any_store.keys() == ("new",)

    def test_horizon_zero_evicts_every_dated_entry(self, any_store):
        any_store.put("a", _dated(100.0))
        any_store.put("b", _dated(200.0))
        assert any_store.compact(0, now=200.0) == 2
        assert len(any_store) == 0

    def test_undatable_entries_are_never_aged_out(self, any_store):
        undatable = {
            "no_provenance": {"result": {"v": 1}},
            "prov_not_dict": {"result": {}, "provenance": "analytic"},
            "stamp_missing": {"result": {}, "provenance": {}},
            "stamp_string": {"result": {},
                             "provenance": {"created_at": "2026-07-29"}},
            "stamp_bool": {"result": {},
                           "provenance": {"created_at": True}},
        }
        for key, entry in undatable.items():
            any_store.put(key, entry)
        any_store.put("dated", _dated(0.0))
        assert any_store.compact(0, now=1e9) == 1
        assert sorted(any_store.keys()) == sorted(undatable)

    def test_invalid_horizon_rejected(self, any_store):
        for bad in (-1, -0.5, float("nan")):
            with pytest.raises(ValueError, match="max_age_seconds"):
                any_store.compact(bad, now=0.0)

    def test_wallclock_default_now(self, any_store):
        """now=None falls back to wall clock: a just-written entry
        survives a generous horizon and dies under a zero horizon."""
        any_store.put("k", _dated(time.time()))
        assert any_store.compact(3600) == 0
        assert any_store.compact(0) == 1

    def test_disk_compact_ignores_corrupt_files(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("good", _dated(0.0))
        (tmp_path / "torn.json").write_text('{"schema": 1, "entry": {"re')
        assert store.compact(0, now=1e9) == 1
        # The torn file is not an entry; GC leaves it for clear().
        assert (tmp_path / "torn.json").exists()

    def test_disk_compact_does_not_refresh_lru_recency(self, tmp_path):
        """GC reads must not touch mtimes — compaction making every
        survivor look freshly used would break the LRU bound."""
        store = DiskStore(tmp_path)
        store.put("survivor", _dated(1e12))
        os.utime(tmp_path / "survivor.json", (1000, 1000))
        store.compact(3600, now=1e12)
        assert (tmp_path / "survivor.json").stat().st_mtime == 1000


class TestCompactStoreOnService:
    def test_compact_store_uses_the_injected_clock(self, tmp_path):
        tick = [100.0]
        svc = BatchOptimizer(executor="serial", spec=FAST_SPEC,
                             store=DiskStore(tmp_path),
                             clock=lambda: tick[0])
        svc.optimize_fleet(make_fleet())   # provenance stamped at t=100
        entries = len(svc.store)
        tick[0] = 250.0
        assert svc.compact_store(200) == 0        # age 150 < 200
        assert svc.compact_store(150) == entries  # age 150 >= 150
        assert len(svc.store) == 0

    def test_explicit_now_overrides_clock(self):
        svc = BatchOptimizer(executor="serial", spec=FAST_SPEC,
                             clock=lambda: 0.0)
        svc.store.put("k", {"result": {}, "provenance": {"created_at": 50.0}})
        assert svc.compact_store(10, now=100.0) == 1

    def test_store_without_compact_raises_type_error(self):
        class NoCompact:
            def get(self, key):
                return None

            def put(self, key, entry):
                pass

            def keys(self):
                return ()

            def __len__(self):
                return 0

        svc = BatchOptimizer(executor="serial", spec=FAST_SPEC,
                             store=NoCompact())
        with pytest.raises(TypeError, match="compact"):
            svc.compact_store(60)


class TestBatchOptimizerWithDiskStore:
    def test_warm_restart_same_process(self, tmp_path):
        fleet = make_fleet()
        first = BatchOptimizer(executor="serial", spec=FAST_SPEC,
                               store=DiskStore(tmp_path))
        r1 = first.optimize_fleet(fleet)
        assert r1.cache_misses == 3
        # A second service instance shares nothing but the directory.
        second = BatchOptimizer(executor="serial", spec=FAST_SPEC,
                                store=DiskStore(tmp_path))
        r2 = second.optimize_fleet(fleet)
        assert r2.cache_misses == 0
        assert r2.cache_hit_rate == 1.0

    def test_provenance_recorded_with_injected_clock(self, tmp_path):
        fleet = make_fleet()
        svc = BatchOptimizer(executor="serial", spec=FAST_SPEC,
                             store=DiskStore(tmp_path),
                             clock=lambda: 1234.5)
        report = svc.optimize_fleet(fleet[:1])
        prov = report.jobs[0].provenance
        assert prov["created_at"] == 1234.5
        assert prov["producer"] == "analytic"
        assert prov["spec"] == FAST_SPEC.cache_token()

    def test_corrupt_entry_recomputed_not_fatal(self, tmp_path):
        fleet = make_fleet()
        store = DiskStore(tmp_path)
        svc = BatchOptimizer(executor="serial", spec=FAST_SPEC, store=store)
        svc.optimize_fleet(fleet)
        # Truncate one entry (a crash mid-rewrite of the final file).
        victim = store.keys()[0]
        path = tmp_path / f"{victim}.json"
        path.write_text(path.read_text()[: 40])
        again = BatchOptimizer(executor="serial", spec=FAST_SPEC,
                               store=DiskStore(tmp_path))
        report = again.optimize_fleet(fleet)
        # Only the corrupted key was recomputed; everything else hit.
        assert report.cache_misses == 1
        assert report.cache_hit_rate == pytest.approx(9 / 10)

    def test_cache_hit_rate_from_second_fresh_process(self, tmp_path):
        """Acceptance: an unchanged fleet optimized from a *separate
        process* against the same store directory reports >= 90% cache
        hits — keys (structural signature + machine fingerprint + spec
        token) are stable across process boundaries."""
        fleet = make_fleet()
        svc = BatchOptimizer(executor="serial", spec=FAST_SPEC,
                             store=DiskStore(tmp_path))
        svc.optimize_fleet(fleet)
        script = textwrap.dedent(f"""
            from repro.core.spec import OptimizeSpec
            from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
            from repro.service import BatchOptimizer, DiskStore

            spec = OptimizeSpec(iterations=1, backend="analytic",
                                trace_duration=1.0, trace_warmup=0.25)
            fleet = generate_pipeline_fleet(
                num_jobs=10, distinct=3, seed=3,
                config=FleetConfig(domain_weights={{"vision": 1.0}},
                                   optimize_spec=spec),
            )
            svc = BatchOptimizer(executor="serial", spec=spec,
                                 store=DiskStore({str(tmp_path)!r}))
            report = svc.optimize_fleet(fleet)
            print(report.cache_hit_rate)
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, timeout=180)
        assert out.returncode == 0, out.stderr
        hit_rate = float(out.stdout.strip().splitlines()[-1])
        assert hit_rate >= 0.9
        assert hit_rate == 1.0  # unchanged fleet: every key is served
