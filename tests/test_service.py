"""Tests for the fleet-scale batch optimization service."""

import pytest

from repro.core.plumber import Plumber
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.graph.builder import from_tfrecords
from repro.graph.signature import structural_signature
from repro.host.machine import Machine
from repro.service import BatchOptimizer
from tests.conftest import make_udf

#: vision-domain jobs have low element rates, so their traces are
#: cheap to simulate — the right mix for unit tests
VISION_ONLY = FleetConfig(domain_weights={"vision": 1.0})


def small_pipeline(catalog, parallelism=1, name="svc"):
    return (
        from_tfrecords(catalog, parallelism=parallelism, name="src")
        .map(make_udf("op", cpu=1e-3), parallelism=parallelism, name="m")
        .batch(8, name="b")
        .prefetch(4, name="pf")
        .repeat(None, name="r")
        .build(name)
    )


class TestStructuralSignature:
    def test_identical_structure_same_signature(self, small_catalog):
        a = small_pipeline(small_catalog, name="a")
        b = small_pipeline(small_catalog, name="b")
        assert structural_signature(a) == structural_signature(b)

    def test_parallelism_changes_signature(self, small_catalog):
        a = small_pipeline(small_catalog, parallelism=1)
        b = small_pipeline(small_catalog, parallelism=4)
        assert structural_signature(a) != structural_signature(b)

    def test_stable_across_round_trip(self, small_catalog):
        from repro.graph.serialize import pipeline_from_json, pipeline_to_json

        pipe = small_pipeline(small_catalog)
        restored = pipeline_from_json(pipeline_to_json(pipe))
        assert structural_signature(restored) == structural_signature(pipe)


class TestMachineTransport:
    def test_round_trip(self, test_machine):
        restored = Machine.from_dict(test_machine.to_dict())
        assert restored == test_machine

    def test_fingerprint_ignores_name(self, test_machine):
        from dataclasses import replace

        renamed = replace(test_machine, name="other")
        assert renamed.fingerprint() == test_machine.fingerprint()
        recored = replace(test_machine, cores=test_machine.cores + 1)
        assert recored.fingerprint() != test_machine.fingerprint()

    def test_fingerprint_ignores_disk_name(self, test_machine):
        """Identically-specced hosts whose disks differ only in display
        name must share cache entries."""
        from repro.host.disk import token_bucket

        a = test_machine.with_disk(token_bucket(2e9, name="disk-a"))
        b = test_machine.with_disk(token_bucket(2e9, name="disk-b"))
        assert a.fingerprint() == b.fingerprint()
        slower = test_machine.with_disk(token_bucket(1e9, name="disk-a"))
        assert slower.fingerprint() != a.fingerprint()


class TestBatchOptimizer:
    @pytest.fixture(scope="class")
    def fleet(self):
        return generate_pipeline_fleet(
            num_jobs=6, distinct=2, seed=7, config=VISION_ONLY
        )

    @pytest.fixture(scope="class")
    def report(self, fleet):
        svc = BatchOptimizer(executor="serial", iterations=1,
                             trace_duration=3.0, trace_warmup=0.5)
        return svc.optimize_fleet(fleet)

    def test_every_job_reported(self, fleet, report):
        assert [j.name for j in report.jobs] == [j.name for j in fleet]

    def test_cache_collapses_templates(self, report):
        assert report.cache_misses == 2
        assert report.cache_hits == 4
        assert report.cache_hit_rate == pytest.approx(4 / 6)

    def test_duplicate_jobs_share_results(self, fleet, report):
        # jobs 0 and 2 are stamped from the same template
        a, b = report.jobs[0], report.jobs[2]
        assert a.signature == b.signature
        assert not a.cache_hit and b.cache_hit
        assert a.decisions == b.decisions
        assert a.optimized_throughput == b.optimized_throughput
        assert a.pipeline_json == b.pipeline_json

    def test_matches_serial_plumber(self, fleet, report):
        """Pool results are identical to serial Plumber.optimize."""
        job = fleet[1]
        plumber = Plumber(job.machine, trace_duration=3.0, trace_warmup=0.5)
        serial = plumber.optimize(job.pipeline, iterations=1)
        got = report.job(job.name)
        assert got.decisions == tuple(serial.decisions)
        assert got.optimized_throughput == pytest.approx(
            serial.model.observed_throughput
        )
        assert got.baseline_throughput == pytest.approx(
            serial.baseline_throughput
        )

    def test_rewritten_pipeline_is_usable(self, report):
        pipe = report.jobs[0].pipeline
        assert pipe.batch_size() >= 1
        assert structural_signature(pipe)  # parses and hashes

    def test_cache_hit_pipeline_carries_job_name(self, report):
        """A cache-hit job's materialized pipeline is renamed after the
        job, even though the serialized program came from the cache
        representative."""
        hit = next(j for j in report.jobs if j.cache_hit)
        assert hit.pipeline.name == hit.name

    def test_persistent_cache_across_calls(self, fleet):
        svc = BatchOptimizer(executor="serial", iterations=1,
                             trace_duration=3.0, trace_warmup=0.5)
        first = svc.optimize_fleet(fleet[:2])
        second = svc.optimize_fleet(fleet[:2])
        assert first.cache_misses == 2
        assert second.cache_misses == 0
        assert second.cache_hits == 2

    def test_thread_pool_matches_serial(self, fleet, report):
        svc = BatchOptimizer(executor="thread", max_workers=2, iterations=1,
                             trace_duration=3.0, trace_warmup=0.5)
        threaded = svc.optimize_fleet(fleet)
        for a, b in zip(threaded.jobs, report.jobs):
            assert a.decisions == b.decisions
            assert a.optimized_throughput == b.optimized_throughput

    def test_report_tables_render(self, report):
        table = report.to_table()
        assert "cache" in table and report.jobs[0].name in table
        summary = report.summary_table()
        assert "cache hit rate" in summary

    def test_bottleneck_histogram_counts_jobs(self, report):
        hist = report.bottlenecks()
        assert sum(hist.values()) == len(report.jobs)

    def test_speedup_stats(self, report):
        stats = report.speedups()
        assert stats.count > 0
        assert stats.maximum >= stats.median >= stats.minimum

    def test_job_lookup_raises_for_unknown(self, report):
        with pytest.raises(KeyError):
            report.job("nope")


class TestJobInputs:
    def test_mapping_input_uses_default_machine(self, small_catalog,
                                                test_machine):
        svc = BatchOptimizer(machine=test_machine, executor="serial",
                             iterations=1, trace_duration=1.0,
                             trace_warmup=0.25)
        report = svc.optimize_fleet({
            "one": small_pipeline(small_catalog, name="one"),
            "two": small_pipeline(small_catalog, name="two"),
        })
        assert report.cache_misses == 1  # structurally identical
        assert report.cache_hits == 1

    def test_missing_machine_rejected(self, small_catalog):
        svc = BatchOptimizer(executor="serial")
        with pytest.raises(ValueError, match="no machine"):
            svc.optimize_fleet({"solo": small_pipeline(small_catalog)})

    def test_duplicate_names_rejected(self, small_catalog, test_machine):
        svc = BatchOptimizer(machine=test_machine, executor="serial")
        pipe = small_pipeline(small_catalog)
        with pytest.raises(ValueError, match="duplicate"):
            svc.optimize_fleet([("same", pipe), ("same", pipe)])

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            BatchOptimizer(executor="rocket")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            BatchOptimizer(executor="serial", backend="oracle")

    def test_backend_object_rejected_at_service_level(self):
        from repro.runtime.backends import AnalyticBackend

        with pytest.raises(TypeError, match="registered backend name"):
            BatchOptimizer(executor="serial", backend=AnalyticBackend())

    def test_optimize_one(self, small_catalog, test_machine):
        svc = BatchOptimizer(machine=test_machine, executor="serial",
                             iterations=1, trace_duration=1.0,
                             trace_warmup=0.25)
        result = svc.optimize_one("solo", small_pipeline(small_catalog))
        assert result.name == "solo"
        assert not result.cache_hit


class TestPerJobOverrides:
    """Per-job granularity/backend settings are honoured and are part of
    each job's cache identity."""

    def _svc(self, test_machine, **kwargs):
        return BatchOptimizer(machine=test_machine, executor="serial",
                              iterations=1, trace_duration=1.0,
                              trace_warmup=0.25, **kwargs)

    def test_backend_override_splits_cache_entries(self, small_catalog,
                                                   test_machine):
        from repro.service import OptimizationJob

        pipe = small_pipeline(small_catalog)
        svc = self._svc(test_machine)
        report = svc.optimize_fleet([
            OptimizationJob("sim", pipe, test_machine),
            OptimizationJob("ana", pipe, test_machine, backend="analytic"),
        ])
        # Structurally identical, but a trace's backend is part of its
        # identity: no cache sharing across backends.
        assert report.cache_misses == 2
        assert report.cache_hits == 0

    def test_same_override_shares_cache(self, small_catalog, test_machine):
        from repro.service import OptimizationJob

        pipe = small_pipeline(small_catalog)
        svc = self._svc(test_machine)
        report = svc.optimize_fleet([
            OptimizationJob("a", pipe, test_machine, backend="analytic"),
            OptimizationJob("b", pipe, test_machine, backend="analytic"),
        ])
        assert report.cache_misses == 1
        assert report.cache_hits == 1

    def test_granularity_override_splits_cache_entries(self, small_catalog,
                                                       test_machine):
        from repro.service import OptimizationJob

        pipe = small_pipeline(small_catalog)
        svc = self._svc(test_machine)
        report = svc.optimize_fleet([
            OptimizationJob("fine", pipe, test_machine, granularity=1),
            OptimizationJob("coarse", pipe, test_machine, granularity=8),
        ])
        assert report.cache_misses == 2

    def test_service_wide_analytic_backend(self, small_catalog,
                                           test_machine):
        pipe = small_pipeline(small_catalog)
        svc = self._svc(test_machine, backend="analytic")
        result = svc.optimize_one("solo", pipe)
        assert result.optimized_throughput > 0

    def test_analytic_service_matches_analytic_plumber(self, small_catalog,
                                                       test_machine):
        pipe = small_pipeline(small_catalog)
        svc = self._svc(test_machine, backend="analytic")
        got = svc.optimize_one("solo", pipe)
        serial = Plumber(test_machine, trace_duration=1.0, trace_warmup=0.25,
                         backend="analytic").optimize(pipe, iterations=1)
        assert got.decisions == tuple(serial.decisions)
        assert got.optimized_throughput == pytest.approx(
            serial.model.observed_throughput
        )

    def test_per_job_unknown_backend_rejected(self, small_catalog,
                                              test_machine):
        from repro.service import OptimizationJob

        svc = self._svc(test_machine)
        with pytest.raises(ValueError, match="backend"):
            svc.optimize_fleet([
                OptimizationJob("bad", small_pipeline(small_catalog),
                                test_machine, backend="oracle"),
            ])

    def test_fleet_generator_stamps_overrides(self):
        jobs = generate_pipeline_fleet(
            num_jobs=4, distinct=2, seed=7,
            config=FleetConfig(
                domain_weights={"vision": 1.0},
                trace_backend="analytic",
                trace_granularity=4,
                domain_granularity={"vision": 12},
            ),
        )
        assert all(j.backend == "analytic" for j in jobs)
        assert all(j.granularity == 12 for j in jobs)  # domain wins

    def test_fleet_config_stamps_optimize_spec(self):
        from repro.core.spec import OptimizeSpec

        spec = OptimizeSpec(iterations=1, backend="analytic")
        jobs = generate_pipeline_fleet(
            num_jobs=4, distinct=2, seed=7,
            config=FleetConfig(
                domain_weights={"vision": 1.0},
                optimize_spec=spec,
                domain_granularity={"vision": 12},
            ),
        )
        # The domain granularity override folds into the stamped spec.
        assert all(j.spec == spec.replace(granularity=12) for j in jobs)

    def test_fleet_spec_flows_into_service(self, test_machine):
        from repro.core.spec import OptimizeSpec

        spec = OptimizeSpec(iterations=1, backend="analytic",
                            trace_duration=1.0, trace_warmup=0.25)
        jobs = generate_pipeline_fleet(
            num_jobs=4, distinct=2, seed=7,
            config=FleetConfig(domain_weights={"vision": 1.0},
                               optimize_spec=spec),
        )
        svc = BatchOptimizer(executor="serial")  # defaults ignored: jobs
        report = svc.optimize_fleet(jobs)        # carry their own spec
        assert report.cache_misses == 2
        assert all(j.optimized_throughput > 0 for j in report.jobs)

    def test_fleet_overrides_flow_into_service(self, test_machine):
        jobs = generate_pipeline_fleet(
            num_jobs=4, distinct=2, seed=7,
            config=FleetConfig(domain_weights={"vision": 1.0},
                               trace_backend="analytic"),
        )
        svc = BatchOptimizer(executor="serial", iterations=1)
        report = svc.optimize_fleet(jobs)
        assert report.cache_misses == 2
        assert all(j.optimized_throughput > 0 for j in report.jobs)


class TestProcessPool:
    def test_process_pool_matches_serial(self, small_catalog, test_machine):
        """One tiny job through a real process pool: the serialized hop
        (pipeline JSON out, rewritten program back) must be lossless."""
        pipe = small_pipeline(small_catalog)
        kwargs = dict(machine=test_machine, iterations=1,
                      trace_duration=1.0, trace_warmup=0.25)
        serial = BatchOptimizer(executor="serial", **kwargs)
        procs = BatchOptimizer(executor="process", max_workers=1, **kwargs)
        a = serial.optimize_fleet({"j": pipe}).jobs[0]
        b = procs.optimize_fleet({"j": pipe}).jobs[0]
        assert a.decisions == b.decisions
        assert a.optimized_throughput == b.optimized_throughput
        assert a.pipeline_json == b.pipeline_json
