"""Unit tests for UDF metadata and cost models."""

import pytest

from repro.graph.udf import CostModel, UserFunction, identity_udf


class TestCostModel:
    def test_core_seconds_multiplies_width(self):
        cost = CostModel(cpu_seconds=0.1, internal_parallelism=3.0)
        assert cost.core_seconds == pytest.approx(0.3)

    def test_default_is_free(self):
        assert CostModel().core_seconds == 0.0

    def test_rejects_negative_cpu(self):
        with pytest.raises(ValueError, match="cpu_seconds"):
            CostModel(cpu_seconds=-1.0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="internal_parallelism"):
            CostModel(internal_parallelism=0.0)


class TestUserFunction:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            UserFunction(name="")

    def test_output_size_uses_ratio(self):
        udf = UserFunction("decode", size_ratio=6.0)
        assert udf.output_size(100.0) == pytest.approx(600.0)

    def test_output_size_fixed_overrides_ratio(self):
        udf = UserFunction("crop", size_ratio=6.0, output_bytes=50.0)
        assert udf.output_size(1e6) == 50.0

    def test_rejects_negative_ratios(self):
        with pytest.raises(ValueError):
            UserFunction("bad", size_ratio=-1.0)
        with pytest.raises(ValueError):
            UserFunction("bad", examples_ratio=-0.5)
        with pytest.raises(ValueError):
            UserFunction("bad", output_bytes=-2.0)

    def test_round_trip_serialization(self):
        inner = UserFunction("rng", accesses_seed=True)
        udf = UserFunction(
            "outer",
            cost=CostModel(cpu_seconds=0.5, internal_parallelism=2.0),
            size_ratio=3.0,
            examples_ratio=2.0,
            calls=(inner,),
        )
        restored = UserFunction.from_dict(udf.to_dict())
        assert restored.name == "outer"
        assert restored.cost.cpu_seconds == 0.5
        assert restored.cost.internal_parallelism == 2.0
        assert restored.size_ratio == 3.0
        assert restored.examples_ratio == 2.0
        assert len(restored.calls) == 1
        assert restored.calls[0].accesses_seed

    def test_serialization_drops_callable(self):
        udf = UserFunction("f", fn=lambda x: x)
        data = udf.to_dict()
        assert "fn" not in data
        assert UserFunction.from_dict(data).fn is None

    def test_identity_udf_passes_through(self):
        udf = identity_udf()
        assert udf.fn("x") == "x"
        assert udf.cost.cpu_seconds == 0.0
