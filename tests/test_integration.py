"""Cross-module integration tests: the full trace → analyze → rewrite →
re-run loop on every workload, plus trace-file round trips through the
offline path."""

import math

import pytest

from repro.baselines.naive import naive_config
from repro.core import Plumber, PipelineTrace, build_model, explain
from repro.core.rewriter import existing_cache
from repro.host import setup_a
from repro.runtime.executor import run_pipeline
from repro.workloads import MICROBENCH_WORKLOADS, get_workload

SCALES = {"resnet": 0.05, "rcnn": 0.25, "ssd": 0.25,
          "transformer": 0.01, "gnmt": 0.01}


@pytest.fixture(scope="module")
def machine():
    return setup_a()


@pytest.mark.parametrize("name", sorted(MICROBENCH_WORKLOADS))
def test_optimize_never_hurts(name, machine):
    """Plumber's full pass beats or matches naive on every workload."""
    pipe = naive_config(get_workload(name).build(scale=SCALES[name]))
    plumber = Plumber(machine, trace_duration=1.5, trace_warmup=0.4)
    before = run_pipeline(pipe, machine, duration=1.5, warmup=0.4,
                          trace=False)
    result = plumber.optimize(pipe)
    after = run_pipeline(result.pipeline, machine, duration=1.5, warmup=0.4,
                         trace=False)
    assert after.throughput >= before.throughput * 0.95, name


@pytest.mark.parametrize("name", sorted(MICROBENCH_WORKLOADS))
def test_offline_trace_round_trip(name, machine):
    """A trace serialized to JSON drives the same offline analysis."""
    pipe = get_workload(name).build(scale=SCALES[name])
    plumber = Plumber(machine, trace_duration=1.2, trace_warmup=0.3)
    trace = plumber.trace(pipe)
    restored = PipelineTrace.from_json(trace.to_json())
    model_a = build_model(trace)
    model_b = build_model(restored)
    for node in model_a.rates:
        ra, rb = model_a.rates[node], model_b.rates[node]
        if math.isfinite(ra.rate_per_core):
            assert rb.rate_per_core == pytest.approx(ra.rate_per_core)
        assert rb.cacheable == ra.cacheable


def test_explain_renders_for_all_workloads(machine):
    plumber = Plumber(machine, trace_duration=1.0, trace_warmup=0.3)
    for name in MICROBENCH_WORKLOADS:
        model = plumber.model(get_workload(name).build(scale=SCALES[name]))
        report = explain(model)
        assert "observed throughput" in report
        assert "bottleneck" in report


def test_cache_decision_respects_machine_memory(machine):
    """On Setup A, decoded ImageNet does not fit; the source does."""
    plumber = Plumber(machine, trace_duration=1.5, trace_warmup=0.4)
    pipe = get_workload("resnet").build(scale=0.05)  # 7.4 GB source
    result = plumber.optimize(pipe)
    assert result.cache is not None
    # Decoded output (~42 GB) exceeds the 34 GB host: cache below decode.
    assert result.cache.target in ("interleave_tfrecord", "map_parse")
    assert existing_cache(result.pipeline) is not None


def test_optimized_pipeline_is_serializable(machine):
    """The rewritten program (with injected prefetch/cache) round-trips."""
    from repro.graph.serialize import pipeline_from_json, pipeline_to_json

    plumber = Plumber(machine, trace_duration=1.0, trace_warmup=0.3)
    result = plumber.optimize(get_workload("ssd").build(scale=0.25))
    text = pipeline_to_json(result.pipeline)
    restored = pipeline_from_json(text)
    run = run_pipeline(restored, machine, duration=1.0, warmup=0.2)
    assert run.throughput > 0


def test_simulator_agrees_with_analytic_model(machine):
    """The two substrates (event simulation, closed-form steady state)
    agree on a tuned vision pipeline."""
    from repro.analysis.steady_state import predict_throughput
    from repro.core.rewriter import set_parallelism

    pipe = get_workload("resnet").build(scale=0.05)
    pipe = set_parallelism(
        pipe, {n.name: 4 for n in pipe.tunables()}
    )
    predicted = predict_throughput(pipe, machine)
    simulated = run_pipeline(pipe, machine, duration=3.0, warmup=1.0)
    assert simulated.throughput == pytest.approx(
        predicted.throughput, rel=0.15
    )
