"""Trace backend layer: protocol, analytic fast path, and parity.

The analytic backend's contract is *decision parity*: on the paper's
five seed workloads it must identify the same bottleneck as the
discrete-event simulator and land root throughput within a stated
tolerance — the trace is just counters + a program (§4.1), and two
backends producing compatible counters are interchangeable to the
optimizer.
"""

import json
import math

import pytest

from repro.core.lp import solve_allocation
from repro.core.plumber import Plumber
from repro.core.rates import build_model
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.graph.builder import from_tfrecords
from repro.host.machine import setup_a
from repro.runtime import (
    ModelConsumer,
    RunConfig,
    analytic_trace,
    available_backends,
    resolve_backend,
)
from repro.service import BatchOptimizer
from repro.workloads.registry import MICROBENCH_WORKLOADS
from tests.conftest import make_udf

#: relative tolerance for analytic-vs-simulated root throughput
THROUGHPUT_TOLERANCE = 0.15

SEED_WORKLOADS = sorted(MICROBENCH_WORKLOADS)


@pytest.fixture(scope="module")
def machine():
    return setup_a()


def _traces(workload_name, machine, parallelism=4):
    pipe = MICROBENCH_WORKLOADS[workload_name].build(
        scale=0.01, parallelism=parallelism
    )
    plumber = Plumber(machine)
    sim = plumber.trace(pipe)
    ana = plumber.trace(pipe, backend="analytic")
    return sim, ana


class TestSeedWorkloadParity:
    @pytest.fixture(scope="class", params=SEED_WORKLOADS)
    def trace_pair(self, request):
        return _traces(request.param, setup_a())

    def test_backends_are_labelled(self, trace_pair):
        sim, ana = trace_pair
        assert sim.backend == "simulate"
        assert ana.backend == "analytic"

    def test_root_throughput_within_tolerance(self, trace_pair):
        sim, ana = trace_pair
        assert ana.root_throughput == pytest.approx(
            sim.root_throughput, rel=THROUGHPUT_TOLERANCE
        )

    def test_bottleneck_identification_agrees(self, trace_pair):
        sim, ana = trace_pair
        lp_sim = solve_allocation(build_model(sim))
        lp_ana = solve_allocation(build_model(ana))
        assert lp_ana.bottleneck == lp_sim.bottleneck

    def test_lp_estimate_within_tolerance(self, trace_pair):
        sim, ana = trace_pair
        lp_sim = solve_allocation(build_model(sim))
        lp_ana = solve_allocation(build_model(ana))
        assert lp_ana.predicted_throughput == pytest.approx(
            lp_sim.predicted_throughput, rel=THROUGHPUT_TOLERANCE
        )


class TestOptimizeParity:
    def test_full_optimize_agrees_on_resnet(self, machine):
        pipe = MICROBENCH_WORKLOADS["resnet"].build(scale=0.01)
        sim = Plumber(machine).optimize(pipe, iterations=1)
        ana = Plumber(machine, backend="analytic").optimize(pipe, iterations=1)
        assert ana.bottleneck == sim.bottleneck
        assert ana.model.observed_throughput == pytest.approx(
            sim.model.observed_throughput, rel=THROUGHPUT_TOLERANCE
        )
        # Same passes fired (decision text may differ in buffer sizes).
        assert len(ana.decisions) == len(sim.decisions)


class TestBackendProtocol:
    def test_registry_names(self):
        assert set(available_backends()) >= {"simulate", "analytic"}

    def test_resolve_by_name(self):
        assert resolve_backend("analytic").name == "analytic"
        assert resolve_backend("simulate").name == "simulate"

    def test_none_means_simulate(self):
        assert resolve_backend(None).name == "simulate"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown trace backend"):
            resolve_backend("tea_leaves")

    def test_non_backend_object_rejected(self):
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_custom_backend_object_passes_through(self, machine,
                                                  simple_pipeline):
        class Recorded:
            name = "recorded"

            def __init__(self):
                self.calls = 0

            def trace(self, pipeline, mach, config):
                self.calls += 1
                return analytic_trace(pipeline, mach, config)

        backend = Recorded()
        plumber = Plumber(machine, backend=backend)
        trace = plumber.trace(simple_pipeline)
        assert backend.calls == 1
        assert trace.backend == "analytic"  # delegate stamped it

    def test_trace_json_round_trips_backend(self, machine, simple_pipeline):
        from repro.core.trace import PipelineTrace

        trace = analytic_trace(simple_pipeline, machine, duration=2.0,
                               warmup=0.5)
        restored = PipelineTrace.from_json(trace.to_json())
        assert restored.backend == "analytic"
        payload = json.loads(trace.to_json())
        assert payload["backend"] == "analytic"


class TestAnalyticTrace:
    def test_counters_cover_every_node(self, machine, simple_pipeline):
        trace = analytic_trace(simple_pipeline, machine)
        names = {n.name for n in simple_pipeline.iter_nodes()}
        assert set(trace.stats) == names
        st = trace.stats["src"]
        assert st.bytes_read > 0
        assert st.files_seen_count >= 1

    def test_model_and_lp_build_from_analytic_trace(self, machine,
                                                    simple_pipeline):
        model = build_model(analytic_trace(simple_pipeline, machine))
        assert model.cpu_nodes()
        lp = solve_allocation(model)
        assert lp.predicted_throughput > 0

    def test_source_size_estimate_recovers_catalog(self, machine,
                                                   simple_pipeline):
        model = build_model(analytic_trace(simple_pipeline, machine))
        est = model.source_estimates["src"]
        catalog = simple_pipeline.node("src").catalog
        assert est.estimated_bytes == pytest.approx(
            catalog.total_bytes, rel=0.05
        )

    def test_consumer_step_caps_throughput(self, machine, simple_pipeline):
        fast = analytic_trace(simple_pipeline, machine)
        step = 10.0 / fast.root_throughput  # 10x slower than the pipe
        capped = analytic_trace(
            simple_pipeline, machine, consumer=ModelConsumer(step)
        )
        assert capped.root_throughput == pytest.approx(1.0 / step, rel=0.01)

    def test_finite_stream_completes_early(self, machine,
                                           single_epoch_pipeline):
        trace = analytic_trace(
            single_epoch_pipeline, machine, duration=500.0, warmup=0.0
        )
        total = trace.root_throughput * trace.measured_seconds
        catalog = single_epoch_pipeline.node("src").catalog
        expected = sum(
            f.num_records for f in catalog.files
        ) / single_epoch_pipeline.batch_size()
        assert total == pytest.approx(expected, rel=0.05)
        assert trace.measured_seconds < 500.0

    def test_cache_serving_beats_fill_rate(self, machine, small_catalog):
        """With a cache under a repeat, steady-state throughput must
        reflect the serve regime (cheap), not the populate chain."""
        expensive = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("heavy", cpu=5e-3), parallelism=2, name="m")
            .batch(16, name="b")
            .build("uncached")
        )
        cached = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("heavy", cpu=5e-3), parallelism=2, name="m")
            .batch(16, name="b")
            .cache(name="cache")
            .repeat(None, name="r")
            .build("cached")
        )
        plain = analytic_trace(expensive, machine, duration=100.0,
                               warmup=0.0)
        served = analytic_trace(cached, machine, duration=1000.0,
                                warmup=500.0)
        assert served.root_throughput > 2 * plain.root_throughput

    def test_single_epoch_cached_pipeline_still_does_the_work(
        self, machine, small_catalog
    ):
        """Regression: with a cache but only one epoch, the whole run is
        the populate pass — sub-cache nodes must show their full
        one-epoch production, not zero (which would make the LP treat
        the expensive pre-cache stages as free)."""
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("work", cpu=1e-4), parallelism=2, name="m")
            .cache(name="cache")
            .build("one_epoch_cached")
        )
        trace = analytic_trace(pipe, machine, duration=100.0, warmup=0.0)
        records = sum(f.num_records for f in small_catalog.files)
        assert trace.stats["src"].elements_produced == pytest.approx(
            records, rel=0.05
        )
        assert trace.stats["m"].elements_produced == pytest.approx(
            records, rel=0.05
        )
        assert trace.stats["m"].cpu_core_seconds > 0

    def test_event_budget_forwarded_to_granularity(self, machine,
                                                   simple_pipeline):
        """Regression: the analytic backend resolves granularity through
        the same helper as the simulator, so ``RunConfig.event_budget``
        is honoured identically by both."""
        import repro.runtime.analytic as analytic_mod

        seen = {}
        original = analytic_mod.resolve_granularity

        def spy(pipeline, mach, config):
            seen["event_budget"] = config.event_budget
            return original(pipeline, mach, config)

        analytic_mod.resolve_granularity = spy
        try:
            analytic_trace(simple_pipeline, machine, duration=2.0,
                           warmup=0.5, event_budget=12_345)
        finally:
            analytic_mod.resolve_granularity = original
        assert seen["event_budget"] == 12_345

    def test_sub_cache_production_bounded_by_one_epoch(self, machine,
                                                       small_catalog):
        cached = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("work", cpu=1e-4), parallelism=2, name="m")
            .cache(name="cache")
            .repeat(None, name="r")
            .build("cached")
        )
        trace = analytic_trace(cached, machine, duration=1000.0, warmup=0.0)
        records = sum(f.num_records for f in small_catalog.files)
        assert trace.stats["src"].elements_produced <= records * 1.01
        # The cache itself keeps serving long past the fill epoch.
        assert trace.stats["cache"].elements_produced > records * 2

    def test_overrides_and_config_are_exclusive(self, machine,
                                                simple_pipeline):
        with pytest.raises(TypeError):
            analytic_trace(simple_pipeline, machine, RunConfig(),
                           duration=1.0)


class TestMixedDomainFleet:
    """ROADMAP item 3: the full §3 domain mix, cheap under analytic."""

    @pytest.fixture(scope="class")
    def fleet(self):
        jobs = []
        for domain in ("vision", "nlp", "rl"):
            jobs.extend(
                generate_pipeline_fleet(
                    num_jobs=3,
                    distinct=3,
                    seed=5,
                    config=FleetConfig(domain_weights={domain: 1.0}),
                )
            )
        return jobs

    def test_fleet_covers_all_domains(self, fleet):
        assert {j.domain for j in fleet} == {"vision", "nlp", "rl"}
        assert len(fleet) >= 9

    def test_analytic_fleet_end_to_end(self, fleet):
        svc = BatchOptimizer(executor="serial", iterations=1,
                             backend="analytic")
        report = svc.optimize_fleet(fleet)
        assert len(report.jobs) == len(fleet)
        for job in report.jobs:
            assert math.isfinite(job.optimized_throughput)
            assert job.optimized_throughput > 0
            assert job.bottleneck
        stats = report.speedups()
        assert stats.geomean >= 1.0  # optimization never hurts on average
