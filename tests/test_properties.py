"""Property-based tests (hypothesis) on core data structures and
invariants: visit ratios, byte accounting, LP feasibility, the disk
curve fit, queues, and the subsample estimator."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.disk_planner import fit_piecewise
from repro.graph.builder import from_tfrecords
from repro.graph.serialize import pipeline_from_dict, pipeline_to_dict
from repro.graph.signature import infer_signatures
from repro.graph.udf import CostModel, UserFunction
from repro.host.disk import DiskSpec
from repro.io.filesystem import FileCatalog
from repro.runtime.engine import Get, Put, SimQueue, Simulation

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
catalogs = st.builds(
    FileCatalog,
    name=st.just("prop"),
    num_files=st.integers(1, 64),
    records_per_file=st.floats(1.0, 500.0),
    bytes_per_record=st.floats(1.0, 1e6),
    size_cv=st.floats(0.0, 0.5),
    seed=st.integers(0, 1000),
)


@st.composite
def chain_pipelines(draw):
    """Random linear pipelines: src -> (map|filter)* -> batch? -> repeat?"""
    catalog = draw(catalogs)
    ds = from_tfrecords(catalog, parallelism=draw(st.integers(1, 8)), name="src")
    n_ops = draw(st.integers(0, 4))
    for i in range(n_ops):
        kind = draw(st.sampled_from(["map", "filter"]))
        if kind == "map":
            udf = UserFunction(
                f"op{i}",
                cost=CostModel(cpu_seconds=draw(st.floats(0.0, 1e-3))),
                size_ratio=draw(st.floats(0.1, 10.0)),
            )
            ds = ds.map(udf, parallelism=draw(st.integers(1, 8)), name=f"map{i}")
        else:
            udf = UserFunction(f"op{i}")
            ds = ds.filter(
                udf, keep_fraction=draw(st.floats(0.1, 1.0)), name=f"filt{i}"
            )
    if draw(st.booleans()):
        ds = ds.batch(draw(st.integers(1, 64)), name="batch")
    if draw(st.booleans()):
        ds = ds.repeat(None, name="repeat")
    return ds.build("prop", validate=True)


class TestCatalogProperties:
    @given(catalogs)
    @settings(max_examples=50, deadline=None)
    def test_totals_are_sums(self, catalog):
        assert catalog.total_bytes == pytest.approx(
            sum(f.size_bytes for f in catalog.files)
        )
        assert catalog.total_records == sum(f.num_records for f in catalog.files)
        assert all(f.num_records >= 1 for f in catalog.files)

    @given(catalogs, st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_scales_total_records(self, catalog, factor):
        scaled = catalog.scaled(factor)
        # Total records scale by the factor (modulo per-file rounding);
        # the file count never drops below the interleave minimum.
        expected = catalog.num_files * catalog.records_per_file * factor
        assert scaled.num_files * scaled.records_per_file == pytest.approx(
            max(expected, scaled.num_files), rel=0.01
        )
        assert scaled.num_files >= min(8, catalog.num_files)


class TestPipelineProperties:
    @given(chain_pipelines())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_serialization_round_trips(self, pipeline):
        data = pipeline_to_dict(pipeline)
        restored = pipeline_from_dict(data)
        assert pipeline_to_dict(restored) == data

    @given(chain_pipelines())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_visit_ratio_recurrence(self, pipeline):
        """V_child = V_parent / ratio(parent): the §4.4 recurrence."""
        ratios = pipeline.visit_ratios()
        assert ratios[pipeline.root.name] == 1.0
        for node in pipeline.iter_nodes():
            for child in node.inputs:
                r = node.elements_ratio()
                if r > 0 and math.isfinite(ratios[node.name]):
                    assert ratios[child.name] == pytest.approx(
                        ratios[node.name] / r
                    )

    @given(chain_pipelines())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_signature_cardinality_never_negative(self, pipeline):
        for spec in infer_signatures(pipeline).values():
            assert spec.cardinality >= 0
            assert spec.avg_bytes >= 0

    @given(chain_pipelines())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_clone_preserves_structure(self, pipeline):
        clone = pipeline.clone()
        assert [n.name for n in clone.topological_order()] == [
            n.name for n in pipeline.topological_order()
        ]
        assert clone.root is not pipeline.root


class TestDiskCurveProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 128), st.floats(1.0, 1e9)),
            min_size=1,
            max_size=8,
            unique_by=lambda p: p[0],
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fit_is_concave_majorant(self, points):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        segments = fit_piecewise(xs, ys)
        assert segments
        for x, y in zip(xs, ys):
            fitted = min(s * x + c for s, c in segments)
            assert fitted >= y - max(1e-6, abs(y) * 1e-9)

    @given(
        st.lists(st.floats(10.0, 1e9), min_size=1, max_size=5),
        st.floats(1.0, 64.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_diskspec_interp_within_range(self, bws, streams):
        bws = sorted(bws)
        curve = tuple((float(i + 1), bw) for i, bw in enumerate(bws))
        # Enforce concavity by taking the running concave hull via fit.
        segments = fit_piecewise([p[0] for p in curve], [p[1] for p in curve])
        spec_points = [(x, min(s * x + c for s, c in segments))
                       for x, _ in curve]
        spec = DiskSpec("d", curve=tuple(spec_points))
        bw = spec.bandwidth(streams)
        assert 0 <= bw <= spec.max_bandwidth * (1 + 1e-9)


class TestQueueProperties:
    @given(
        st.lists(st.integers(), min_size=1, max_size=30),
        st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_fifo_through_bounded_queue(self, items, capacity):
        sim = Simulation()
        q = SimQueue(sim, capacity=capacity)
        received = []

        def producer():
            for item in items:
                yield Put(q, item)

        def consumer():
            for _ in items:
                received.append((yield Get(q)))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run(1.0)
        assert received == items

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_multi_producer_conservation(self, n_prod, capacity, per_prod):
        """No element is lost or duplicated across producers."""
        sim = Simulation()
        q = SimQueue(sim, capacity=capacity)
        received = []

        def producer(tag):
            for i in range(per_prod):
                yield Put(q, (tag, i))

        def consumer():
            for _ in range(n_prod * per_prod):
                received.append((yield Get(q)))

        for t in range(n_prod):
            sim.spawn(producer(t))
        sim.spawn(consumer())
        sim.run(10.0)
        assert sorted(received) == sorted(
            (t, i) for t in range(n_prod) for i in range(per_prod)
        )


class TestSubsampleEstimator:
    @given(st.integers(2, 200), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_rescaled_subsample_concentrates(self, num_files, seed):
        """§A: (m/n) x observed-sum estimates total size; with CLT-style
        concentration the full observation is exact."""
        catalog = FileCatalog("s", num_files, 100.0, 1000.0,
                              size_cv=0.2, seed=seed)
        sizes = np.array([f.size_bytes for f in catalog.files])
        m = max(1, num_files // 4)
        estimate = sizes[:m].sum() * (num_files / m)
        # Lognormal with cv=0.2: 4x-subsample stays within ~35%.
        assert estimate == pytest.approx(
            catalog.total_bytes, rel=0.35 + 2.0 / math.sqrt(m)
        )
        full = sizes.sum() * (num_files / num_files)
        assert full == pytest.approx(catalog.total_bytes)
