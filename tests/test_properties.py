"""Property-based tests (hypothesis) on core data structures and
invariants: visit ratios, byte accounting, LP feasibility, the disk
curve fit, queues, and the subsample estimator."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.disk_planner import fit_piecewise
from repro.graph.builder import (
    from_tfrecords,
    interleave_datasets,
    zip_datasets,
)
from repro.graph.serialize import pipeline_from_dict, pipeline_to_dict
from repro.graph.signature import infer_signatures, structural_signature
from repro.graph.udf import CostModel, UserFunction
from repro.host.disk import DiskSpec
from repro.io.filesystem import FileCatalog
from repro.runtime.engine import Get, Put, SimQueue, Simulation
from repro.runtime.executor import ModelConsumer, RunConfig
from tests.engine_equivalence import fingerprint

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
catalogs = st.builds(
    FileCatalog,
    name=st.just("prop"),
    num_files=st.integers(1, 64),
    records_per_file=st.floats(1.0, 500.0),
    bytes_per_record=st.floats(1.0, 1e6),
    size_cv=st.floats(0.0, 0.5),
    seed=st.integers(0, 1000),
)


@st.composite
def chain_pipelines(draw):
    """Random linear pipelines: src -> (map|filter)* -> batch? -> repeat?"""
    catalog = draw(catalogs)
    ds = from_tfrecords(catalog, parallelism=draw(st.integers(1, 8)), name="src")
    n_ops = draw(st.integers(0, 4))
    for i in range(n_ops):
        kind = draw(st.sampled_from(["map", "filter"]))
        if kind == "map":
            udf = UserFunction(
                f"op{i}",
                cost=CostModel(cpu_seconds=draw(st.floats(0.0, 1e-3))),
                size_ratio=draw(st.floats(0.1, 10.0)),
            )
            ds = ds.map(udf, parallelism=draw(st.integers(1, 8)), name=f"map{i}")
        else:
            udf = UserFunction(f"op{i}")
            ds = ds.filter(
                udf, keep_fraction=draw(st.floats(0.1, 1.0)), name=f"filt{i}"
            )
    if draw(st.booleans()):
        ds = ds.batch(draw(st.integers(1, 64)), name="batch")
    if draw(st.booleans()):
        ds = ds.repeat(None, name="repeat")
    return ds.build("prop", validate=True)


@st.composite
def dag_pipelines(draw):
    """Random multi-source DAGs: 2-3 chains merged by zip/interleave."""
    n_branches = draw(st.integers(2, 3))
    branches = []
    for b in range(n_branches):
        catalog = FileCatalog(
            f"cat{b}",
            num_files=draw(st.integers(1, 32)),
            records_per_file=draw(st.floats(1.0, 300.0)),
            bytes_per_record=draw(st.floats(1.0, 1e5)),
            seed=draw(st.integers(0, 100)),
        )
        ds = from_tfrecords(
            catalog, parallelism=draw(st.integers(1, 4)), name=f"b{b}src"
        )
        for i in range(draw(st.integers(0, 2))):
            udf = UserFunction(
                f"b{b}op{i}",
                cost=CostModel(cpu_seconds=draw(st.floats(0.0, 1e-3))),
                size_ratio=draw(st.floats(0.1, 4.0)),
            )
            ds = ds.map(
                udf, parallelism=draw(st.integers(1, 4)), name=f"b{b}map{i}"
            )
        branches.append(ds)
    if draw(st.booleans()):
        ds = zip_datasets(
            branches,
            cpu_seconds_per_element=draw(st.floats(0.0, 1e-4)),
            name="merge",
        )
    else:
        ds = interleave_datasets(
            branches,
            weights=[draw(st.floats(0.05, 1.0)) for _ in branches],
            seed=draw(st.integers(0, 10)),
            name="merge",
        )
    if draw(st.booleans()):
        ds = ds.batch(draw(st.integers(1, 16)), name="batch")
    if draw(st.booleans()):
        ds = ds.repeat(None, name="repeat")
    return ds.build("dagprop", validate=True)


@st.composite
def run_configs(draw):
    """Random :class:`RunConfig` kwargs (engine chosen by the test)."""
    duration = draw(st.floats(0.05, 1.0))
    cfg = {
        "duration": duration,
        "warmup": duration * draw(st.floats(0.0, 0.8)),
    }
    if draw(st.booleans()):
        cfg["granularity"] = draw(st.integers(1, 8))
    if draw(st.booleans()):
        cfg["epochs"] = draw(st.floats(1.0, 3.0))
    if draw(st.booleans()):
        cfg["consumer"] = ModelConsumer(draw(st.floats(0.0, 5e-4)))
    return cfg


class TestCatalogProperties:
    @given(catalogs)
    @settings(max_examples=50, deadline=None)
    def test_totals_are_sums(self, catalog):
        assert catalog.total_bytes == pytest.approx(
            sum(f.size_bytes for f in catalog.files)
        )
        assert catalog.total_records == sum(f.num_records for f in catalog.files)
        assert all(f.num_records >= 1 for f in catalog.files)

    @given(catalogs, st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_scales_total_records(self, catalog, factor):
        scaled = catalog.scaled(factor)
        # Total records scale by the factor (modulo per-file rounding);
        # the file count never drops below the interleave minimum.
        expected = catalog.num_files * catalog.records_per_file * factor
        assert scaled.num_files * scaled.records_per_file == pytest.approx(
            max(expected, scaled.num_files), rel=0.01
        )
        assert scaled.num_files >= min(8, catalog.num_files)


class TestPipelineProperties:
    @given(chain_pipelines())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_serialization_round_trips(self, pipeline):
        data = pipeline_to_dict(pipeline)
        restored = pipeline_from_dict(data)
        assert pipeline_to_dict(restored) == data

    @given(chain_pipelines())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_visit_ratio_recurrence(self, pipeline):
        """V_child = V_parent / ratio(parent): the §4.4 recurrence."""
        ratios = pipeline.visit_ratios()
        assert ratios[pipeline.root.name] == 1.0
        for node in pipeline.iter_nodes():
            for child in node.inputs:
                r = node.elements_ratio()
                if r > 0 and math.isfinite(ratios[node.name]):
                    assert ratios[child.name] == pytest.approx(
                        ratios[node.name] / r
                    )

    @given(chain_pipelines())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_signature_cardinality_never_negative(self, pipeline):
        for spec in infer_signatures(pipeline).values():
            assert spec.cardinality >= 0
            assert spec.avg_bytes >= 0

    @given(chain_pipelines())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_clone_preserves_structure(self, pipeline):
        clone = pipeline.clone()
        assert [n.name for n in clone.topological_order()] == [
            n.name for n in pipeline.topological_order()
        ]
        assert clone.root is not pipeline.root


class TestDagProperties:
    @given(dag_pipelines())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_serialization_round_trips(self, pipeline):
        """Multi-source programs survive the wire byte-for-byte —
        including interleave weights, which must normalize idempotently."""
        data = pipeline_to_dict(pipeline)
        restored = pipeline_from_dict(data)
        assert pipeline_to_dict(restored) == data

    @given(dag_pipelines())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_clone_preserves_structure_and_signature(self, pipeline):
        clone = pipeline.clone()
        assert [n.name for n in clone.topological_order()] == [
            n.name for n in pipeline.topological_order()
        ]
        assert structural_signature(clone) == structural_signature(pipeline)

    @given(dag_pipelines())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_merge_visit_ratios_follow_consumption(self, pipeline):
        """V_child = V_merge * consumption(i): zip consumes one element
        per input per output; interleave consumes by weight."""
        ratios = pipeline.visit_ratios()
        for node in pipeline.iter_nodes():
            if node.input_arity is not None:
                continue
            for i, child in enumerate(node.inputs):
                assert ratios[child.name] == pytest.approx(
                    ratios[node.name] * node.input_consumption(i)
                )

    @given(st.integers(1, 32), st.integers(1, 32), st.floats(1e-6, 1e-3))
    @settings(max_examples=25, deadline=None)
    def test_branch_topology_is_signature_relevant(self, files_a, files_b,
                                                   cost):
        """Two DAGs with the *same node multiset* but the map wired into
        a different branch must not collide — the result cache would
        otherwise serve one topology's plan for the other."""
        def variant(map_on_a):
            a = from_tfrecords(
                FileCatalog("cat_a", files_a, 10.0, 100.0), name="src_a")
            b = from_tfrecords(
                FileCatalog("cat_b", files_b, 10.0, 100.0), name="src_b")
            udf = UserFunction("op", cost=CostModel(cpu_seconds=cost))
            if map_on_a:
                a = a.map(udf, name="m")
            else:
                b = b.map(udf, name="m")
            return zip_datasets([a, b], name="z").build("v", validate=True)

        assert structural_signature(variant(True)) != \
            structural_signature(variant(False))

    @given(st.integers(1, 32), st.integers(1, 32), st.floats(0.0, 1e-3))
    @settings(max_examples=25, deadline=None)
    def test_zip_input_order_is_signature_relevant(self, files_a, files_b,
                                                   cost):
        """zip is positional: zip(a, b) and zip(b, a) are different
        programs and must hash differently."""
        def variant(order):
            a = from_tfrecords(
                FileCatalog("cat_a", files_a, 10.0, 100.0), name="src_a")
            b = from_tfrecords(
                FileCatalog("cat_b", files_b, 10.0, 100.0),
                name="src_b").map(
                    UserFunction("op", cost=CostModel(cpu_seconds=cost)),
                    name="m")
            pair = [a, b] if order else [b, a]
            return zip_datasets(pair, name="z").build("v", validate=True)

        assert structural_signature(variant(True)) != \
            structural_signature(variant(False))


class TestDiskCurveProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 128), st.floats(1.0, 1e9)),
            min_size=1,
            max_size=8,
            unique_by=lambda p: p[0],
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fit_is_concave_majorant(self, points):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        segments = fit_piecewise(xs, ys)
        assert segments
        for x, y in zip(xs, ys):
            fitted = min(s * x + c for s, c in segments)
            assert fitted >= y - max(1e-6, abs(y) * 1e-9)

    @given(
        st.lists(st.floats(10.0, 1e9), min_size=1, max_size=5),
        st.floats(1.0, 64.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_diskspec_interp_within_range(self, bws, streams):
        bws = sorted(bws)
        curve = tuple((float(i + 1), bw) for i, bw in enumerate(bws))
        # Enforce concavity by taking the running concave hull via fit.
        segments = fit_piecewise([p[0] for p in curve], [p[1] for p in curve])
        spec_points = [(x, min(s * x + c for s, c in segments))
                       for x, _ in curve]
        spec = DiskSpec("d", curve=tuple(spec_points))
        bw = spec.bandwidth(streams)
        assert 0 <= bw <= spec.max_bandwidth * (1 + 1e-9)


class TestQueueProperties:
    @given(
        st.lists(st.integers(), min_size=1, max_size=30),
        st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_fifo_through_bounded_queue(self, items, capacity):
        sim = Simulation()
        q = SimQueue(sim, capacity=capacity)
        received = []

        def producer():
            for item in items:
                yield Put(q, item)

        def consumer():
            for _ in items:
                received.append((yield Get(q)))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run(1.0)
        assert received == items

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_multi_producer_conservation(self, n_prod, capacity, per_prod):
        """No element is lost or duplicated across producers."""
        sim = Simulation()
        q = SimQueue(sim, capacity=capacity)
        received = []

        def producer(tag):
            for i in range(per_prod):
                yield Put(q, (tag, i))

        def consumer():
            for _ in range(n_prod * per_prod):
                received.append((yield Get(q)))

        for t in range(n_prod):
            sim.spawn(producer(t))
        sim.spawn(consumer())
        sim.run(10.0)
        assert sorted(received) == sorted(
            (t, i) for t in range(n_prod) for i in range(per_prod)
        )


class TestEngineEquivalence:
    """The vectorized engine's contract, stressed on *random* programs:
    for any pipeline and any run configuration, fast == reference
    exactly — byte-identical trace JSON, equal NodeStats, equal queue
    telemetry and consumer observables. The curated corpus in
    ``tests/golden/`` pins known shapes; these properties hunt the
    shapes nobody curated."""

    @staticmethod
    def _assert_engines_identical(pipeline, cfg):
        # The strategies return built pipelines; each engine run gets
        # its own clone via the serialization round-trip so neither run
        # observes the other's node state.
        data = pipeline_to_dict(pipeline)
        ref = fingerprint(
            pipeline_from_dict(data), RunConfig(engine="reference", **cfg)
        )
        vec = fingerprint(
            pipeline_from_dict(data), RunConfig(engine="vectorized", **cfg)
        )
        assert vec["trace"] == ref["trace"]
        assert vec == ref

    @given(chain_pipelines(), run_configs())
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_chain_engines_byte_identical(self, pipeline, cfg):
        self._assert_engines_identical(pipeline, cfg)

    @given(dag_pipelines(), run_configs())
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dag_engines_byte_identical(self, pipeline, cfg):
        self._assert_engines_identical(pipeline, cfg)


class TestSubsampleEstimator:
    @given(st.integers(2, 200), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_rescaled_subsample_concentrates(self, num_files, seed):
        """§A: (m/n) x observed-sum estimates total size; with CLT-style
        concentration the full observation is exact."""
        catalog = FileCatalog("s", num_files, 100.0, 1000.0,
                              size_cv=0.2, seed=seed)
        sizes = np.array([f.size_bytes for f in catalog.files])
        m = max(1, num_files // 4)
        estimate = sizes[:m].sum() * (num_files / m)
        # Lognormal with cv=0.2: 4x-subsample stays within ~35%.
        assert estimate == pytest.approx(
            catalog.total_bytes, rel=0.35 + 2.0 / math.sqrt(m)
        )
        full = sizes.sum() * (num_files / num_files)
        assert full == pytest.approx(catalog.total_bytes)
