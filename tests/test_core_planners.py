"""Tests for the cache, prefetch, and disk planners."""

import math

import pytest

from repro.core.cache_planner import plan_cache_exhaustive, plan_cache_greedy
from repro.core.disk_planner import (
    benchmark_source_curve,
    fit_piecewise,
    io_bound_throughput,
)
from repro.core.prefetch_planner import plan_prefetch
from repro.graph.builder import from_tfrecords
from repro.host.memory import MemoryBudget
from tests.conftest import make_udf
from tests.test_core_rates import model_of


def amplifying_pipeline(catalog, random_tail=True):
    ds = (
        from_tfrecords(catalog, parallelism=2, name="src")
        .map(make_udf("decode", cpu=1e-4, size_ratio=6.0), parallelism=2,
             name="dec")
    )
    if random_tail:
        ds = ds.map(make_udf("aug", cpu=1e-4, random=True), parallelism=2,
                    name="aug")
    ds = ds.batch(16, name="b").prefetch(4, name="pf").repeat(None, name="r")
    return ds.build("amp")


class TestCacheGreedy:
    def test_picks_closest_to_root_that_fits(self, small_catalog, test_machine):
        model = model_of(amplifying_pipeline(small_catalog), test_machine)
        decision = plan_cache_greedy(model)
        # aug/batch are random-tainted; decode (6x bytes) fits 8 GB RAM.
        assert decision is not None
        assert decision.target == "dec"
        assert decision.materialized_bytes == pytest.approx(
            6 * small_catalog.total_bytes, rel=0.05
        )

    def test_falls_back_when_too_big(self, small_catalog, test_machine):
        model = model_of(amplifying_pipeline(small_catalog), test_machine)
        # Budget fits the 41 MB source but not the 247 MB decode output.
        budget = MemoryBudget(60e6, headroom_fraction=0.0)
        decision = plan_cache_greedy(model, budget)
        assert decision.target in ("src", "dec")
        assert decision.materialized_bytes <= 60e6

    def test_none_when_nothing_fits(self, small_catalog, test_machine):
        model = model_of(amplifying_pipeline(small_catalog), test_machine)
        assert plan_cache_greedy(model, MemoryBudget(1e3)) is None

    def test_none_when_everything_random(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("aug", cpu=1e-4, random=True), parallelism=2,
                 name="aug")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("rand")
        )
        model = model_of(pipe, test_machine)
        # Only the source itself remains cacheable.
        decision = plan_cache_greedy(model)
        assert decision.target == "src"

    def test_batch_output_cacheable_when_deterministic(
        self, small_catalog, test_machine
    ):
        model = model_of(
            amplifying_pipeline(small_catalog, random_tail=False), test_machine
        )
        decision = plan_cache_greedy(model)
        assert decision.target == "b"  # closest to root


class TestCacheExhaustive:
    def test_agrees_with_greedy_on_linear_pipeline(
        self, small_catalog, test_machine
    ):
        model = model_of(amplifying_pipeline(small_catalog), test_machine)
        greedy = plan_cache_greedy(model)
        best = plan_cache_exhaustive(model)
        assert best is not None
        assert best.target == greedy.target

    def test_reports_speedup_hint(self, small_catalog, test_machine):
        model = model_of(amplifying_pipeline(small_catalog), test_machine)
        best = plan_cache_exhaustive(model)
        assert best.expected_speedup_hint is None or best.expected_speedup_hint > 0


class TestPrefetchPlanner:
    def test_adds_root_prefetch_when_missing(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("w", cpu=1e-4), parallelism=4, name="m")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("nopf")
        )
        model = model_of(pipe, test_machine)
        decisions = plan_prefetch(model)
        targets = {d.target for d in decisions}
        assert "b" in targets  # root insert point is below repeat
        for d in decisions:
            assert d.buffer_size >= 2

    def test_respects_existing_prefetch(self, simple_pipeline, test_machine):
        model = model_of(simple_pipeline, test_machine)
        decisions = plan_prefetch(model)
        assert "batch" not in {d.target for d in decisions}

    def test_parallel_stage_gets_buffer(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("w", cpu=1e-4), parallelism=8, name="m")
            .shuffle(16, name="shuf")
            .batch(16, name="b")
            .prefetch(4, name="pf")
            .repeat(None, name="r")
            .build("par")
        )
        model = model_of(pipe, test_machine)
        decisions = plan_prefetch(model)
        by_target = {d.target: d for d in decisions}
        assert "m" in by_target
        assert by_target["m"].buffer_size >= 4  # ceil(parallelism/2)


class TestDiskPlanner:
    def test_fit_piecewise_envelope(self):
        xs = [1, 2, 4, 8]
        ys = [100.0, 190.0, 330.0, 400.0]
        segments = fit_piecewise(xs, ys)
        for x, y in zip(xs, ys):
            fitted = min(s * x + c for s, c in segments)
            assert fitted >= y - 1e-6  # concave majorant
        # Flat beyond the last point.
        assert min(s * 100 + c for s, c in segments) == pytest.approx(400.0)

    def test_fit_single_point(self):
        segments = fit_piecewise([4], [250.0])
        assert segments == [(0.0, 250.0)]

    def test_fit_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_piecewise([1, 2], [1.0])

    def test_benchmark_curve_monotone(self, small_catalog, test_machine):
        from repro.host.disk import DiskSpec

        spec = DiskSpec("d", curve=((1.0, 50e6), (4.0, 160e6), (8.0, 200e6)))
        machine = test_machine.with_disk(spec)
        pipe = from_tfrecords(small_catalog, name="src").repeat(None).build("p")
        curve = benchmark_source_curve(
            pipe, machine, parallelisms=(1, 2, 4, 8), duration=1.0, warmup=0.2
        )
        assert curve.bandwidths == sorted(curve.bandwidths)
        assert curve.max_bandwidth == pytest.approx(200e6, rel=0.1)
        assert curve.minimal_saturating_parallelism(0.9) <= 8

    def test_io_bound_throughput(self):
        # The paper's ResNet example: ~6.9 minibatches per 100 MB/s.
        bpm = 128 * 110e3
        assert io_bound_throughput(bpm, 100e6) == pytest.approx(7.1, rel=0.05)
        assert math.isinf(io_bound_throughput(0.0, 1.0))
