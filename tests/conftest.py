"""Shared fixtures: small catalogs, a fast test machine, tiny pipelines."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regenerate-golden",
        action="store_true",
        default=False,
        help=(
            "Recapture tests/golden/ from the reference engine instead "
            "of comparing against it. The regeneration run still "
            "asserts the vectorized engine matches the fresh capture."
        ),
    )


@pytest.fixture
def regenerate_golden(request) -> bool:
    """True when the suite was invoked with ``--regenerate-golden``."""
    return request.config.getoption("--regenerate-golden")

from repro.graph.builder import from_tfrecords
from repro.graph.udf import CostModel, UserFunction
from repro.host.disk import token_bucket
from repro.host.machine import Machine
from repro.io.filesystem import FileCatalog


@pytest.fixture
def small_catalog() -> FileCatalog:
    """16 files x 256 records x 10 KB (~41 MB)."""
    return FileCatalog(
        name="test",
        num_files=16,
        records_per_file=256.0,
        bytes_per_record=10e3,
        size_cv=0.1,
        seed=42,
    )


@pytest.fixture
def test_machine() -> Machine:
    """A small 8-core host with fast storage and mild overheads."""
    return Machine(
        name="test_host",
        cores=8,
        core_speed=1.0,
        memory_bytes=8e9,
        disk=token_bucket(2e9, name="fast"),
        iterator_overhead=10e-6,
        tracer_overhead=10e-6,
        oversubscription_penalty=0.05,
    )


def make_udf(
    name: str = "udf",
    cpu: float = 1e-4,
    size_ratio: float = 1.0,
    random: bool = False,
    internal: float = 1.0,
    fn=None,
) -> UserFunction:
    """Shorthand UDF constructor used across the suite."""
    return UserFunction(
        name,
        cost=CostModel(cpu_seconds=cpu, internal_parallelism=internal),
        size_ratio=size_ratio,
        accesses_seed=random,
        fn=fn,
    )


@pytest.fixture
def simple_pipeline(small_catalog):
    """src -> map -> batch -> prefetch -> repeat, parallelism 1."""
    return (
        from_tfrecords(small_catalog, parallelism=1, name="src")
        .map(make_udf("work", cpu=5e-4), parallelism=1, name="map_work")
        .batch(16, name="batch")
        .prefetch(4, name="prefetch")
        .repeat(None, name="repeat")
        .build("simple")
    )


@pytest.fixture
def single_epoch_pipeline(small_catalog):
    """A finite pipeline (no repeat) for end-of-stream tests."""
    return (
        from_tfrecords(small_catalog, parallelism=2, name="src")
        .map(make_udf("work", cpu=1e-5), parallelism=2, name="map_work")
        .batch(16, name="batch")
        .build("finite")
    )
