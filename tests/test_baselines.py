"""Tests for the NAIVE / HEURISTIC / AUTOTUNE / random-walk baselines."""

import math

import pytest

from repro.baselines.autotune import AutotuneTuner
from repro.baselines.heuristic import heuristic_config
from repro.baselines.naive import naive_config
from repro.baselines.random_walk import RandomWalkTuner
from repro.graph.datasets import PrefetchNode
from tests.test_core_lp import two_stage_pipeline
from tests.test_core_rates import model_of


class TestNaive:
    def test_resets_parallelism(self, small_catalog, test_machine):
        from repro.core.rewriter import set_parallelism

        pipe = set_parallelism(
            two_stage_pipeline(small_catalog), {"m_heavy": 8, "src": 4}
        )
        naive = naive_config(pipe)
        assert all(n.effective_parallelism == 1 for n in naive.tunables())

    def test_keep_prefetch_flag(self, small_catalog):
        pipe = two_stage_pipeline(small_catalog)
        with_pf = naive_config(pipe, keep_prefetch=True)
        assert any(isinstance(n, PrefetchNode) for n in with_pf.iter_nodes())
        without = naive_config(pipe, keep_prefetch=False)
        assert not any(isinstance(n, PrefetchNode) for n in without.iter_nodes())


class TestHeuristic:
    def test_sets_everything_to_cores(self, small_catalog, test_machine):
        tuned = heuristic_config(two_stage_pipeline(small_catalog), test_machine)
        assert all(
            n.effective_parallelism == test_machine.cores
            for n in tuned.tunables()
        )


class TestRandomWalk:
    def test_deterministic_for_seed(self, small_catalog):
        pipe = two_stage_pipeline(small_catalog)
        a, b = RandomWalkTuner(seed=3), RandomWalkTuner(seed=3)
        pa, pb = pipe, pipe
        for _ in range(5):
            pa = a.step(pa)
            pb = b.step(pb)
        assert a.history == b.history

    def test_increments_one_node_per_step(self, small_catalog):
        pipe = two_stage_pipeline(small_catalog)
        tuner = RandomWalkTuner(seed=1)
        stepped = tuner.step(pipe)
        before = sum(n.effective_parallelism for n in pipe.tunables())
        after = sum(n.effective_parallelism for n in stepped.tunables())
        assert after == before + 1

    def test_respects_budget(self, small_catalog):
        pipe = two_stage_pipeline(small_catalog)
        tuner = RandomWalkTuner(seed=1)
        for _ in range(20):
            pipe = tuner.step(pipe, core_budget=6)
        assert sum(n.effective_parallelism for n in pipe.tunables()) <= 6


class TestAutotune:
    def test_prediction_unbounded_with_parallelism(
        self, small_catalog, test_machine
    ):
        """The Fig. 7 property: AUTOTUNE's modelled rate can exceed any
        resource bound when parallelism grows."""
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        tuner = AutotuneTuner(test_machine)
        modest = tuner.predict_throughput(model)
        huge_plan = {r.name: 10_000 for r in model.cpu_nodes()}
        inflated = tuner.predict_throughput(model, huge_plan)
        # Far beyond what 8 cores can actually deliver.
        cpu_bound = test_machine.cores / (16 * (1e-4 + 1e-3))
        assert inflated > cpu_bound * 50
        assert inflated > modest

    def test_hill_climb_allocates_to_heavy_op(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        result = AutotuneTuner(test_machine).tune(model)
        assert result.plan["m_heavy"] > result.plan["m_cheap"]

    def test_budget_factor_limits_total(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        result = AutotuneTuner(test_machine, budget_factor=1.0).tune(model)
        assert sum(result.plan.values()) <= test_machine.cores

    def test_io_parallelism_default_untouched(self, small_catalog, test_machine):
        """The §5.4 ResNetLinear pitfall: source parallelism left at its
        current (naive) value unless explicitly granted."""
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        result = AutotuneTuner(test_machine).tune(model)
        assert result.pipeline.node("src").effective_parallelism == 2

    def test_io_parallelism_override(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        result = AutotuneTuner(test_machine, io_parallelism=10).tune(model)
        assert result.pipeline.node("src").effective_parallelism == 10

    def test_rejects_bad_budget(self, test_machine):
        with pytest.raises(ValueError):
            AutotuneTuner(test_machine, budget_factor=0.0)
