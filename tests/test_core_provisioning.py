"""Tests for the provisioning extension (inverse LP)."""

import pytest

from repro.core.provisioning import (
    ProvisioningError,
    provision_for_throughput,
)
from repro.core.lp import solve_allocation
from tests.test_core_lp import two_stage_pipeline
from tests.test_core_rates import model_of


class TestProvisioning:
    def test_cores_scale_linearly_with_target(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        p10 = provision_for_throughput(model, 10.0)
        p20 = provision_for_throughput(model, 20.0)
        assert p20.cores == pytest.approx(2 * p10.cores, rel=1e-6)
        assert p20.disk_bandwidth == pytest.approx(
            2 * p10.disk_bandwidth, rel=1e-6
        )

    def test_round_trip_with_lp(self, small_catalog, test_machine):
        """Provisioning for the LP's optimum needs ~the machine's cores."""
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        lp = solve_allocation(model)
        plan = provision_for_throughput(model, lp.predicted_throughput)
        assert plan.cores == pytest.approx(test_machine.cores, rel=0.05)

    def test_bandwidth_matches_byte_accounting(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        plan = provision_for_throughput(model, 5.0)
        assert plan.disk_bandwidth == pytest.approx(
            5.0 * model.bytes_per_minibatch, rel=1e-6
        )
        assert plan.io_streams >= 0

    def test_infeasible_bandwidth_raises(self, small_catalog, test_machine):
        from repro.host.disk import token_bucket

        slow = test_machine.with_disk(token_bucket(1e6))
        model = model_of(two_stage_pipeline(small_catalog), slow)
        with pytest.raises(ProvisioningError, match="tops out"):
            provision_for_throughput(model, 1e6)

    def test_cache_removes_disk_and_upstream_cores(
        self, small_catalog, test_machine
    ):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        plain = provision_for_throughput(model, 10.0)
        cached = provision_for_throughput(model, 10.0, use_cache=True)
        assert cached.disk_bandwidth == 0.0
        assert cached.cores <= plain.cores
        assert cached.cache_bytes > 0
        assert cached.cache_target is not None

    def test_sequential_cap_flagged(self, small_catalog, test_machine):
        from repro.graph.builder import from_tfrecords
        from tests.conftest import make_udf

        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .shuffle(16, cpu_seconds_per_element=1e-3, name="shuf")
            .batch(16, name="b")
            .prefetch(4, name="pf")
            .repeat(None, name="r")
            .build("seq")
        )
        model = model_of(pipe, test_machine)
        # Sequential shuffle caps at ~1/(16ms) per minibatch ≈ 62 mb/s;
        # asking for more is flagged as infeasible-without-restructuring.
        plan = provision_for_throughput(model, 1000.0)
        assert not plan.feasible_sequential

    def test_rejects_nonpositive_target(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        with pytest.raises(ProvisioningError):
            provision_for_throughput(model, 0.0)

    def test_rounded_cores(self, small_catalog, test_machine):
        model = model_of(two_stage_pipeline(small_catalog), test_machine)
        plan = provision_for_throughput(model, 10.0)
        assert plan.cores_rounded >= plan.cores
        assert plan.cores_rounded - plan.cores < 1.0
