"""Shared harness for the engine-equivalence suites.

The vectorized engine's contract is *byte identity*: for any pipeline
and any :class:`~repro.runtime.executor.RunConfig`, the trace it emits
must serialize to exactly the same JSON string as the reference
(scalar generator) engine's, and every observable counter — queue
telemetry, consumer results, cache/disk byte totals — must be equal,
not approximately equal. This module holds the pieces both suites
share:

* :func:`fingerprint` — every observable of one run, as a
  JSON-compatible dict (engine-internal telemetry such as
  ``events_processed`` is deliberately excluded; it is sampled, not
  exact, on the vectorized engine).
* :data:`GOLDEN_CASES` — the seeded corpus of single- and multi-source
  graphs whose reference fingerprints are checked into
  ``tests/golden/``.
* :func:`dump_mismatch` — persist both fingerprints under
  ``$REPRO_DIFF_DUMP_DIR`` when a comparison fails, so a red CI run
  leaves artifacts to diff instead of a truncated assertion message.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.core.trace import PipelineTrace
from repro.graph.builder import (
    from_tfrecords,
    interleave_datasets,
    zip_datasets,
)
from repro.graph.udf import CostModel, UserFunction
from repro.host.machine import setup_a
from repro.io.filesystem import FileCatalog
from repro.runtime.executor import ModelConsumer, RunConfig, run_pipeline

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

DUMP_DIR = os.environ.get("REPRO_DIFF_DUMP_DIR", "diff_failures")


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def fingerprint(pipeline, config: RunConfig) -> dict:
    """Every observable of one simulated run, JSON-compatible.

    The trace is kept as its serialized *string* so equality means
    byte-for-byte identity of the artifact downstream consumers read,
    not merely numeric closeness after a parse.
    """
    res = run_pipeline(pipeline, setup_a(), config)
    return {
        "trace": PipelineTrace.from_run(res).to_json(),
        "cumulative_stats": {
            k: v.to_dict() for k, v in res.cumulative_stats.items()
        },
        "queue_stats": res.queue_stats,
        "completed": res.completed,
        "minibatches": res.minibatches,
        "measured_seconds": res.measured_seconds,
        "throughput": res.throughput,
        "next_latency": res.next_latency,
        "cpu_utilization": res.cpu_utilization,
        "disk_bytes": res.disk_bytes,
        "cache_bytes": res.cache_bytes,
    }


def run_fingerprint(case, engine: str) -> dict:
    """Build the case's pipeline fresh and fingerprint one run."""
    _name, build, cfg_kwargs = case
    config = RunConfig(engine=engine, **cfg_kwargs)
    return fingerprint(build(), config)


def dump_mismatch(name: str, reference: dict, candidate: dict) -> str:
    """Persist both sides of a failed comparison; return the message."""
    os.makedirs(DUMP_DIR, exist_ok=True)
    ref_path = os.path.join(DUMP_DIR, f"golden_{name}_reference.json")
    got_path = os.path.join(DUMP_DIR, f"golden_{name}_candidate.json")
    with open(ref_path, "w", encoding="utf-8") as f:
        json.dump(reference, f, indent=1, sort_keys=True)
    with open(got_path, "w", encoding="utf-8") as f:
        json.dump(candidate, f, indent=1, sort_keys=True)
    differing = sorted(
        k for k in reference
        if k in candidate and reference[k] != candidate[k]
    )
    missing = sorted(set(reference) ^ set(candidate))
    return (
        f"{name}: engines diverge (differing keys: {differing}, "
        f"missing keys: {missing}); both fingerprints dumped to "
        f"{ref_path} and {got_path}"
    )


# ----------------------------------------------------------------------
# The corpus graphs. Every builder is a zero-argument closure over a
# seeded FileCatalog, so a case always constructs the identical graph.
# ----------------------------------------------------------------------
def _source(seed, name="src", par=2, files=8, rpf=160.0, bpr=4096.0,
            read_cpu=1e-5):
    cat = FileCatalog(name=f"g{seed}_{name}", num_files=files,
                      records_per_file=rpf, bytes_per_record=bpr,
                      seed=seed)
    return from_tfrecords(cat, parallelism=par, name=name,
                          read_cpu_seconds_per_record=read_cpu)


def _map_chain(seed):
    ds = _source(seed)
    ds = ds.map(UserFunction("u0", cost=CostModel(cpu_seconds=8e-4)),
                parallelism=2, name="m0")
    ds = ds.map(UserFunction("u1", cost=CostModel(cpu_seconds=3e-4,
                                                  internal_parallelism=2)),
                parallelism=3, name="m1")
    return ds.prefetch(4, name="pf").build(f"map_chain_{seed}",
                                           validate=False)


def _filter_shuffle(seed):
    ds = _source(seed, par=3)
    ds = ds.filter(UserFunction("f", cost=CostModel(cpu_seconds=2e-4),
                                examples_ratio=0.7), name="flt")
    ds = ds.shuffle(64, name="shf").batch(4, name="bat")
    return ds.repeat(None, name="rep").build(f"filter_shuffle_{seed}",
                                             validate=False)


def _take(seed):
    ds = _source(seed).map(
        UserFunction("u", cost=CostModel(cpu_seconds=5e-4)),
        parallelism=2, name="m")
    return ds.take(300, name="tk").build(f"take_{seed}", validate=False)


def _zip(seed):
    a = _source(seed, name="za", par=2, files=6)
    b = _source(seed + 100, name="zb", par=2, files=6, bpr=1024.0)
    ds = zip_datasets([a, b], name="zip")
    ds = ds.map(UserFunction("u", cost=CostModel(cpu_seconds=4e-4)),
                parallelism=2, name="m")
    return ds.prefetch(2, name="pf").build(f"zip_{seed}", validate=False)


def _interleave(seed):
    a = _source(seed, name="ia", par=1, files=5)
    b = _source(seed + 7, name="ib", par=2, files=5, rpf=120.0)
    c = _source(seed + 13, name="ic", par=1, files=4, bpr=2048.0)
    ds = interleave_datasets([a, b, c], name="il")
    ds = ds.batch(8, name="bat").prefetch(4, name="pf")
    return ds.build(f"interleave_{seed}", validate=False)


def cache_heavy(seed=0, read_cpu=1e-5, map_cpu=1.5e-3, par=4, batch=8,
                files=16, rpf=300.0):
    """A populate-then-serve cache pipeline (the tentpole's hot shape)."""
    cat = FileCatalog(name=f"ch{seed}", num_files=files,
                      records_per_file=rpf, bytes_per_record=8192.0,
                      seed=seed)
    ds = from_tfrecords(cat, parallelism=par, name="src",
                        read_cpu_seconds_per_record=read_cpu)
    udf = UserFunction("udf", cost=CostModel(cpu_seconds=map_cpu))
    ds = ds.map(udf, parallelism=par, name="map0").cache(name="cachenode")
    ds = ds.batch(batch, name="batchnode").prefetch(4, name="prefetchnode")
    return ds.repeat(None, name="repeatnode").build(
        f"cache_heavy_{seed}", validate=False)


#: (case name, zero-arg pipeline builder, RunConfig kwargs). The
#: corpus spans every node type the engines implement, single- and
#: multi-source graphs, warmup windows, model consumers, explicit
#: epochs/granularity, and sub-chunk trace windows.
GOLDEN_CASES = [
    ("map_chain_0", lambda: _map_chain(0),
     dict(duration=2.0, warmup=0.5)),
    ("map_chain_1", lambda: _map_chain(1),
     dict(duration=1.5, warmup=0.0)),
    ("map_chain_2", lambda: _map_chain(2),
     dict(duration=2.0, warmup=0.5, consumer=ModelConsumer(2e-4))),
    ("map_chain_3", lambda: _map_chain(3),
     dict(duration=2.0, warmup=0.5, granularity=7)),
    ("filter_shuffle_0", lambda: _filter_shuffle(0),
     dict(duration=2.0, warmup=0.5)),
    ("filter_shuffle_1", lambda: _filter_shuffle(1),
     dict(duration=1.5, warmup=1.4)),
    ("filter_shuffle_2", lambda: _filter_shuffle(2),
     dict(duration=0.05, warmup=0.0)),
    ("take_0", lambda: _take(0), dict(duration=2.0, warmup=0.5)),
    ("take_1", lambda: _take(1), dict(duration=2.0, warmup=0.0,
                                      consumer=ModelConsumer(1e-4))),
    ("zip_0", lambda: _zip(0), dict(duration=2.0, warmup=0.5)),
    ("zip_1", lambda: _zip(1), dict(duration=1.5, warmup=0.0)),
    ("zip_2", lambda: _zip(2), dict(duration=2.0, warmup=0.5,
                                    granularity=5)),
    ("interleave_0", lambda: _interleave(0),
     dict(duration=2.0, warmup=0.5)),
    ("interleave_1", lambda: _interleave(1),
     dict(duration=1.5, warmup=0.0)),
    ("interleave_2", lambda: _interleave(2),
     dict(duration=2.0, warmup=0.5, consumer=ModelConsumer(3e-4))),
    ("cache_heavy_0", lambda: cache_heavy(0),
     dict(duration=3.0, warmup=0.5)),
    ("cache_heavy_1", lambda: cache_heavy(1, read_cpu=0.0, map_cpu=5e-4),
     dict(duration=3.0, warmup=0.5)),
    ("cache_heavy_2", lambda: cache_heavy(2, par=2, batch=4),
     dict(duration=2.0, warmup=0.0, epochs=3.0)),
    ("cache_heavy_3", lambda: cache_heavy(3),
     dict(duration=2.0, warmup=0.5, granularity=7)),
    ("cache_heavy_4", lambda: cache_heavy(4, files=8, rpf=150.0),
     dict(duration=3.0, warmup=2.9)),
]


def golden_path(name: str) -> pathlib.Path:
    """Checked-in reference fingerprint file for one corpus case."""
    return GOLDEN_DIR / f"{name}.json"


def load_golden(name: str) -> dict:
    """Load one case's checked-in reference fingerprint."""
    with open(golden_path(name), encoding="utf-8") as f:
        return json.load(f)["fingerprint"]


def write_golden(name: str, fp: dict) -> None:
    """(Re)write one case's reference fingerprint."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    payload = {
        "case": name,
        "engine": "reference",
        "fingerprint": fp,
    }
    with open(golden_path(name), "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
