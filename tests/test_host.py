"""Tests for machines, disk specs, and memory budgets."""

import pytest

from repro.host.disk import (
    DiskSpec,
    cloud_storage,
    hdd_st4000,
    nvme_p3600,
    token_bucket,
)
from repro.host.machine import Machine, setup_a, setup_b, setup_c
from repro.host.memory import MemoryBudget, MemoryError_


class TestDiskSpec:
    def test_flat_token_bucket(self):
        spec = token_bucket(100e6)
        assert spec.bandwidth(1) == 100e6
        assert spec.bandwidth(64) == 100e6
        assert spec.max_bandwidth == 100e6

    def test_interpolation(self):
        spec = DiskSpec("d", curve=((1.0, 100.0), (3.0, 300.0)))
        assert spec.bandwidth(2.0) == pytest.approx(200.0)
        assert spec.bandwidth(10.0) == 300.0  # flat beyond last point
        assert spec.bandwidth(0) == 0.0

    def test_rejects_decreasing_curve(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            DiskSpec("d", curve=((1.0, 200.0), (2.0, 100.0)))

    def test_rejects_convex_curve(self):
        with pytest.raises(ValueError, match="concave"):
            DiskSpec("d", curve=((1.0, 10.0), (2.0, 11.0), (3.0, 50.0)))

    def test_saturation_parallelism(self):
        spec = DiskSpec("d", curve=((1.0, 100.0), (4.0, 400.0), (8.0, 440.0)))
        sat = spec.saturation_parallelism(fraction=0.9)
        # 90% of 440 = 396 is reached just before 4 streams.
        assert 3.5 <= sat <= 4.5

    def test_segments_cover_curve(self):
        spec = DiskSpec("d", curve=((1.0, 100.0), (4.0, 400.0), (8.0, 440.0)))
        segs = spec.segments()
        for streams in (1.0, 2.0, 4.0, 6.0, 8.0, 20.0):
            fitted = min(s * streams + c for s, c in segs)
            assert fitted == pytest.approx(spec.bandwidth(streams), rel=1e-6)

    def test_round_trip(self):
        spec = cloud_storage()
        restored = DiskSpec.from_dict(spec.to_dict())
        assert restored.curve == spec.curve
        assert restored.read_latency == spec.read_latency

    def test_presets_ordering(self):
        # NVMe >> HDD; cloud needs many streams to saturate.
        assert nvme_p3600().max_bandwidth > 5 * hdd_st4000().max_bandwidth
        cloud = cloud_storage()
        assert cloud.bandwidth(1) < cloud.max_bandwidth / 5


class TestMachine:
    def test_presets_match_paper(self):
        a, b, c = setup_a(), setup_b(), setup_c()
        assert a.cores == 16
        assert b.cores == 32
        assert c.cores == 96
        assert c.memory_bytes == pytest.approx(300e9)
        # Setup B's per-core speed is lower than A's (§5.1).
        assert b.core_speed < a.core_speed

    def test_with_helpers_do_not_mutate(self):
        a = setup_a()
        b = a.with_cores(48)
        assert a.cores == 16 and b.cores == 48
        d = a.with_disk(token_bucket(1e6))
        assert d.disk.max_bandwidth == 1e6 and a.disk.max_bandwidth != 1e6
        m = a.with_memory(1e9)
        assert m.memory_bytes == 1e9

    def test_cpu_seconds_scaling(self):
        m = Machine("m", cores=4, core_speed=0.5)
        assert m.cpu_seconds(1.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine("m", cores=0)
        with pytest.raises(ValueError):
            Machine("m", cores=1, core_speed=0.0)
        with pytest.raises(ValueError):
            Machine("m", cores=1, memory_bytes=-1.0)


class TestMemoryBudget:
    def test_reserve_and_release(self):
        budget = MemoryBudget(100.0, headroom_fraction=0.0)
        budget.reserve("a", 60.0)
        assert budget.available_bytes == pytest.approx(40.0)
        assert budget.release("a") == 60.0
        assert budget.available_bytes == pytest.approx(100.0)

    def test_headroom_respected(self):
        budget = MemoryBudget(100.0, headroom_fraction=0.2)
        assert budget.usable_bytes == pytest.approx(80.0)
        assert not budget.fits(90.0)
        assert budget.fits(80.0)

    def test_over_reservation_raises(self):
        budget = MemoryBudget(100.0, headroom_fraction=0.0)
        budget.reserve("a", 80.0)
        with pytest.raises(MemoryError_, match="exceeds"):
            budget.reserve("b", 30.0)

    def test_duplicate_key_raises(self):
        budget = MemoryBudget(100.0)
        budget.reserve("a", 10.0)
        with pytest.raises(MemoryError_, match="already"):
            budget.reserve("a", 10.0)

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            MemoryBudget(10.0).release("ghost")
