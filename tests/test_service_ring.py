"""Property tests for the consistent-hash ring.

The ring's whole value is a handful of invariants, so they are tested
as *properties* (hypothesis) rather than examples:

* placement is a pure function of the current host set — deterministic
  across processes and independent of insertion order;
* membership churn is O(K/N): removing a host moves exactly the keys it
  owned (survivors' keys never move), adding a host moves keys only
  *onto* the new host, and the moved fraction is bounded near the fair
  share 1/N;
* structurally identical signatures are always co-located (affinity is
  placement determinism applied twice).
"""

import hashlib
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.service import HashRing, default_host_ids
from repro.service.ring import DEFAULT_VNODES

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: host-id strategy: short printable ids, unique within one example
hosts_strategy = st.lists(
    st.text(
        alphabet=st.characters(
            whitelist_categories=("L", "N"), max_codepoint=0x2FF),
        min_size=1, max_size=12,
    ),
    min_size=2, max_size=8, unique=True,
)


def synthetic_keys(count: int) -> list:
    """Deterministic digest-like keys (what real signatures look like)."""
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest()
            for i in range(count)]


class TestPlacementDeterminism:
    @given(hosts=hosts_strategy, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_insertion_order_never_changes_placement(self, hosts, data):
        keys = synthetic_keys(64)
        ring = HashRing(hosts)
        shuffled = data.draw(st.permutations(hosts))
        assert HashRing(shuffled).placement(keys) == ring.placement(keys)

    @given(hosts=hosts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_departed_hosts_leave_no_trace(self, hosts):
        """A ring that saw hosts come and go places exactly like a
        fresh ring built from the final membership."""
        keys = synthetic_keys(64)
        churned = HashRing(hosts)
        churned.add("transient-host")
        churned.remove("transient-host")
        churned.remove(hosts[0])
        churned.add(hosts[0])
        assert churned.placement(keys) == HashRing(hosts).placement(keys)

    def test_placement_is_identical_across_processes(self):
        """The cross-process contract behind warm restarts: a separate
        interpreter computes byte-identical placement (no reliance on
        Python's process-seeded hash())."""
        keys = synthetic_keys(32)
        local = HashRing(default_host_ids(5)).placement(keys)
        script = textwrap.dedent("""
            import hashlib, json, sys
            from repro.service import HashRing, default_host_ids
            keys = [hashlib.sha256(f"key-{i}".encode()).hexdigest()
                    for i in range(32)]
            print(json.dumps(HashRing(default_host_ids(5)).placement(keys),
                             sort_keys=True))
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"  # prove hash() isn't involved
        out = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        import json
        assert json.loads(out) == local


class TestMembershipChurn:
    @given(hosts=hosts_strategy, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_remove_moves_only_the_departed_hosts_keys(self, hosts, data):
        """The exact invariant under the K/N bound: survivors' keys
        NEVER move on a leave; only the departed host's keys re-home."""
        keys = synthetic_keys(128)
        ring = HashRing(hosts)
        before = ring.placement(keys)
        departed = data.draw(st.sampled_from(hosts))
        ring.remove(departed)
        after = ring.placement(keys)
        for key in keys:
            if before[key] != departed:
                assert after[key] == before[key]
            else:
                assert after[key] != departed

    @given(hosts=hosts_strategy, new_host=st.text(min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_join_moves_keys_only_onto_the_new_host(self, hosts, new_host):
        keys = synthetic_keys(128)
        if new_host in hosts:
            return
        ring = HashRing(hosts)
        before = ring.placement(keys)
        ring.add(new_host)
        after = ring.placement(keys)
        for key in keys:
            if after[key] != before[key]:
                assert after[key] == new_host

    @pytest.mark.parametrize("num_hosts", [2, 3, 5, 8, 12])
    def test_leave_movement_is_near_the_fair_share(self, num_hosts):
        """Acceptance: a leave moves ~K/N of K keys, not O(K). With 64
        vnodes per host the per-host share concentrates around 1/N; 3x
        the fair share (plus an absolute floor for tiny N·K products)
        is far below the modulo scheme's (N-1)/N reshuffle."""
        keys = synthetic_keys(2000)
        ring = HashRing(default_host_ids(num_hosts))
        before = ring.placement(keys)
        worst = 0
        for host in ring.hosts:
            survivor = ring.copy()
            survivor.remove(host)
            after = survivor.placement(keys)
            moved = sum(1 for k in keys if after[k] != before[k])
            # exactly the departed host's keys move
            assert moved == sum(1 for k in keys if before[k] == host)
            worst = max(worst, moved)
        fair = len(keys) / num_hosts
        assert worst <= 3.0 * fair + 16
        # and nothing like the modulo scheme's near-total reshuffle
        # (at N=2 the fair share IS half the keys, so only N>=3 can
        # distinguish consistent hashing from rehash-the-world)
        if num_hosts >= 3:
            assert worst < len(keys) / 2

    @given(hosts=hosts_strategy)
    @settings(max_examples=30, deadline=None)
    def test_every_host_owns_something_eventually(self, hosts):
        """64 vnodes/host keep the ring from starving any member: over
        enough keys every host owns a non-empty share."""
        ring = HashRing(hosts)
        distribution = ring.distribution(synthetic_keys(256 * len(hosts)))
        assert set(distribution) == set(ring.hosts)
        assert all(count > 0 for count in distribution.values())


class TestAffinity:
    @given(st.text(min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_identical_keys_always_colocate(self, key):
        ring = HashRing(default_host_ids(4))
        assert ring.host_for(key) == ring.host_for(key)
        assert ring.host_for(key) in ring.hosts

    def test_keys_and_vnodes_are_namespaced(self):
        """A key that spells a vnode token must not collide with it."""
        ring = HashRing(["h1", "h2"])
        # would alias if keys and vnode tokens shared a hash namespace
        assert ring.host_for("vnode:h1#0") in ("h1", "h2")


class TestRingApi:
    def test_validation(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)
        with pytest.raises(ValueError, match="non-empty"):
            HashRing([""])
        with pytest.raises(ValueError, match="already"):
            HashRing(["a", "a"])
        with pytest.raises(KeyError, match="not on the ring"):
            HashRing(["a"]).remove("b")
        with pytest.raises(LookupError, match="no hosts"):
            HashRing().host_for("k")
        with pytest.raises(ValueError, match="num_hosts"):
            default_host_ids(0)

    def test_membership_introspection(self):
        ring = HashRing(["b", "a"])
        assert ring.hosts == ("a", "b")
        assert len(ring) == 2 and "a" in ring and "c" not in ring
        assert "vnodes" in repr(ring)

    def test_copy_is_independent(self):
        ring = HashRing(["a", "b"], vnodes=16)
        clone = ring.copy()
        clone.remove("a")
        assert "a" in ring and "a" not in clone
        assert clone.vnodes == 16

    def test_default_vnodes(self):
        assert HashRing(["a"]).vnodes == DEFAULT_VNODES
