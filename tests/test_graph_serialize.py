"""Round-trip tests for pipeline serialization (the trace program)."""

import json

import pytest

from repro.graph.builder import from_tfrecords
from repro.graph.serialize import (
    pipeline_from_dict,
    pipeline_from_json,
    pipeline_to_dict,
    pipeline_to_json,
)
from tests.conftest import make_udf


def build_full(catalog):
    """A pipeline touching every node kind."""
    return (
        from_tfrecords(catalog, parallelism=3, name="src",
                       read_cpu_seconds_per_record=1e-5)
        .map(make_udf("decode", cpu=1e-3, size_ratio=4.0), parallelism=2,
             name="decode")
        .filter(make_udf("keep"), keep_fraction=0.9, name="filt")
        .map(make_udf("pack"), sequential=True, name="pack")
        .shuffle(64, cpu_seconds_per_element=1e-6, seed=7, name="shuf")
        .batch(8, cpu_seconds_per_example=1e-7, name="batch")
        .take(100, name="take")
        .cache(name="cache")
        .prefetch(5, name="pf")
        .repeat(3, name="rep")
        .build("full")
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self, small_catalog):
        pipe = build_full(small_catalog)
        restored = pipeline_from_dict(pipeline_to_dict(pipe))
        assert [n.name for n in restored.topological_order()] == [
            n.name for n in pipe.topological_order()
        ]
        assert [n.kind for n in restored.topological_order()] == [
            n.kind for n in pipe.topological_order()
        ]

    def test_round_trip_preserves_attrs(self, small_catalog):
        pipe = build_full(small_catalog)
        restored = pipeline_from_dict(pipeline_to_dict(pipe))
        assert restored.node("src").parallelism == 3
        assert restored.node("src").catalog.num_files == small_catalog.num_files
        assert restored.node("decode").udf.size_ratio == 4.0
        assert restored.node("filt").keep_fraction == 0.9
        assert restored.node("pack").sequential
        assert restored.node("shuf").buffer_size == 64
        assert restored.node("shuf").seed == 7
        assert restored.node("batch").batch_size == 8
        assert restored.node("take").count == 100
        assert restored.node("pf").buffer_size == 5
        assert restored.node("rep").count == 3

    def test_json_round_trip(self, small_catalog):
        pipe = build_full(small_catalog)
        text = pipeline_to_json(pipe)
        json.loads(text)  # valid JSON
        restored = pipeline_from_json(text)
        assert restored.name == "full"

    def test_double_round_trip_is_stable(self, small_catalog):
        pipe = build_full(small_catalog)
        once = pipeline_to_json(pipe)
        twice = pipeline_to_json(pipeline_from_json(once))
        assert once == twice

    def test_rejects_unknown_version(self, small_catalog):
        data = pipeline_to_dict(build_full(small_catalog))
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            pipeline_from_dict(data)

    def test_rejects_unknown_kind(self, small_catalog):
        data = pipeline_to_dict(build_full(small_catalog))
        data["nodes"][0]["kind"] = "teleport"
        with pytest.raises(ValueError, match="unknown node kind"):
            pipeline_from_dict(data)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no nodes"):
            pipeline_from_dict({"version": 1, "nodes": []})

    def test_shuffle_and_repeat_round_trip(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .shuffle_and_repeat(32, name="snr")
            .build("g")
        )
        restored = pipeline_from_dict(pipeline_to_dict(pipe))
        assert restored.node("snr").kind == "shuffle_and_repeat"
