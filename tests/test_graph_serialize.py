"""Round-trip tests for pipeline serialization (the trace program)."""

import json

import pytest

from repro.graph.builder import from_tfrecords
from repro.graph.serialize import (
    pipeline_from_dict,
    pipeline_from_json,
    pipeline_to_dict,
    pipeline_to_json,
)
from tests.conftest import make_udf


def build_full(catalog):
    """A pipeline touching every node kind."""
    return (
        from_tfrecords(catalog, parallelism=3, name="src",
                       read_cpu_seconds_per_record=1e-5)
        .map(make_udf("decode", cpu=1e-3, size_ratio=4.0), parallelism=2,
             name="decode")
        .filter(make_udf("keep"), keep_fraction=0.9, name="filt")
        .map(make_udf("pack"), sequential=True, name="pack")
        .shuffle(64, cpu_seconds_per_element=1e-6, seed=7, name="shuf")
        .batch(8, cpu_seconds_per_example=1e-7, name="batch")
        .take(100, name="take")
        .cache(name="cache")
        .prefetch(5, name="pf")
        .repeat(3, name="rep")
        .build("full")
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self, small_catalog):
        pipe = build_full(small_catalog)
        restored = pipeline_from_dict(pipeline_to_dict(pipe))
        assert [n.name for n in restored.topological_order()] == [
            n.name for n in pipe.topological_order()
        ]
        assert [n.kind for n in restored.topological_order()] == [
            n.kind for n in pipe.topological_order()
        ]

    def test_round_trip_preserves_attrs(self, small_catalog):
        pipe = build_full(small_catalog)
        restored = pipeline_from_dict(pipeline_to_dict(pipe))
        assert restored.node("src").parallelism == 3
        assert restored.node("src").catalog.num_files == small_catalog.num_files
        assert restored.node("decode").udf.size_ratio == 4.0
        assert restored.node("filt").keep_fraction == 0.9
        assert restored.node("pack").sequential
        assert restored.node("shuf").buffer_size == 64
        assert restored.node("shuf").seed == 7
        assert restored.node("batch").batch_size == 8
        assert restored.node("take").count == 100
        assert restored.node("pf").buffer_size == 5
        assert restored.node("rep").count == 3

    def test_json_round_trip(self, small_catalog):
        pipe = build_full(small_catalog)
        text = pipeline_to_json(pipe)
        json.loads(text)  # valid JSON
        restored = pipeline_from_json(text)
        assert restored.name == "full"

    def test_double_round_trip_is_stable(self, small_catalog):
        pipe = build_full(small_catalog)
        once = pipeline_to_json(pipe)
        twice = pipeline_to_json(pipeline_from_json(once))
        assert once == twice

    def test_rejects_unknown_version(self, small_catalog):
        data = pipeline_to_dict(build_full(small_catalog))
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            pipeline_from_dict(data)

    def test_rejects_unknown_kind(self, small_catalog):
        data = pipeline_to_dict(build_full(small_catalog))
        data["nodes"][0]["kind"] = "teleport"
        with pytest.raises(ValueError, match="unknown node kind"):
            pipeline_from_dict(data)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no nodes"):
            pipeline_from_dict({"version": 1, "nodes": []})

    def test_shuffle_and_repeat_round_trip(self, small_catalog):
        pipe = (
            from_tfrecords(small_catalog, name="src")
            .shuffle_and_repeat(32, name="snr")
            .build("g")
        )
        restored = pipeline_from_dict(pipeline_to_dict(pipe))
        assert restored.node("snr").kind == "shuffle_and_repeat"


class TestRewrittenRoundTrip:
    """Optimizer-rewritten pipelines must survive serialization — the
    batch service ships rewritten programs back from worker processes."""

    def base(self, catalog):
        return (
            from_tfrecords(catalog, parallelism=1, name="src")
            .map(make_udf("decode", cpu=1e-3), parallelism=1, name="decode")
            .batch(16, name="batch")
            .repeat(None, name="rep")
            .build("rewrite_me")
        )

    def test_set_parallelism_round_trip(self, small_catalog):
        from repro.core.rewriter import set_parallelism

        pipe = set_parallelism(self.base(small_catalog),
                               {"src": 4, "decode": 8})
        restored = pipeline_from_json(pipeline_to_json(pipe))
        assert restored.node("src").parallelism == 4
        assert restored.node("decode").parallelism == 8

    def test_insert_prefetch_round_trip(self, small_catalog):
        from repro.core.rewriter import insert_prefetch_after

        pipe = insert_prefetch_after(self.base(small_catalog), "batch", 12,
                                     name="pf_batch")
        restored = pipeline_from_json(pipeline_to_json(pipe))
        assert restored.node("pf_batch").kind == "prefetch"
        assert restored.node("pf_batch").buffer_size == 12
        assert restored.parent_of("batch").name == "pf_batch"

    def test_insert_cache_round_trip(self, small_catalog):
        from repro.core.rewriter import insert_cache_after

        pipe = insert_cache_after(self.base(small_catalog), "decode")
        restored = pipeline_from_json(pipeline_to_json(pipe))
        assert restored.node("cache_decode").kind == "cache"
        assert restored.parent_of("decode").name == "cache_decode"

    def test_all_rewrites_stacked_round_trip(self, small_catalog):
        """The full optimizer sequence, then a stable double round-trip."""
        from repro.core.rewriter import (
            insert_cache_after,
            insert_prefetch_after,
            set_parallelism,
        )

        pipe = self.base(small_catalog)
        pipe = set_parallelism(pipe, {"src": 2, "decode": 6})
        pipe = insert_prefetch_after(pipe, "batch", 8, name="pf0")
        pipe = insert_cache_after(pipe, "decode")
        once = pipeline_to_json(pipe)
        restored = pipeline_from_json(once)
        assert pipeline_to_json(restored) == once
        assert [n.name for n in restored.topological_order()] == [
            n.name for n in pipe.topological_order()
        ]

    def test_optimizer_output_round_trips(self, small_catalog, test_machine):
        """End-to-end: a real Plumber.optimize result keeps its structure
        and its structural signature across the serialized hop."""
        from repro.core.plumber import Plumber
        from repro.graph.signature import structural_signature

        plumber = Plumber(test_machine, trace_duration=1.0, trace_warmup=0.25)
        result = plumber.optimize(self.base(small_catalog), iterations=1)
        text = pipeline_to_json(result.pipeline)
        restored = pipeline_from_json(text)
        assert structural_signature(restored) == structural_signature(
            result.pipeline
        )
