"""Tests for the optimizer pass registry, actions, and built-in passes."""

import pytest

from repro.core.passes import (
    InsertPrefetch,
    PassContext,
    RemovePipelineNode,
    SetParallelism,
    available_passes,
    register_pass,
    resolve_pass,
    resolve_passes,
    unregister_pass,
)
from repro.core.plumber import Plumber
from repro.graph.builder import from_tfrecords
from tests.conftest import make_udf
from tests.test_core_lp import two_stage_pipeline


def stacked_prefetch_pipeline(catalog):
    """A hand-tuned pipeline with three adjacent prefetch buffers."""
    return (
        from_tfrecords(catalog, parallelism=2, name="src")
        .map(make_udf("m", cpu=1e-3), parallelism=2, name="m")
        .batch(16, name="b")
        .prefetch(2, name="pf_a")
        .prefetch(8, name="pf_b")
        .prefetch(4, name="pf_c")
        .repeat(None, name="r")
        .build("stacked")
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_passes()) >= {
            "parallelism", "prefetch", "cache", "fuse",
        }

    def test_resolve_by_name(self):
        assert resolve_pass("parallelism").name == "parallelism"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown optimizer passes"):
            resolve_pass("magic")

    def test_resolve_passes_reports_all_unknown(self):
        with pytest.raises(ValueError) as err:
            resolve_passes(("parallelism", "magic", "wand"))
        assert "magic" in str(err.value) and "wand" in str(err.value)

    def test_duplicate_registration_rejected(self):
        class Dup:
            name = "parallelism"

            def plan(self, ctx):
                return []

        with pytest.raises(ValueError, match="already registered"):
            register_pass(Dup())

    def test_replace_allows_override_and_restore(self):
        original = resolve_pass("fuse")

        class Shadow:
            name = "fuse"

            def plan(self, ctx):
                return []

        register_pass(Shadow(), replace=True)
        try:
            assert isinstance(resolve_pass("fuse"), Shadow)
        finally:
            register_pass(original, replace=True)
        assert resolve_pass("fuse") is original

    def test_register_and_unregister_custom_pass(self):
        class Custom:
            name = "custom_test_pass"

            def plan(self, ctx):
                return []

        register_pass(Custom())
        try:
            assert "custom_test_pass" in available_passes()
        finally:
            unregister_pass("custom_test_pass")
        assert "custom_test_pass" not in available_passes()

    def test_nameless_pass_rejected(self):
        class NoName:
            def plan(self, ctx):
                return []

        with pytest.raises(TypeError, match="name"):
            register_pass(NoName())

    def test_planless_pass_rejected(self):
        class NoPlan:
            name = "no_plan"

        with pytest.raises(TypeError, match="plan"):
            register_pass(NoPlan())

    def test_non_pass_spec_rejected(self):
        with pytest.raises(TypeError):
            resolve_pass(42)


class TestActions:
    def test_set_parallelism_applies(self, small_catalog):
        pipe = two_stage_pipeline(small_catalog)
        action = SetParallelism(plan={"m_heavy": 4}, description="widen")
        out = action.apply(pipe)
        assert out.node("m_heavy").parallelism == 4
        assert pipe.node("m_heavy").parallelism != 4  # functional rewrite

    def test_insert_prefetch_applies(self, small_catalog):
        pipe = two_stage_pipeline(small_catalog)
        action = InsertPrefetch(target="m_heavy", buffer_size=6,
                                name="pf_new", description="buffer")
        out = action.apply(pipe)
        assert out.node("pf_new").buffer_size == 6

    def test_remove_node_applies(self, small_catalog):
        pipe = stacked_prefetch_pipeline(small_catalog)
        out = RemovePipelineNode(target="pf_a", description="drop").apply(pipe)
        assert "pf_a" not in out.nodes
        assert "pf_a" in pipe.nodes


class TestFusePass:
    def test_fuse_collapses_stack_keeping_max_buffer(self, small_catalog,
                                                     test_machine):
        plumber = Plumber(test_machine, trace_duration=1.0,
                          trace_warmup=0.25, backend="analytic")
        result = plumber.optimize(
            stacked_prefetch_pipeline(small_catalog),
            passes=("fuse",), iterations=1,
        )
        kept = [n for n in result.pipeline.nodes if n.startswith("pf_")]
        assert kept == ["pf_b"]  # the largest buffer survives
        assert result.pipeline.node("pf_b").buffer_size == 8
        assert sum("fuse" in d for d in result.decisions) == 2

    def test_fuse_noop_without_adjacent_prefetches(self, small_catalog,
                                                   test_machine):
        plumber = Plumber(test_machine, trace_duration=1.0,
                          trace_warmup=0.25, backend="analytic")
        pipe = two_stage_pipeline(small_catalog)
        result = plumber.optimize(pipe, passes=("fuse",), iterations=1)
        assert result.decisions == []
        assert set(result.pipeline.nodes) == set(pipe.nodes)

    def test_fuse_then_standard_passes(self, small_catalog, test_machine):
        """The new pass composes with the original three in one spec."""
        plumber = Plumber(test_machine, trace_duration=1.0,
                          trace_warmup=0.25)
        result = plumber.optimize(
            stacked_prefetch_pipeline(small_catalog),
            passes=("fuse", "parallelism", "prefetch", "cache"),
            iterations=1,
        )
        kept = [n for n in result.pipeline.nodes if n.startswith("pf_")]
        assert kept == ["pf_b"]
        assert result.lp is not None


class TestCustomPassInDriver:
    def test_pass_object_usable_without_registration(self, small_catalog,
                                                     test_machine):
        applied = []

        class Widen:
            name = "widen"

            def plan(self, ctx):
                if applied:
                    return []
                applied.append(ctx.iteration)
                return [SetParallelism(
                    plan={"m_heavy": 3},
                    description=f"iter{ctx.iteration}: widen m_heavy",
                )]

        plumber = Plumber(test_machine, trace_duration=1.0,
                          trace_warmup=0.25, backend="analytic")
        result = plumber.optimize(
            two_stage_pipeline(small_catalog),
            passes=(Widen(),), iterations=1,
        )
        assert result.pipeline.node("m_heavy").parallelism == 3
        assert result.decisions == ["iter0: widen m_heavy"]
        # No parallelism pass ran, so no LP solution was recorded.
        assert result.lp is None and result.bottleneck == "none"

    def test_context_exposes_machine_memory_and_model(self, small_catalog,
                                                      test_machine):
        seen = {}

        class Probe:
            name = "probe"

            def plan(self, ctx: PassContext):
                seen["machine"] = ctx.machine
                seen["memory"] = ctx.memory.capacity_bytes
                seen["pipeline"] = ctx.pipeline.name
                return []

        Plumber(test_machine, trace_duration=1.0, trace_warmup=0.25,
                backend="analytic").optimize(
            two_stage_pipeline(small_catalog), passes=(Probe(),),
            iterations=1,
        )
        assert seen["machine"] is test_machine
        assert seen["memory"] == test_machine.memory_bytes
        assert seen["pipeline"]
