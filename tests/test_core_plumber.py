"""Tests for the Plumber front-end: optimize, pick_best, @optimize."""

import pytest

from repro.core.plumber import Plumber, optimize, optimize_pipeline
from repro.core.rewriter import existing_cache
from repro.graph.builder import from_tfrecords
from tests.conftest import make_udf
from tests.test_core_lp import two_stage_pipeline


@pytest.fixture
def plumber(test_machine):
    return Plumber(test_machine, trace_duration=1.5, trace_warmup=0.3)


class TestOptimize:
    def test_improves_over_naive(self, small_catalog, plumber, test_machine):
        from repro.runtime.executor import run_pipeline

        pipe = two_stage_pipeline(small_catalog)
        naive = run_pipeline(pipe, test_machine, duration=1.5, warmup=0.3)
        result = plumber.optimize(pipe)
        tuned = run_pipeline(
            result.pipeline, test_machine, duration=1.5, warmup=0.3
        )
        assert tuned.throughput > naive.throughput * 2

    def test_parallelism_pass_only(self, small_catalog, plumber):
        result = plumber.optimize(
            two_stage_pipeline(small_catalog), passes=("parallelism",)
        )
        assert result.cache is None
        assert result.pipeline.node("m_heavy").parallelism > 1
        assert existing_cache(result.pipeline) is None

    def test_cache_pass_inserts_cache(self, small_catalog, plumber):
        result = plumber.optimize(two_stage_pipeline(small_catalog))
        assert result.cache is not None
        assert existing_cache(result.pipeline) is not None

    def test_rejects_unknown_pass(self, small_catalog, plumber):
        with pytest.raises(ValueError, match="unknown optimizer passes"):
            plumber.optimize(two_stage_pipeline(small_catalog), passes=("magic",))

    def test_rejects_zero_iterations(self, small_catalog, plumber):
        with pytest.raises(ValueError, match="iterations"):
            plumber.optimize(two_stage_pipeline(small_catalog), iterations=0)

    def test_user_caches_are_replaced(self, small_catalog, plumber):
        from repro.core.rewriter import insert_cache_after

        pipe = insert_cache_after(
            two_stage_pipeline(small_catalog), "src", name="user_cache"
        )
        result = plumber.optimize(pipe)
        assert "user_cache" not in result.pipeline.nodes

    def test_decision_log_populated(self, small_catalog, plumber):
        result = plumber.optimize(two_stage_pipeline(small_catalog))
        assert any("parallelism" in d for d in result.decisions)
        assert any("cache" in d for d in result.decisions)

    def test_one_liner(self, small_catalog, test_machine):
        result = optimize_pipeline(
            two_stage_pipeline(small_catalog), test_machine, iterations=1
        )
        assert result.model.observed_throughput > 0

    def test_one_liner_accepts_spec(self, small_catalog, test_machine):
        from repro.core.spec import OptimizeSpec

        result = optimize_pipeline(
            two_stage_pipeline(small_catalog), test_machine,
            spec=OptimizeSpec(iterations=1, backend="analytic",
                              trace_duration=1.0, trace_warmup=0.25),
        )
        assert result.model.observed_throughput > 0


class TestTrace:
    def test_trace_accepts_explicit_trace_flag(self, small_catalog,
                                               plumber):
        """Regression: ``trace=`` in **overrides used to collide with
        the hardcoded ``trace=True`` keyword (TypeError)."""
        pipe = two_stage_pipeline(small_catalog)
        untraced = plumber.trace(pipe, trace=False)
        traced = plumber.trace(pipe, trace=True)
        assert untraced.root_throughput > 0
        # tracer_overhead is only charged when tracing is on, so the
        # flag observably reached RunConfig.
        assert untraced.root_throughput >= traced.root_throughput


class TestPickBest:
    def test_picks_faster_variant(self, small_catalog, plumber):
        slow = (
            from_tfrecords(small_catalog, parallelism=1, name="src")
            .map(make_udf("slow", cpu=5e-3), parallelism=1, name="m")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("slow")
        )
        fast = (
            from_tfrecords(small_catalog, parallelism=1, name="src")
            .map(make_udf("fast", cpu=1e-5), parallelism=1, name="m")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("fast")
        )
        result = plumber.pick_best({"slow": slow, "fast": fast}, iterations=1)
        assert result.winner == "fast"
        assert result.pipeline.name == "fast"

    def test_requires_variants(self, plumber):
        with pytest.raises(ValueError):
            plumber.pick_best({})

    def test_tie_broken_by_name_regardless_of_order(self, small_catalog,
                                                    plumber):
        """Identical variants tie on throughput; the winner must be the
        lexicographically smallest name, not whichever was inserted
        first."""
        def build(name):
            return (
                from_tfrecords(small_catalog, parallelism=1, name="src")
                .map(make_udf("op", cpu=1e-4), parallelism=1, name="m")
                .batch(16, name="b")
                .repeat(None, name="r")
                .build(name)
            )

        forward = plumber.pick_best(
            {"alpha": build("alpha"), "beta": build("beta")},
            passes=("parallelism",), iterations=1,
        )
        backward = plumber.pick_best(
            {"beta": build("beta"), "alpha": build("alpha")},
            passes=("parallelism",), iterations=1,
        )
        assert forward.scores["alpha"] == forward.scores["beta"]
        assert forward.winner == "alpha"
        assert backward.winner == "alpha"


class TestOptimizeDecorator:
    def test_decorator_returns_optimized_pipeline(
        self, small_catalog, test_machine
    ):
        @optimize(test_machine, trace_duration=1.0, trace_warmup=0.2)
        def loader():
            return two_stage_pipeline(small_catalog)

        pipe = loader()
        assert pipe.node("m_heavy").parallelism > 1

    def test_decorator_pick_best_cache_flag(self, small_catalog, test_machine):
        """The Figure 11 pattern: cacheable unfused vs fast fused."""

        def build(fused: bool):
            decode = make_udf(
                "decode", cpu=2e-3 if fused else 2.2e-3,
                size_ratio=2.0, random=fused,
            )
            ds = from_tfrecords(small_catalog, parallelism=1, name="src")
            ds = ds.map(decode, parallelism=1, name="m_dec")
            if not fused:
                ds = ds.map(make_udf("crop", cpu=2e-4, random=True),
                            parallelism=1, name="m_crop")
            return (
                ds.batch(16, name="b").repeat(None, name="r")
                .build("fused" if fused else "unfused")
            )

        @optimize(
            test_machine,
            pick_best={"fused": [True, False]},
            trace_duration=1.0,
            trace_warmup=0.2,
        )
        def loader(fused=False):
            return build(fused)

        pipe = loader()
        assert pipe.name in ("fused", "unfused")

    def test_decorator_rejects_multi_param_pick_best(self, test_machine):
        @optimize(test_machine, pick_best={"a": [1], "b": [2]})
        def loader(a=1, b=2):
            raise AssertionError("should not be called")

        with pytest.raises(ValueError, match="exactly one"):
            loader()


class TestPassTelemetry:
    """OptimizationResult.pass_telemetry: one entry per (iteration,
    registered pass) with wallclock, actions, predicted vs realized."""

    REQUIRED_KEYS = {
        "pass", "iteration", "seconds", "actions",
        "throughput_before", "throughput_after",
        "realized_gain", "predicted_throughput", "predicted_gain",
    }

    def test_every_pass_reports_every_iteration(
        self, small_catalog, test_machine
    ):
        passes = ("parallelism", "prefetch", "cache")
        plumber = Plumber(test_machine, backend="analytic")
        result = plumber.optimize(
            two_stage_pipeline(small_catalog), passes=passes, iterations=2
        )
        assert [(e["iteration"], e["pass"]) for e in result.pass_telemetry] \
            == [(i, p) for i in range(2) for p in passes]
        for entry in result.pass_telemetry:
            assert self.REQUIRED_KEYS <= set(entry)
            assert entry["seconds"] >= 0
            assert entry["actions"] >= 0

    def test_injected_clock_makes_wallclock_deterministic(
        self, small_catalog, test_machine
    ):
        ticks = iter(float(i) for i in range(100))
        plumber = Plumber(
            test_machine, backend="analytic", monotonic=lambda: next(ticks)
        )
        result = plumber.optimize(
            two_stage_pipeline(small_catalog), passes=("parallelism",)
        )
        # The fake clock advances 1.0 between the start and end reads.
        assert result.pass_telemetry[0]["seconds"] == 1.0

    def test_predicted_vs_realized_on_acting_lp_pass(
        self, small_catalog, test_machine
    ):
        import math

        plumber = Plumber(test_machine, backend="analytic")
        result = plumber.optimize(two_stage_pipeline(small_catalog))
        par = next(
            e for e in result.pass_telemetry if e["pass"] == "parallelism"
        )
        # The LP pass forecasts: prediction present and gain realized.
        assert par["actions"] > 0
        assert not math.isnan(par["predicted_throughput"])
        assert not math.isnan(par["predicted_gain"])
        assert par["throughput_after"] > par["throughput_before"]
        assert par["realized_gain"] > 0
        # A pass that planned nothing is still reported, with zero
        # actions and unchanged throughput. (An idle *parallelism* pass
        # may still carry a prediction — its plan re-solves the LP and
        # forecasts "no change"; non-LP passes must not.)
        idle = [e for e in result.pass_telemetry if e["actions"] == 0]
        for entry in idle:
            assert entry["throughput_after"] == entry["throughput_before"]
            if entry["pass"] != "parallelism":
                assert math.isnan(entry["predicted_throughput"])

    def test_pass_metrics_reach_global_registry(
        self, small_catalog, test_machine
    ):
        from repro.obs import global_registry

        hist = global_registry().histogram("repro_pass_seconds")
        cell = hist.labels(**{"pass": "parallelism"})
        before = cell.count
        Plumber(test_machine, backend="analytic").optimize(
            two_stage_pipeline(small_catalog),
            passes=("parallelism",), iterations=1,
        )
        assert cell.count == before + 1
