"""Tests for the simulated pipeline executor."""

import math

import pytest

from repro.graph.builder import from_tfrecords
from repro.runtime.executor import (
    BenchmarkConsumer,
    ModelConsumer,
    RunConfig,
    _granularity_floor,
    auto_granularity,
    run_pipeline,
)
from repro.runtime.engine import SimulationError
from tests.conftest import make_udf


class TestRunConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(duration=0.0)
        with pytest.raises(ValueError):
            RunConfig(duration=1.0, warmup=1.0)
        with pytest.raises(ValueError):
            RunConfig(granularity=0)
        with pytest.raises(ValueError):
            RunConfig(event_budget=0)

    def test_kwargs_and_config_exclusive(self, simple_pipeline, test_machine):
        with pytest.raises(TypeError):
            run_pipeline(
                simple_pipeline, test_machine, RunConfig(), duration=1.0
            )


class TestAutoGranularity:
    """Event-budget granularity tuning: chunk size follows the predicted
    event rate, with the legacy batch-size heuristic as the floor."""

    def _cheap_pipeline(self, catalog, cpu):
        return (
            from_tfrecords(catalog, parallelism=2, name="src")
            .map(make_udf("op", cpu=cpu), parallelism=2, name="m")
            .batch(16, name="b")
            .prefetch(4, name="pf")
            .repeat(None, name="r")
            .build("g")
        )

    def test_low_rate_pipeline_keeps_legacy_floor(
        self, simple_pipeline, test_machine
    ):
        g = auto_granularity(simple_pipeline, test_machine, duration=3.0)
        assert g == _granularity_floor(simple_pipeline)

    def test_microsecond_ops_get_coarser_chunks(
        self, small_catalog, test_machine
    ):
        nlp_like = self._cheap_pipeline(small_catalog, cpu=1e-6)
        g = auto_granularity(nlp_like, test_machine, duration=3.0)
        assert g > _granularity_floor(nlp_like)

    def test_smaller_budget_means_coarser_chunks(
        self, small_catalog, test_machine
    ):
        nlp_like = self._cheap_pipeline(small_catalog, cpu=1e-6)
        fine = auto_granularity(nlp_like, test_machine, duration=3.0,
                                event_budget=1_000_000)
        coarse = auto_granularity(nlp_like, test_machine, duration=3.0,
                                  event_budget=50_000)
        assert coarse > fine

    def test_slow_consumer_relaxes_granularity(
        self, small_catalog, test_machine
    ):
        """A model-bound run produces fewer events, so chunks stay fine."""
        nlp_like = self._cheap_pipeline(small_catalog, cpu=1e-6)
        free = auto_granularity(nlp_like, test_machine, duration=3.0)
        bound = auto_granularity(nlp_like, test_machine, duration=3.0,
                                 consumer_step_seconds=0.1)
        assert bound <= free

    def test_sizing_uses_fill_regime_prediction(
        self, small_catalog, test_machine, monkeypatch
    ):
        """Guard: chunk sizing must predict with ``cached=False``.

        Sizing for a cache's (much faster) serve rate makes chunks so
        coarse the populate pass cannot push one through the chain
        within the trace window — the known throughput-0 failure mode
        on optimized pipelines that gained a cache."""
        import repro.analysis.steady_state as steady_state
        import repro.runtime.executor as executor_mod

        seen = {}
        original = steady_state.predict_throughput

        def spy(pipeline, machine, consumer_step_seconds=0.0, cached=True):
            seen["cached"] = cached
            return original(pipeline, machine,
                            consumer_step_seconds=consumer_step_seconds,
                            cached=cached)

        monkeypatch.setattr(steady_state, "predict_throughput", spy)
        cached_pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("op", cpu=1e-6), parallelism=2, name="m")
            .batch(16, name="b")
            .cache(name="cache")
            .repeat(None, name="r")
            .build("cached")
        )
        executor_mod.auto_granularity(cached_pipe, test_machine,
                                      duration=3.0)
        assert seen["cached"] is False

    def test_optimized_cache_pipeline_traces_nonzero(
        self, small_catalog, test_machine
    ):
        """End-to-end form of the same guard: after the optimizer
        inserts a cache, auto-granularity traces (both backends) must
        still observe forward progress."""
        from repro.core.plumber import Plumber
        from repro.core.rewriter import existing_cache
        from repro.runtime.analytic import analytic_trace

        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("op", cpu=1e-4), parallelism=2, name="m")
            .batch(16, name="b")
            .prefetch(4, name="pf")
            .repeat(None, name="r")
            .build("opt_cache")
        )
        plumber = Plumber(test_machine, trace_duration=3.0,
                          trace_warmup=0.5)
        result = plumber.optimize(pipe, iterations=1)
        assert existing_cache(result.pipeline) is not None
        sim = run_pipeline(result.pipeline, test_machine, duration=3.0,
                           warmup=0.5)
        ana = analytic_trace(result.pipeline, test_machine, duration=3.0,
                             warmup=0.5)
        assert sim.throughput > 0
        assert ana.root_throughput > 0

    def test_budget_actually_bounds_wallclock(
        self, small_catalog, test_machine
    ):
        """The point of the tuner: a µs-cost trace must stay cheap. The
        chunk count reaching the consumer implies the event count; with
        the default budget it is bounded regardless of element rate."""
        nlp_like = self._cheap_pipeline(small_catalog, cpu=1e-6)
        res = run_pipeline(nlp_like, test_machine, duration=3.0, warmup=0.5)
        # Throughput is still measured sanely despite coarse chunks.
        assert res.throughput > 0
        coarse = run_pipeline(
            nlp_like, test_machine, duration=3.0, warmup=0.5,
            event_budget=50_000,
        )
        assert coarse.throughput == pytest.approx(res.throughput, rel=0.1)


class TestThroughput:
    def test_single_worker_stage_bounds_rate(self, simple_pipeline, test_machine):
        """p=1 map at 0.5ms/elem caps the pipeline near 2000 elem/s."""
        res = run_pipeline(simple_pipeline, test_machine, duration=3.0, warmup=0.5)
        expected = 1.0 / (5e-4 + 2 * 10e-6)  # cpu + overhead (tracing on)
        assert res.examples_per_second == pytest.approx(expected, rel=0.1)

    def test_parallelism_scales_throughput(self, small_catalog, test_machine):
        def build(p):
            return (
                from_tfrecords(small_catalog, parallelism=2, name="src")
                .map(make_udf("work", cpu=1e-3), parallelism=p, name="m")
                .batch(16, name="b")
                .prefetch(4, name="pf")
                .repeat(None, name="r")
                .build("scale")
            )

        r1 = run_pipeline(build(1), test_machine, duration=3.0, warmup=0.5)
        r4 = run_pipeline(build(4), test_machine, duration=3.0, warmup=0.5)
        assert r4.throughput / r1.throughput == pytest.approx(4.0, rel=0.15)

    def test_cpu_saturation_bounds_scaling(self, small_catalog, test_machine):
        """Beyond the core count, more parallelism stops helping."""
        def build(p):
            return (
                from_tfrecords(small_catalog, parallelism=2, name="src")
                .map(make_udf("work", cpu=1e-3), parallelism=p, name="m")
                .batch(16, name="b")
                .repeat(None, name="r")
                .build("sat")
            )

        r8 = run_pipeline(build(8), test_machine, duration=3.0, warmup=0.5)
        r32 = run_pipeline(build(32), test_machine, duration=3.0, warmup=0.5)
        assert r32.throughput <= r8.throughput * 1.1

    def test_disk_bound_pipeline(self, small_catalog, test_machine):
        from repro.host.disk import token_bucket

        slow = test_machine.with_disk(token_bucket(1e6))  # 1 MB/s
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("io")
        )
        # Readers fetch 1 MB blocks, so at 1 MB/s output arrives in
        # ~1-2 s bursts; average over a long window.
        res = run_pipeline(pipe, slow, duration=40.0, warmup=4.0)
        # 10 KB records -> 1 MB/s feeds ~100 records/s.
        assert res.examples_per_second == pytest.approx(100.0, rel=0.12)
        assert res.disk_bytes == pytest.approx(1e6 * res.measured_seconds, rel=0.15)

    def test_model_consumer_caps_throughput(self, simple_pipeline, test_machine):
        fast = run_pipeline(simple_pipeline, test_machine, duration=3.0, warmup=0.5)
        capped = run_pipeline(
            simple_pipeline,
            test_machine,
            duration=3.0,
            warmup=0.5,
            consumer=ModelConsumer(step_seconds_per_element=0.05),
        )
        assert capped.throughput == pytest.approx(20.0, rel=0.1)
        assert capped.throughput < fast.throughput

    def test_next_latency_low_when_model_bound(self, simple_pipeline, test_machine):
        res = run_pipeline(
            simple_pipeline,
            test_machine,
            duration=3.0,
            warmup=0.5,
            consumer=ModelConsumer(step_seconds_per_element=0.2),
        )
        # Pipeline keeps up easily: Next returns from the prefetch buffer.
        assert res.next_latency < 1e-3


class TestSemantics:
    def test_single_epoch_completes(self, single_epoch_pipeline, test_machine):
        res = run_pipeline(
            single_epoch_pipeline, test_machine, duration=60.0, warmup=0.0
        )
        assert res.completed
        expected = single_epoch_pipeline.node("src").catalog.total_records // 16
        assert res.minibatches == pytest.approx(expected, rel=0.02)

    def test_take_truncates_stream(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .batch(16, name="b")
            .take(10, name="t")
            .build("take")
        )
        res = run_pipeline(pipe, test_machine, duration=60.0, warmup=0.0)
        assert res.completed
        assert res.minibatches == pytest.approx(10.0, abs=0.01)

    def test_filter_reduces_elements(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .filter(make_udf("f", cpu=1e-6), keep_fraction=0.5, name="filt")
            .batch(16, name="b")
            .build("filt")
        )
        res = run_pipeline(pipe, test_machine, duration=60.0, warmup=0.0)
        total = small_catalog.total_records
        assert res.stats["filt"].elements_produced == pytest.approx(
            0.5 * total, rel=0.01
        )

    def test_bounded_repeat_multiplies_epochs(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=4, name="src")
            .map(make_udf("f", cpu=1e-6), parallelism=2, name="m")
            .batch(16, name="b")
            .repeat(3, name="r")
            .build("rep3")
        )
        res = run_pipeline(pipe, test_machine, duration=120.0, warmup=0.0)
        expected = 3 * small_catalog.total_records / 16
        assert res.minibatches == pytest.approx(expected, rel=0.03)

    def test_cache_serves_later_epochs_without_io(
        self, small_catalog, test_machine
    ):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("f", cpu=1e-5), parallelism=2, name="m")
            .cache(name="cache")
            .batch(16, name="b")
            .repeat(4, name="r")
            .build("cached")
        )
        res = run_pipeline(pipe, test_machine, duration=120.0, warmup=0.0)
        total = small_catalog.total_records
        # Four epochs of minibatches, one epoch of disk reads.
        assert res.minibatches == pytest.approx(4 * total / 16, rel=0.03)
        assert res.cumulative_stats["src"].elements_produced == pytest.approx(
            total, rel=0.01
        )
        assert res.cache_bytes["cache"] == pytest.approx(
            small_catalog.total_bytes, rel=0.01
        )

    def test_cache_overflow_raises(self, small_catalog, test_machine):
        tiny = test_machine.with_memory(1e5)  # 100 KB << 41 MB dataset
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .cache(name="cache")
            .batch(16, name="b")
            .repeat(2, name="r")
            .build("boom")
        )
        with pytest.raises(SimulationError, match="memory limit"):
            run_pipeline(pipe, tiny, duration=60.0, warmup=0.0)


class TestStatsCollection:
    def test_byte_accounting_matches_ratio(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("decode", cpu=1e-5, size_ratio=6.0), parallelism=2,
                 name="dec")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("bytes")
        )
        res = run_pipeline(pipe, test_machine, duration=2.0, warmup=0.5)
        src, dec = res.stats["src"], res.stats["dec"]
        assert dec.bytes_per_element == pytest.approx(
            6.0 * src.bytes_per_element, rel=0.01
        )

    def test_cpu_time_matches_cost(self, simple_pipeline, test_machine):
        res = run_pipeline(simple_pipeline, test_machine, duration=3.0, warmup=0.5)
        st = res.stats["map_work"]
        assert st.cpu_core_seconds / st.elements_produced == pytest.approx(
            5e-4, rel=0.01
        )

    def test_tracer_overhead_slows_pipeline(self, simple_pipeline, test_machine):
        traced = run_pipeline(
            simple_pipeline, test_machine, duration=3.0, warmup=0.5, trace=True
        )
        untraced = run_pipeline(
            simple_pipeline, test_machine, duration=3.0, warmup=0.5, trace=False
        )
        assert untraced.throughput > traced.throughput

    def test_files_seen_recorded(self, simple_pipeline, test_machine):
        res = run_pipeline(simple_pipeline, test_machine, duration=3.0, warmup=0.5)
        src = res.cumulative_stats["src"]
        assert src.files_seen_count >= 1
        assert src.files_seen_bytes > 0

    def test_visit_ratio_observed_matches_structural(
        self, simple_pipeline, test_machine
    ):
        res = run_pipeline(simple_pipeline, test_machine, duration=4.0, warmup=1.0)
        structural = simple_pipeline.visit_ratios()
        root = res.stats["repeat"].elements_produced
        for name in ("src", "map_work", "batch"):
            observed = res.stats[name].elements_produced / root
            assert observed == pytest.approx(structural[name], rel=0.05)


class TestEngineTelemetry:
    """Event counters surfaced on RunResult and the global registry."""

    def test_run_result_carries_engine_counters(
        self, simple_pipeline, test_machine
    ):
        result = run_pipeline(
            simple_pipeline, test_machine, duration=1.0, warmup=0.2
        )
        assert result.events_processed > 0
        # Zero-delay handoffs guarantee the ready deque was used.
        assert result.peak_ready_depth >= 1

    def test_global_registry_accumulates_sim_events(
        self, simple_pipeline, test_machine
    ):
        from repro.obs import global_registry

        counter = global_registry().counter("repro_sim_events_total")
        before = counter.value
        result = run_pipeline(
            simple_pipeline, test_machine, duration=1.0, warmup=0.2
        )
        assert counter.value == before + result.events_processed
        depth_hist = global_registry().get("repro_sim_ready_depth")
        assert depth_hist is not None and depth_hist.count >= 1
