"""Tests for the five MLPerf workload builders and the registry."""

import math

import pytest

from repro.core.randomness import tainted_nodes
from repro.graph.validate import validate_pipeline
from repro.workloads import (
    END_TO_END_WORKLOADS,
    MICROBENCH_WORKLOADS,
    build_gnmt,
    build_rcnn,
    build_resnet,
    build_resnet_fused,
    build_ssd,
    build_transformer,
    build_transformer_small,
    get_workload,
)


class TestBuilders:
    @pytest.mark.parametrize(
        "builder",
        [
            build_resnet,
            build_resnet_fused,
            build_rcnn,
            build_ssd,
            build_transformer,
            build_transformer_small,
            build_gnmt,
        ],
    )
    def test_pipelines_validate(self, builder):
        validate_pipeline(builder())

    def test_resnet_crop_taints_tail_only(self):
        pipe = build_resnet()
        tainted = tainted_nodes(pipe)
        assert "map_crop" in tainted
        assert "map_transpose" in tainted
        assert "map_decode" not in tainted
        assert "interleave_tfrecord" not in tainted

    def test_resnet_fused_taints_from_decode(self):
        """Figure 11: fusing decode+crop kills cacheability past decode."""
        pipe = build_resnet_fused()
        tainted = tainted_nodes(pipe)
        assert "map_decode" in tainted
        assert "interleave_tfrecord" not in tainted

    def test_resnet_io_per_minibatch_matches_paper(self):
        """§5.2: 128 x ~110-115 KB -> ~15 MB per minibatch."""
        pipe = build_resnet()
        cat = pipe.node("interleave_tfrecord").catalog
        bpm = 128 * cat.mean_bytes_per_record
        assert bpm == pytest.approx(15e6, rel=0.05)

    def test_rcnn_heavy_udf_width(self):
        pipe = build_rcnn()
        udf = pipe.node("map_heavy").udf
        assert udf.cost.internal_parallelism == pytest.approx(3.0)
        # 0.5 core-seconds per image -> R = 0.5 mb/s/core at batch 4.
        assert udf.cost.core_seconds * 4 == pytest.approx(1.5, rel=0.1)

    def test_rcnn_only_source_side_cacheable(self):
        pipe = build_rcnn()
        tainted = tainted_nodes(pipe)
        assert "map_heavy" in tainted
        assert "map_cheap" in tainted
        assert "map_parse" not in tainted

    def test_ssd_filter_before_random_augment(self):
        pipe = build_ssd()
        tainted = tainted_nodes(pipe)
        assert "filter_boxes" not in tainted
        assert "map_crop" in tainted

    def test_gnmt_has_shuffle_and_repeat(self):
        pipe = build_gnmt()
        assert pipe.node("shuffle_and_repeat").kind == "shuffle_and_repeat"
        assert pipe.node("shuffle_and_repeat").sequential

    def test_transformer_small_pack_sequential(self):
        pipe = build_transformer_small()
        assert pipe.node("map_pack").sequential

    def test_parallelism_seed_applied(self):
        pipe = build_resnet(parallelism=7)
        assert pipe.node("map_decode").parallelism == 7
        assert pipe.node("interleave_tfrecord").parallelism == 7

    def test_no_prefetch_option(self):
        pipe = build_resnet(prefetch=0)
        assert "prefetch_root" not in pipe.nodes


class TestRegistry:
    def test_microbench_has_five_workloads(self):
        assert set(MICROBENCH_WORKLOADS) == {
            "resnet", "rcnn", "ssd", "transformer", "gnmt",
        }

    def test_end_to_end_matches_figure_10(self):
        assert set(END_TO_END_WORKLOADS) == {
            "resnet18", "resnet_linear", "resnet50", "ssd", "rcnn",
            "transformer", "transformer_small", "gnmt",
        }

    def test_model_step_seconds(self):
        wl = get_workload("transformer", end_to_end=True)
        assert wl.model_step_seconds == pytest.approx(64 / 860.0)
        micro = get_workload("transformer")
        assert micro.model_step_seconds == 0.0

    def test_build_with_scale(self):
        wl = get_workload("resnet")
        pipe = wl.build(scale=0.1)
        assert pipe.node("interleave_tfrecord").catalog.num_files == 102

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("bert")
