"""Tests for the analytic steady-state model and text tables."""

import math

import pytest

from repro.analysis.steady_state import predict_throughput
from repro.analysis.tables import format_table
from repro.graph.builder import from_tfrecords
from repro.runtime.executor import ModelConsumer, run_pipeline
from tests.conftest import make_udf


class TestSteadyState:
    def test_matches_simulator_on_cpu_bound(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("w", cpu=1e-3), parallelism=4, name="m")
            .batch(16, name="b")
            .prefetch(4, name="pf")
            .repeat(None, name="r")
            .build("p")
        )
        predicted = predict_throughput(pipe, test_machine)
        simulated = run_pipeline(pipe, test_machine, duration=3.0, warmup=0.5)
        assert simulated.throughput == pytest.approx(
            predicted.throughput, rel=0.1
        )

    def test_matches_simulator_on_disk_bound(self, small_catalog, test_machine):
        from repro.host.disk import token_bucket

        slow = test_machine.with_disk(token_bucket(2e6))
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("io")
        )
        predicted = predict_throughput(pipe, slow)
        assert predicted.bottleneck == "disk"
        # Long window: block-buffered readers deliver in ~0.5 s bursts.
        simulated = run_pipeline(pipe, slow, duration=30.0, warmup=3.0)
        assert simulated.throughput == pytest.approx(
            predicted.throughput, rel=0.12
        )

    def test_sequential_stage_binds(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=4, name="src")
            .map(make_udf("w", cpu=1e-5), parallelism=4, name="m")
            .shuffle(16, cpu_seconds_per_element=1e-3, name="shuf")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("seq")
        )
        predicted = predict_throughput(pipe, test_machine)
        assert predicted.bottleneck == "stage:shuf"

    def test_consumer_cap(self, simple_pipeline, test_machine):
        predicted = predict_throughput(
            simple_pipeline, test_machine, consumer_step_seconds=1.0
        )
        assert predicted.throughput == pytest.approx(1.0)
        assert predicted.bottleneck == "consumer"

    def test_cached_waives_upstream_and_disk(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=1, name="src")
            .map(make_udf("slow", cpu=1e-2), parallelism=1, name="m")
            .cache(name="c")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("cached")
        )
        cached = predict_throughput(pipe, test_machine, cached=True)
        cold = predict_throughput(pipe, test_machine, cached=False)
        assert cached.throughput > cold.throughput * 10
        assert math.isinf(cached.stage_caps["m"])

    def test_cpu_utilization_bounded(self, simple_pipeline, test_machine):
        predicted = predict_throughput(simple_pipeline, test_machine)
        assert 0.0 <= predicted.cpu_utilization <= 1.0


class TestTables:
    def test_alignment_and_content(self):
        out = format_table(
            ("name", "value"), [("a", 1.0), ("long_name", 123456.0)],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "123,456" in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(("a", "b"), [(1,)])
