"""End-to-end multi-process tests: a fleet sharded over live daemon
*subprocesses* through the HTTP transport.

The acceptance bar for distributed dispatch: a fleet fanned out by
``ShardedOptimizer`` across two daemon processes (each with its own
``DiskStore`` directory) must produce a merged report identical — job
names, signatures, speedups, cache arithmetic — to the single
``BatchOptimizer`` run of the same fleet, and a second pair of fresh
daemon processes on the same store directories must serve the unchanged
fleet entirely from disk *through the HTTP path* (warm restart).
"""

import os
import selectors
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import BatchOptimizer, RemoteShard, ShardedOptimizer

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

FAST_SPEC = OptimizeSpec(iterations=1, backend="analytic",
                         trace_duration=1.0, trace_warmup=0.25)

#: one daemon process: binds a free port, prints it, serves until its
#: stdin closes (the parent's shutdown signal)
DAEMON_SCRIPT = textwrap.dedent("""
    import sys
    from repro.core.spec import OptimizeSpec
    from repro.service import BatchOptimizer, DiskStore, OptimizationDaemon

    spec = OptimizeSpec(iterations=1, backend="analytic",
                        trace_duration=1.0, trace_warmup=0.25)
    daemon = OptimizationDaemon(
        BatchOptimizer(executor="serial", spec=spec,
                       store=DiskStore(sys.argv[1])),
    )
    daemon.start()
    print(daemon.port, flush=True)
    sys.stdin.read()   # block until the parent closes our stdin
    daemon.close()
""")


def make_fleet():
    return generate_pipeline_fleet(
        num_jobs=12, distinct=4, seed=7,
        config=FleetConfig(domain_weights={"vision": 1.0},
                           optimize_spec=FAST_SPEC),
    )


def _read_port(proc, timeout=60.0):
    """The port line the daemon subprocess prints once it is serving."""
    sel = selectors.DefaultSelector()
    sel.register(proc.stdout, selectors.EVENT_READ)
    try:
        if not sel.select(timeout=timeout):
            raise AssertionError("daemon subprocess never printed its port")
    finally:
        sel.close()
    line = proc.stdout.readline().strip()
    assert line.isdigit(), f"expected a port, got {line!r}"
    return int(line)


class _DaemonProcess:
    """One daemon subprocess bound to a DiskStore directory."""

    def __init__(self, store_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-c", DAEMON_SCRIPT, str(store_dir)],
            env=env, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        try:
            self.url = f"http://127.0.0.1:{_read_port(self.proc)}"
        except Exception:
            self.close()
            raise

    def close(self):
        if self.proc.poll() is None:
            try:
                self.proc.stdin.close()   # unblocks the child's read()
                self.proc.wait(timeout=30)
            except (OSError, subprocess.TimeoutExpired):
                self.proc.kill()
                self.proc.wait(timeout=30)
        self.proc.stdout.close()
        self.proc.stderr.close()


@pytest.fixture
def daemon_pair(tmp_path):
    """Two daemon subprocesses with disjoint DiskStore directories,
    restartable onto the same directories via the `spawn` handle."""
    dirs = (tmp_path / "host0", tmp_path / "host1")
    alive = []

    def spawn():
        procs = [_DaemonProcess(d) for d in dirs]
        alive.extend(procs)
        return procs

    yield spawn
    for proc in alive:
        proc.close()


class TestDistributedDispatch:
    def test_sharded_over_two_daemon_processes(self, daemon_pair):
        fleet = make_fleet()
        local = BatchOptimizer(executor="serial",
                               spec=FAST_SPEC).optimize_fleet(fleet)

        first = daemon_pair()
        merged = ShardedOptimizer(
            [RemoteShard(p.url) for p in first]).optimize_fleet(fleet)
        # Identical to the single-service run of the same fleet.
        assert [j.name for j in merged.jobs] == [j.name for j in local.jobs]
        assert [j.signature for j in merged.jobs] == \
               [j.signature for j in local.jobs]
        assert [j.speedup for j in merged.jobs] == \
               [j.speedup for j in local.jobs]
        assert [j.pipeline_json for j in merged.jobs] == \
               [j.pipeline_json for j in local.jobs]
        assert merged.cache_misses == local.cache_misses
        assert merged.cache_hits == local.cache_hits
        for proc in first:
            proc.close()

        # Fresh daemon processes on the same store directories: the
        # unchanged fleet is served entirely from disk over HTTP.
        second = daemon_pair()
        sharded = ShardedOptimizer([RemoteShard(p.url) for p in second])
        warm = sharded.optimize_fleet(fleet)
        assert warm.cache_misses == 0
        assert warm.cache_hit_rate == 1.0
        assert [j.pipeline_json for j in warm.jobs] == \
               [j.pipeline_json for j in local.jobs]
        stats = sharded.stats()
        assert stats["cache_misses"] == 0
        assert stats["store_entries"] == local.cache_misses
