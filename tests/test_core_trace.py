"""Tests for the trace file format."""

import pytest

from repro.core.trace import HostInfo, PipelineTrace
from repro.runtime.executor import run_pipeline


@pytest.fixture
def trace(simple_pipeline, test_machine):
    result = run_pipeline(simple_pipeline, test_machine, duration=2.0, warmup=0.5)
    return PipelineTrace.from_run(result)


class TestTrace:
    def test_from_run_captures_throughput(self, trace):
        assert trace.root_throughput > 0
        assert trace.measured_seconds == pytest.approx(1.5, rel=0.01)

    def test_host_info_matches_machine(self, trace, test_machine):
        assert trace.host.cores == test_machine.cores
        assert trace.host.memory_bytes == test_machine.memory_bytes
        assert trace.host.disk.max_bandwidth == test_machine.disk.max_bandwidth

    def test_trace_is_a_valid_program(self, trace, simple_pipeline):
        rebuilt = trace.pipeline()
        assert [n.name for n in rebuilt.topological_order()] == [
            n.name for n in simple_pipeline.topological_order()
        ]

    def test_json_round_trip(self, trace):
        restored = PipelineTrace.from_json(trace.to_json())
        assert restored.root_throughput == pytest.approx(trace.root_throughput)
        assert restored.measured_seconds == trace.measured_seconds
        assert set(restored.stats) == set(trace.stats)
        for name in trace.stats:
            assert restored.stats[name].elements_produced == pytest.approx(
                trace.stats[name].elements_produced
            )
            assert restored.stats[name].cpu_core_seconds == pytest.approx(
                trace.stats[name].cpu_core_seconds
            )

    def test_stats_struct_is_small(self, trace):
        """The paper's counter struct is <144 bytes; our serialized
        numeric payload per node stays in that ballpark (excluding the
        bounded file-size list)."""
        for stats in trace.stats.values():
            payload = {
                k: v for k, v in stats.to_dict().items()
                if k != "files_seen_sizes" and isinstance(v, (int, float, bool))
            }
            assert 8 * len(payload) <= 144
