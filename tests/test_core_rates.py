"""Tests for resource-accounted rates (§4.4 / §A)."""

import math

import pytest

from repro.core.rates import build_model
from repro.core.trace import PipelineTrace
from repro.graph.builder import from_tfrecords
from repro.runtime.executor import run_pipeline
from tests.conftest import make_udf


def model_of(pipeline, machine, duration=3.0, warmup=0.5, **kw):
    result = run_pipeline(pipeline, machine, duration=duration, warmup=warmup, **kw)
    return build_model(PipelineTrace.from_run(result))


class TestVisitRatios:
    def test_observed_matches_structural(self, simple_pipeline, test_machine):
        model = model_of(simple_pipeline, test_machine)
        structural = simple_pipeline.visit_ratios()
        for name, rates in model.rates.items():
            if math.isfinite(structural[name]):
                assert rates.visit_ratio == pytest.approx(
                    structural[name], rel=0.05
                ), name

    def test_root_visit_ratio_is_one(self, simple_pipeline, test_machine):
        model = model_of(simple_pipeline, test_machine)
        assert model.rates["repeat"].visit_ratio == pytest.approx(1.0)


class TestRates:
    def test_rate_per_core_matches_cost(self, simple_pipeline, test_machine):
        model = model_of(simple_pipeline, test_machine)
        # map_work: 0.5 ms/elem, 16 elems/minibatch -> R = 125 mb/s/core.
        assert model.rates["map_work"].rate_per_core == pytest.approx(
            1.0 / (5e-4 * 16), rel=0.05
        )

    def test_zero_cpu_node_has_infinite_rate(self, simple_pipeline, test_machine):
        model = model_of(simple_pipeline, test_machine)
        assert math.isinf(model.rates["prefetch"].rate_per_core)

    def test_scaled_rate_multiplies_parallelism(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("w", cpu=1e-3), parallelism=3, name="m")
            .batch(16, name="b")
            .prefetch(4, name="pf")
            .repeat(None, name="r")
            .build("p")
        )
        model = model_of(pipe, test_machine)
        rates = model.rates["m"]
        assert rates.parallelism == 3
        assert rates.scaled_rate == pytest.approx(
            3 * rates.effective_rate_per_core
        )
        # The effective (busy-time) rate sits at or below the CPU-only
        # rate: overhead and I/O only slow a thread down.
        assert rates.effective_rate_per_core <= rates.rate_per_core * 1.001

    def test_cpu_nodes_excludes_free_ops(self, simple_pipeline, test_machine):
        model = model_of(simple_pipeline, test_machine)
        names = {r.name for r in model.cpu_nodes()}
        assert "map_work" in names
        assert "prefetch" not in names
        assert "repeat" not in names

    def test_bytes_per_minibatch(self, simple_pipeline, test_machine):
        model = model_of(simple_pipeline, test_machine)
        expected = 16 * 10e3  # batch x record bytes
        assert model.bytes_per_minibatch == pytest.approx(expected, rel=0.05)


class TestSourceSizeEstimation:
    def test_full_observation_is_exact(self, small_catalog, test_machine):
        # Small dataset + repeat: the trace sees every file.
        pipe = (
            from_tfrecords(small_catalog, parallelism=4, name="src")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("p")
        )
        model = model_of(pipe, test_machine, duration=3.0)
        est = model.source_estimates["src"]
        assert est.estimated_bytes == pytest.approx(
            small_catalog.total_bytes, rel=0.02
        )

    def test_subsample_rescales(self, test_machine):
        """§A: a small file subsample estimates the dataset within a few
        percent (1% of ImageNet files -> ~1% error)."""
        from repro.io.filesystem import FileCatalog

        catalog = FileCatalog("big", 1000, 500.0, 20e3, size_cv=0.15, seed=3)
        pipe = (
            from_tfrecords(catalog, parallelism=2, name="src")
            .map(make_udf("slow", cpu=2e-3), parallelism=2, name="m")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("p")
        )
        model = model_of(pipe, test_machine, duration=2.0)
        est = model.source_estimates["src"]
        assert 0 < est.observed_files < catalog.num_files  # genuine subsample
        assert est.estimated_bytes == pytest.approx(
            catalog.total_bytes, rel=0.15
        )

    def test_cardinality_estimated_from_bytes(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=4, name="src")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("p")
        )
        model = model_of(pipe, test_machine)
        est = model.source_estimates["src"]
        assert est.estimated_records == pytest.approx(
            small_catalog.total_records, rel=0.05
        )


class TestMaterialization:
    def test_decode_amplifies_materialized_size(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=4, name="src")
            .map(make_udf("decode", cpu=1e-5, size_ratio=6.0), parallelism=2,
                 name="dec")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("p")
        )
        model = model_of(pipe, test_machine)
        src_bytes = model.rates["src"].materialized_bytes
        dec_bytes = model.rates["dec"].materialized_bytes
        assert dec_bytes == pytest.approx(6.0 * src_bytes, rel=0.05)
        assert src_bytes == pytest.approx(small_catalog.total_bytes, rel=0.05)

    def test_filter_shrinks_materialized_size(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=4, name="src")
            .filter(make_udf("f", cpu=1e-6), keep_fraction=0.5, name="filt")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("p")
        )
        model = model_of(pipe, test_machine)
        assert model.rates["filt"].materialized_bytes == pytest.approx(
            0.5 * model.rates["src"].materialized_bytes, rel=0.05
        )

    def test_random_node_not_cacheable(self, small_catalog, test_machine):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("aug", cpu=1e-5, random=True), parallelism=2, name="aug")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("p")
        )
        model = model_of(pipe, test_machine)
        assert not model.rates["aug"].cacheable
        assert not model.rates["b"].cacheable
        assert model.rates["src"].cacheable

    def test_cache_candidates_closest_to_root_first(
        self, small_catalog, test_machine
    ):
        pipe = (
            from_tfrecords(small_catalog, parallelism=2, name="src")
            .map(make_udf("a", cpu=1e-5), parallelism=2, name="ma")
            .map(make_udf("b2", cpu=1e-5), parallelism=2, name="mb")
            .batch(16, name="b")
            .repeat(None, name="r")
            .build("p")
        )
        model = model_of(pipe, test_machine)
        names = [c.name for c in model.cache_candidates()]
        assert names.index("b") < names.index("mb") < names.index("ma")

    def test_repeat_node_uncacheable(self, simple_pipeline, test_machine):
        model = model_of(simple_pipeline, test_machine)
        assert not model.rates["repeat"].cacheable
        assert math.isinf(model.rates["repeat"].cardinality)
