"""Tests for graph rewriting (§B)."""

import pytest

from repro.core.rewriter import (
    RewriteError,
    existing_cache,
    get_parallelism,
    insert_after,
    insert_cache_after,
    insert_prefetch_after,
    remove_node,
    set_parallelism,
    strip_caches,
)
from repro.graph.datasets import CacheNode, PrefetchNode


class TestSetParallelism:
    def test_sets_values(self, simple_pipeline):
        out = set_parallelism(simple_pipeline, {"map_work": 5, "src": 3})
        assert out.node("map_work").parallelism == 5
        assert out.node("src").parallelism == 3

    def test_original_untouched(self, simple_pipeline):
        set_parallelism(simple_pipeline, {"map_work": 5})
        assert simple_pipeline.node("map_work").parallelism == 1

    def test_rejects_unknown_node(self, simple_pipeline):
        with pytest.raises(RewriteError, match="no node"):
            set_parallelism(simple_pipeline, {"ghost": 2})

    def test_rejects_non_tunable(self, simple_pipeline):
        with pytest.raises(RewriteError, match="not tunable"):
            set_parallelism(simple_pipeline, {"prefetch": 2})

    def test_rejects_zero(self, simple_pipeline):
        with pytest.raises(RewriteError, match=">= 1"):
            set_parallelism(simple_pipeline, {"map_work": 0})

    def test_get_parallelism(self, simple_pipeline):
        assert get_parallelism(simple_pipeline) == {
            "src": 1, "map_work": 1, "batch": 1,
        }


class TestInsert:
    def test_insert_cache_between_nodes(self, simple_pipeline):
        out = insert_cache_after(simple_pipeline, "map_work")
        cache = out.node("cache_map_work")
        assert isinstance(cache, CacheNode)
        assert cache.inputs[0].name == "map_work"
        assert out.parent_of("cache_map_work").name == "batch"

    def test_insert_at_root_replaces_root(self, simple_pipeline):
        out = insert_prefetch_after(simple_pipeline, "repeat", buffer_size=3)
        assert isinstance(out.root, PrefetchNode)
        assert out.root.inputs[0].name == "repeat"

    def test_insert_rejects_duplicate_name(self, simple_pipeline):
        with_cache = insert_cache_after(simple_pipeline, "map_work")
        with pytest.raises(RewriteError, match="already exists"):
            insert_cache_after(with_cache, "map_work")

    def test_insert_rejects_missing_target(self, simple_pipeline):
        with pytest.raises(RewriteError, match="no node"):
            insert_cache_after(simple_pipeline, "ghost")

    def test_insert_cache_above_repeat_fails_validation(self, simple_pipeline):
        from repro.graph.validate import GraphValidationError

        with pytest.raises(GraphValidationError):
            insert_cache_after(simple_pipeline, "repeat")


class TestRemove:
    def test_remove_middle_node(self, simple_pipeline):
        out = remove_node(simple_pipeline, "prefetch")
        assert "prefetch" not in out.nodes
        assert out.parent_of("batch").name == "repeat"

    def test_remove_root(self, simple_pipeline):
        out = remove_node(simple_pipeline, "repeat")
        assert out.root.name == "prefetch"

    def test_remove_missing_raises(self, simple_pipeline):
        with pytest.raises(RewriteError):
            remove_node(simple_pipeline, "ghost")


class TestStripCaches:
    def test_strips_user_caches(self, simple_pipeline):
        cached = insert_cache_after(simple_pipeline, "map_work")
        cached = insert_cache_after(cached, "src")
        assert existing_cache(cached) is not None
        stripped = strip_caches(cached)
        assert existing_cache(stripped) is None
        assert set(stripped.nodes) == set(simple_pipeline.nodes)

    def test_noop_without_cache(self, simple_pipeline):
        assert strip_caches(simple_pipeline) is simple_pipeline
