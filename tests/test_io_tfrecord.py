"""Tests for the TFRecord framing model and real encode/decode."""

import pytest

from repro.io.tfrecord import TFRecordFormat


class TestFraming:
    def test_record_bytes_adds_framing(self):
        fmt = TFRecordFormat()
        assert fmt.record_bytes(100) == 100 + fmt.header_bytes + fmt.footer_bytes

    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            TFRecordFormat().record_bytes(-1)

    def test_records_in_file(self):
        fmt = TFRecordFormat()
        per = fmt.record_bytes(100)
        assert fmt.records_in_file(per * 10, 100) == 10
        assert fmt.records_in_file(per * 10 + 5, 100) == 10
        assert fmt.records_in_file(per - 1, 100) == 0


class TestEncodeDecode:
    def test_round_trip(self):
        fmt = TFRecordFormat()
        payloads = [b"hello", b"", b"x" * 1000]
        blob = fmt.encode(payloads)
        assert list(fmt.decode(blob)) == payloads

    def test_blob_size_matches_framing(self):
        fmt = TFRecordFormat()
        blob = fmt.encode([b"abc"])
        assert len(blob) == fmt.record_bytes(3)

    def test_detects_corrupt_payload(self):
        fmt = TFRecordFormat()
        blob = bytearray(fmt.encode([b"hello world"]))
        blob[14] ^= 0xFF  # flip a payload byte
        with pytest.raises(ValueError, match="CRC"):
            list(fmt.decode(bytes(blob)))

    def test_detects_corrupt_length(self):
        fmt = TFRecordFormat()
        blob = bytearray(fmt.encode([b"hello world"]))
        blob[0] ^= 0xFF  # flip a length byte
        with pytest.raises(ValueError):
            list(fmt.decode(bytes(blob)))

    def test_detects_truncation(self):
        fmt = TFRecordFormat()
        blob = fmt.encode([b"hello world"])
        with pytest.raises(ValueError, match="truncated"):
            list(fmt.decode(blob[:-2]))

    def test_empty_blob_yields_nothing(self):
        assert list(TFRecordFormat().decode(b"")) == []
