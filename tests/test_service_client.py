"""Tests for the daemon HTTP client library (repro.service.client).

Covers the wire format, the submit→poll→report round trip against an
in-process daemon (report rehydration must be byte-faithful to a local
run), 429/``Retry-After`` honoring against a scripted stub server, the
``POST /compact`` GC endpoint, and ``RemoteShard`` fan-out through
``ShardedOptimizer`` over two live in-process daemons.
"""

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from types import SimpleNamespace

import pytest

from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.graph.signature import structural_signature
from repro.service import (
    BatchFailedError,
    BatchOptimizer,
    ClientError,
    DiskStore,
    FleetOptimizationReport,
    JobResult,
    OptimizationClient,
    OptimizationDaemon,
    OptimizationJob,
    RemoteShard,
    ShardedOptimizer,
)
from repro.service.client import fleet_to_body, report_from_dict
from tests.test_service import small_pipeline

#: analytic backend keeps every client test sub-second
FAST_SPEC = OptimizeSpec(iterations=1, backend="analytic",
                         trace_duration=1.0, trace_warmup=0.25)


def make_fleet(num_jobs=8, distinct=3, seed=3):
    return generate_pipeline_fleet(
        num_jobs=num_jobs, distinct=distinct, seed=seed,
        config=FleetConfig(domain_weights={"vision": 1.0},
                           optimize_spec=FAST_SPEC),
    )


@pytest.fixture
def daemon(test_machine):
    dm = OptimizationDaemon(
        BatchOptimizer(machine=test_machine, executor="serial",
                       spec=FAST_SPEC),
    )
    with dm:
        yield dm


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_mapping_form(self, small_catalog):
        body = fleet_to_body({"a": small_pipeline(small_catalog)})
        assert [j["name"] for j in body["jobs"]] == ["a"]
        assert body["jobs"][0]["pipeline"]["nodes"]
        assert "machine" not in body["jobs"][0]
        assert "spec" not in body

    def test_tuple_form_with_machine(self, small_catalog, test_machine):
        body = fleet_to_body(
            [("a", small_pipeline(small_catalog), test_machine)])
        assert body["jobs"][0]["machine"] == test_machine.to_dict()

    def test_batch_and_job_specs_serialized(self, small_catalog,
                                            test_machine):
        job = OptimizationJob("a", small_pipeline(small_catalog),
                              test_machine, spec=FAST_SPEC)
        body = fleet_to_body([job], spec=FAST_SPEC.replace(iterations=2))
        assert body["spec"]["iterations"] == 2
        assert body["jobs"][0]["spec"] == FAST_SPEC.to_dict()

    def test_loose_knobs_fold_into_spec(self, small_catalog, test_machine):
        """Deprecated granularity/backend attributes survive the wire
        by folding into the job's (or the batch's) OptimizeSpec."""
        entry = SimpleNamespace(
            name="a", pipeline=small_pipeline(small_catalog),
            machine=test_machine, spec=None, granularity=4, backend=None)
        body = fleet_to_body([entry], spec=FAST_SPEC)
        assert body["jobs"][0]["spec"] == \
            FAST_SPEC.with_overrides(granularity=4).to_dict()

    def test_loose_knobs_without_spec_rejected(self, small_catalog,
                                               test_machine):
        entry = SimpleNamespace(
            name="a", pipeline=small_pipeline(small_catalog),
            machine=test_machine, spec=None, granularity=4, backend=None)
        with pytest.raises(ValueError, match="no OptimizeSpec"):
            fleet_to_body([entry])

    def test_long_tuples_rejected(self, small_catalog, test_machine):
        with pytest.raises(ValueError, match="OptimizeSpec instead"):
            fleet_to_body(
                [("a", small_pipeline(small_catalog), test_machine, 4)])


# ----------------------------------------------------------------------
# Round trip against a live in-process daemon
# ----------------------------------------------------------------------
class TestClientRoundTrip:
    def test_optimize_fleet_end_to_end(self, daemon, small_catalog,
                                       test_machine):
        client = OptimizationClient(daemon.url)
        pipe = small_pipeline(small_catalog)
        report = client.optimize_fleet(
            [("a", pipe, test_machine), ("b", pipe, test_machine)],
            spec=FAST_SPEC)
        assert isinstance(report, FleetOptimizationReport)
        assert [j.name for j in report.jobs] == ["a", "b"]
        assert all(isinstance(j, JobResult) for j in report.jobs)
        # Structurally identical jobs share one optimization daemon-side.
        assert report.cache_misses == 1 and report.cache_hits == 1
        assert report.jobs[1].cache_hit
        assert report.jobs[0].provenance["producer"] == "analytic"
        assert math.isfinite(report.jobs[0].speedup)
        # The cache key travels so shard merges dedup correctly.
        assert report.jobs[0].cache_key
        assert report.jobs[0].cache_key == report.jobs[1].cache_key

    def test_rehydration_is_byte_faithful_to_local_run(self, daemon):
        """A rehydrated report's programs re-serialize to exactly the
        JSON a local BatchOptimizer run carries — remote results are
        the same valid programs, not approximations of them."""
        fleet = make_fleet()
        local = BatchOptimizer(executor="serial",
                               spec=FAST_SPEC).optimize_fleet(fleet)
        remote = OptimizationClient(daemon.url).optimize_fleet(fleet)
        assert [j.pipeline_json for j in remote.jobs] == \
               [j.pipeline_json for j in local.jobs]
        assert [j.signature for j in remote.jobs] == \
               [j.signature for j in local.jobs]
        assert [j.decisions for j in remote.jobs] == \
               [j.decisions for j in local.jobs]
        assert [j.speedup for j in remote.jobs] == \
               [j.speedup for j in local.jobs]
        for mine, ref in zip(remote.jobs, local.jobs):
            # The materialized rewrite is a real program, structurally
            # identical to the one the local run produced. (Its
            # signature differs from JobResult.signature, which hashes
            # the *submitted* pipeline.)
            assert structural_signature(mine.pipeline) == \
                structural_signature(ref.pipeline)

    def test_non_finite_floats_rehydrate_as_nan(self):
        data = {
            "cache_hits": 0, "cache_misses": 1,
            "jobs": [{
                "name": "x", "signature": "s", "cache_hit": False,
                "baseline_throughput": None, "optimized_throughput": 1.0,
                "predicted_throughput": None, "bottleneck": "none",
                "decisions": [],
                "pipeline": json.loads(
                    BatchOptimizer(executor="serial", spec=FAST_SPEC)
                    .optimize_fleet(make_fleet(num_jobs=1, distinct=1))
                    .jobs[0].pipeline_json),
            }],
        }
        report = report_from_dict(data)
        assert math.isnan(report.jobs[0].baseline_throughput)
        assert math.isnan(report.jobs[0].predicted_throughput)

    def test_unknown_batch_raises_client_error_404(self, daemon):
        client = OptimizationClient(daemon.url)
        with pytest.raises(ClientError, match="unknown batch") as err:
            client.report("batch-9999")
        assert err.value.status == 404

    def test_daemon_side_400_raises_immediately(self, daemon,
                                                small_catalog,
                                                test_machine):
        client = OptimizationClient(daemon.url)
        pipe = small_pipeline(small_catalog)
        with pytest.raises(ClientError, match="duplicate") as err:
            client.submit([("dup", pipe, test_machine),
                           ("dup", pipe, test_machine)])
        assert err.value.status == 400

    def test_failed_batch_raises_batch_failed(self, daemon, small_catalog,
                                              test_machine):
        def boom(jobs):
            raise RuntimeError("worker exploded")

        daemon.optimizer.optimize_fleet = boom
        client = OptimizationClient(daemon.url)
        with pytest.raises(BatchFailedError, match="worker exploded"):
            client.optimize_fleet(
                [("x", small_pipeline(small_catalog), test_machine)])

    def test_wait_times_out_on_stuck_batch(self, daemon, small_catalog,
                                           test_machine):
        gate = threading.Event()
        original = daemon.optimizer.optimize_fleet

        def gated(jobs):
            assert gate.wait(timeout=60)
            return original(jobs)

        daemon.optimizer.optimize_fleet = gated
        client = OptimizationClient(daemon.url)
        try:
            accepted = client.submit(
                [("x", small_pipeline(small_catalog), test_machine)])
            with pytest.raises(ClientError, match="still"):
                client.wait(accepted["id"], timeout=0.2)
        finally:
            gate.set()
            client.wait(accepted["id"], timeout=60)

    def test_unreachable_daemon_raises_client_error(self):
        client = OptimizationClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ClientError, match="unreachable"):
            client.stats()


# ----------------------------------------------------------------------
# Keep-alive transport: one persistent connection per client
# ----------------------------------------------------------------------
class TestKeepAliveTransport:
    def test_requests_reuse_one_connection(self, daemon):
        client = OptimizationClient(daemon.url)
        client.stats()
        conn, sock = client._conn, client._conn.sock
        client.stats()
        client.health()
        assert client._conn is conn
        assert client._conn.sock is sock  # same socket, no re-handshake

    def test_stale_connection_retried_on_a_fresh_one(self, daemon):
        """A keep-alive socket the server (or an idle timeout) closed
        must be replaced transparently, not surfaced as an error."""
        client = OptimizationClient(daemon.url)
        client.stats()
        client._conn.sock.close()  # simulate the peer dropping the socket
        payload = client.stats()   # retried on a fresh connection
        assert "cache" in payload

    def test_close_is_reopenable_and_context_managed(self, daemon):
        with OptimizationClient(daemon.url) as client:
            client.stats()
            assert client._conn is not None
        assert client._conn is None  # context exit closed the socket
        client.stats()               # lazily reopened on next use
        assert client._conn is not None
        client.close()

    def test_rejects_non_http_schemes(self):
        with pytest.raises(ValueError, match="scheme"):
            OptimizationClient("https://127.0.0.1:9")


# ----------------------------------------------------------------------
# Health endpoints and the RemoteShard readiness gate
# ----------------------------------------------------------------------
class TestReadinessGate:
    def test_health_and_check_ready_on_live_daemon(self, daemon):
        client = OptimizationClient(daemon.url)
        assert client.health() == {"status": "ok"}
        payload = client.check_ready()
        assert payload["ready"] is True

    def test_check_ready_carries_the_daemon_reason(self, daemon):
        daemon._pool.shutdown(wait=True)
        daemon._pool = None
        client = OptimizationClient(daemon.url)
        with pytest.raises(ClientError, match="not ready.*dispatcher pool"):
            client.check_ready()

    def test_remote_shard_refuses_dispatch_to_unready_daemon(
            self, daemon, small_catalog):
        daemon._pool.shutdown(wait=True)
        daemon._pool = None
        shard = RemoteShard(daemon.url, spec=FAST_SPEC)
        with pytest.raises(ClientError, match="not ready"):
            shard.optimize_fleet({"a": small_pipeline(small_catalog)})


# ----------------------------------------------------------------------
# 429 retry behaviour against a scripted stub daemon
# ----------------------------------------------------------------------
class _ScriptedServer:
    """A stub daemon answering ``POST /optimize`` from a fixed script
    of ``(status, headers, payload)`` responses, in order."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = 0
        stub = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):
                pass

            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                self.rfile.read(length)
                stub.requests += 1
                status, headers, payload = stub.script.pop(0)
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for k, v in headers.items():
                    self.send_header(k, v)
                self.end_headers()
                self.wfile.write(body)

        self.server = HTTPServer(("127.0.0.1", 0), Handler)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        self.url = f"http://127.0.0.1:{self.server.server_address[1]}"

    def close(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture
def scripted():
    servers = []

    def start(script):
        server = _ScriptedServer(script)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


ACCEPTED = (202, {}, {"id": "batch-0001", "status": "queued", "jobs": 1})


class TestRetry429:
    def _client(self, url, **kwargs):
        sleeps = []
        client = OptimizationClient(url, sleep=sleeps.append, **kwargs)
        return client, sleeps

    def test_submit_honors_retry_after_then_succeeds(self, scripted,
                                                     small_catalog):
        server = scripted([
            (429, {"Retry-After": "2"}, {"error": "lane full",
                                         "retry_after_seconds": 2}),
            (429, {"Retry-After": "0.5"}, {"error": "lane full"}),
            ACCEPTED,
        ])
        client, sleeps = self._client(server.url)
        accepted = client.submit({"a": small_pipeline(small_catalog)})
        assert accepted["id"] == "batch-0001"
        assert sleeps == [2.0, 0.5]  # exactly the daemon's hints
        assert server.requests == 3

    def test_retries_exhausted_raises_429(self, scripted, small_catalog):
        server = scripted([(429, {"Retry-After": "1"}, {"error": "full"})] * 3)
        client, sleeps = self._client(server.url, max_retries=2)
        with pytest.raises(ClientError) as err:
            client.submit({"a": small_pipeline(small_catalog)})
        assert err.value.status == 429
        assert sleeps == [1.0, 1.0]
        assert server.requests == 3  # initial try + 2 retries

    def test_retry_after_clamped_to_ceiling(self, scripted, small_catalog):
        server = scripted([
            (429, {"Retry-After": "999"}, {"error": "full"}),
            ACCEPTED,
        ])
        client, sleeps = self._client(server.url, max_retry_after=3.0)
        client.submit({"a": small_pipeline(small_catalog)})
        assert sleeps == [3.0]

    def test_retry_hint_fallbacks(self, scripted, small_catalog):
        """No Retry-After header: the JSON hint is used; neither: 1s."""
        server = scripted([
            (429, {}, {"error": "full", "retry_after_seconds": 0.25}),
            (429, {}, {"error": "full"}),
            ACCEPTED,
        ])
        client, sleeps = self._client(server.url)
        client.submit({"a": small_pipeline(small_catalog)})
        assert sleeps == [0.25, 1.0]

    def test_non_429_rejection_never_retries(self, scripted, small_catalog):
        server = scripted([(400, {}, {"error": "bad batch"})])
        client, sleeps = self._client(server.url)
        with pytest.raises(ClientError, match="bad batch"):
            client.submit({"a": small_pipeline(small_catalog)})
        assert sleeps == [] and server.requests == 1


# ----------------------------------------------------------------------
# POST /compact — store GC over HTTP
# ----------------------------------------------------------------------
class TestCompactEndpoint:
    def test_age_gc_over_http(self, tmp_path):
        """Entries at/over the age horizon are evicted, newer survive,
        and a second pass removes nothing (idempotent)."""
        tick = [100.0]
        dm = OptimizationDaemon(
            BatchOptimizer(executor="serial", spec=FAST_SPEC,
                           store=DiskStore(tmp_path),
                           clock=lambda: tick[0]),
        )
        with dm:
            client = OptimizationClient(dm.url)
            old = client.optimize_fleet(make_fleet(seed=3))   # stamped t=100
            tick[0] = 180.0
            new = client.optimize_fleet(make_fleet(seed=9))   # stamped t=180
            total = old.cache_misses + new.cache_misses
            assert client.stats()["cache"]["store_entries"] == total
            tick[0] = 200.0
            # Horizon 50s at t=200: the t=100 entries (age 100) go, the
            # t=180 entries (age 20) stay.
            payload = client.compact(50)
            assert payload["removed"] == old.cache_misses
            assert payload["store_entries"] == new.cache_misses
            assert client.compact(50)["removed"] == 0  # idempotent
            # The survivors still serve hits.
            again = client.optimize_fleet(make_fleet(seed=9))
            assert again.cache_misses == 0

    def test_bad_horizon_is_400(self, daemon):
        client = OptimizationClient(daemon.url)
        for bad in (-1, "soon", None, True):
            with pytest.raises(ClientError) as err:
                client.compact(bad)
            assert err.value.status == 400

    def test_store_without_compact_is_501(self, test_machine):
        class MinimalStore:
            def __init__(self):
                self._d = {}

            def get(self, key):
                return self._d.get(key)

            def put(self, key, entry):
                self._d[key] = entry

            def keys(self):
                return tuple(self._d)

            def __len__(self):
                return len(self._d)

        dm = OptimizationDaemon(
            BatchOptimizer(machine=test_machine, executor="serial",
                           spec=FAST_SPEC, store=MinimalStore()))
        with dm:
            with pytest.raises(ClientError) as err:
                OptimizationClient(dm.url).compact(60)
            assert err.value.status == 501


# ----------------------------------------------------------------------
# RemoteShard fan-out over two live daemons (in-process HTTP)
# ----------------------------------------------------------------------
class TestRemoteShardFanOut:
    def test_matches_single_batch_optimizer(self):
        fleet = make_fleet(num_jobs=10, distinct=4)
        local = BatchOptimizer(executor="serial",
                               spec=FAST_SPEC).optimize_fleet(fleet)
        daemons = [
            OptimizationDaemon(
                BatchOptimizer(executor="serial", spec=FAST_SPEC)).start()
            for _ in range(2)
        ]
        try:
            sharded = ShardedOptimizer(
                [RemoteShard(dm.url) for dm in daemons])
            merged = sharded.optimize_fleet(fleet)
        finally:
            for dm in daemons:
                dm.close()
        assert [j.name for j in merged.jobs] == [j.name for j in local.jobs]
        assert [j.signature for j in merged.jobs] == \
               [j.signature for j in local.jobs]
        assert [j.speedup for j in merged.jobs] == \
               [j.speedup for j in local.jobs]
        # Signature-affine shards + cache-key dedup in merge: the
        # fleet-wide arithmetic equals the single-service run.
        assert merged.cache_misses == local.cache_misses
        assert merged.cache_hits == local.cache_hits

    def test_multisource_fleet_round_trips_byte_identical(self):
        """Acceptance: a zip/interleave fleet survives the full service
        path. The local ``BatchOptimizer`` report, a single daemon's
        report, and a 2-shard ``RemoteShard`` merged report must agree
        on names/signatures/speedups/bottlenecks, and every job's
        rewritten program must be **byte-identical** JSON across all
        three — multi-source DAGs serialize canonically on the wire.
        """
        fleet = generate_pipeline_fleet(
            num_jobs=8, distinct=4, seed=21,
            config=FleetConfig(
                domain_weights={"multimodal": 0.5, "rl_replay": 0.5},
                optimize_spec=FAST_SPEC),
        )
        local = BatchOptimizer(executor="serial",
                               spec=FAST_SPEC).optimize_fleet(fleet)
        # The fleet must actually exercise both merge kinds.
        assert any('"zip"' in j.pipeline_json for j in local.jobs)
        assert any('"interleave_datasets"' in j.pipeline_json
                   for j in local.jobs)
        daemons = [
            OptimizationDaemon(
                BatchOptimizer(executor="serial", spec=FAST_SPEC)).start()
            for _ in range(3)
        ]
        try:
            # One daemon serving the whole fleet...
            single = OptimizationClient(daemons[0].url).optimize_fleet(fleet)
            # ...and a cold 2-shard fan-out of the same fleet.
            merged = ShardedOptimizer(
                [RemoteShard(dm.url) for dm in daemons[1:]]
            ).optimize_fleet(fleet)
        finally:
            for dm in daemons:
                dm.close()
        for remote in (single, merged):
            assert [j.name for j in remote.jobs] == \
                   [j.name for j in local.jobs]
            assert [j.signature for j in remote.jobs] == \
                   [j.signature for j in local.jobs]
            assert [j.speedup for j in remote.jobs] == \
                   [j.speedup for j in local.jobs]
            assert [j.bottleneck for j in remote.jobs] == \
                   [j.bottleneck for j in local.jobs]
            assert [j.pipeline_json for j in remote.jobs] == \
                   [j.pipeline_json for j in local.jobs]
            assert remote.cache_misses == local.cache_misses
            assert remote.cache_hits == local.cache_hits

    def test_remote_shard_stats_match_contract(self, daemon):
        shard = RemoteShard(daemon.url)
        shard.optimize_fleet(make_fleet(num_jobs=4, distinct=2))
        stats = shard.stats()
        # The same mapping an in-process BatchOptimizer.stats() reports.
        assert set(stats) >= {"cache_hits", "cache_misses",
                              "cache_hit_rate", "store_entries"}
        assert stats["cache_hits"] + stats["cache_misses"] == 4

    def test_remote_shard_spec_conflict_rejected(self, daemon):
        client = OptimizationClient(daemon.url)
        with pytest.raises(ValueError, match="not both"):
            RemoteShard(client, spec=FAST_SPEC)
