"""Figure 12: absolute end-to-end throughputs, plus MultiBoxSSD(48).

Paper (samples/s): ResNet18 325/9365/10306/12740; ResNetLinear
309/9230/9600/14728; SSD 139/2377/2434/3268; Transformer 859/860/860/859;
TransformerSmall 220/979/983/2700; GNMT 5598/5600/5605/5606. The
MultiBoxSSD(48) row (half the cores) shows Plumber's caching gains grow
when resources shrink.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import end_to_end
from repro.analysis.tables import format_table
from repro.host import setup_c
from repro.workloads import get_workload

#: simulation-heavy module: excluded from the fast-path CI job
pytestmark = pytest.mark.slow_sim

PAPER_ABSOLUTE = {
    "resnet18": (325, 9365, 10306, 12740),
    "resnet_linear": (309, 9230, 9600, 14728),
    "ssd": (139, 2377, 2434, 3268),
    "rcnn": (14, 81, 82, 66),
    "transformer": (859, 860, 860, 859),
    "transformer_small": (220, 979, 983, 2700),
    "gnmt": (5598, 5600, 5605, 5606),
}


def run_all():
    machine = setup_c()
    rows = {
        name: end_to_end(get_workload(name, end_to_end=True), machine)
        for name in PAPER_ABSOLUTE
    }
    # MultiBoxSSD(48): half the cores (§C.1).
    rows["ssd_48"] = end_to_end(
        get_workload("ssd", end_to_end=True), machine.with_cores(48)
    )
    return rows


def test_fig12_absolute_throughput(once):
    rows = once(run_all)

    table_rows = []
    for name, row in rows.items():
        paper = PAPER_ABSOLUTE.get(name, ("-",) * 4)
        table_rows.append(
            (name, f"{row.naive:.0f}", f"{row.autotune:.0f}",
             f"{row.heuristic:.0f}", f"{row.plumber:.0f}",
             "/".join(str(p) for p in paper))
        )
    table = format_table(
        ("workload", "naive", "AUTOTUNE", "HEURISTIC", "Plumber",
         "paper (n/a/h/p)"),
        table_rows,
        title="Figure 12 — absolute samples/second (Setup C)",
    )
    emit("fig12_absolute", table)

    # Model-rate anchors hold exactly: these configurations saturate the
    # accelerator, so absolute numbers match the paper's.
    assert rows["resnet18"].plumber == pytest.approx(12740, rel=0.03)
    assert rows["resnet_linear"].plumber == pytest.approx(14728, rel=0.03)
    assert rows["transformer"].plumber == pytest.approx(860, rel=0.03)
    assert rows["gnmt"].plumber == pytest.approx(5600, rel=0.03)
    assert rows["transformer_small"].plumber == pytest.approx(2700, rel=0.05)

    # Storage-bound heuristic ResNet18 lands near the paper's ~10.3k
    # (the 11k img/s cloud-storage bound minus overheads).
    assert rows["resnet18"].heuristic == pytest.approx(10306, rel=0.15)

    # MultiBoxSSD(48): with half the cores the CPU-bound baselines drop
    # while Plumber's cached pipeline holds its rate (paper: 2019-2075
    # vs 3323) — the relative caching gain grows.
    full, half = rows["ssd"], rows["ssd_48"]
    assert half.heuristic < full.heuristic
    gain_full = full.plumber / max(full.autotune, full.heuristic)
    gain_half = half.plumber / max(half.autotune, half.heuristic)
    assert gain_half >= gain_full * 0.95
