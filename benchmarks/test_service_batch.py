"""Fleet-scale batch optimization through the repro.service subsystem.

The paper's fleet study (§3) is observational: tens of thousands of jobs,
most of them input-bound for software reasons. This benchmark closes the
loop the paper motivates — drive a generated fleet of named pipelines
through Plumber's trace→analyze→optimize cycle as a *service*:

* ≥20 jobs stamped from a handful of templates run through a worker
  pool, with the signature-keyed cache collapsing duplicates;
* per-job results are bit-identical to serial ``Plumber.optimize``
  (the simulator is deterministic, which makes result caching sound);
* the aggregate report gives the per-job speedups, the bottleneck
  histogram, and the cache hit rate.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.plumber import Plumber
from repro.fleet.analysis import speedup_distribution
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import BatchOptimizer

#: simulation-heavy module: excluded from the fast-path CI job
pytestmark = pytest.mark.slow_sim

NUM_JOBS = 24
DISTINCT = 6
SEED = 7
#: vision jobs trace cheaply (low element rates); the tuning mix still
#: spans naive/partial/tuned configurations
DOMAINS = FleetConfig(domain_weights={"vision": 1.0})

SERVICE_KWARGS = dict(
    iterations=1,
    trace_duration=3.0,
    trace_warmup=0.5,
)


@pytest.fixture(scope="module")
def fleet():
    return generate_pipeline_fleet(
        num_jobs=NUM_JOBS, distinct=DISTINCT, seed=SEED, config=DOMAINS
    )


@pytest.fixture(scope="module")
def report(fleet):
    svc = BatchOptimizer(executor="thread", max_workers=4, **SERVICE_KWARGS)
    return svc.optimize_fleet(fleet)


class TestServiceBatch:
    def test_fleet_scale_with_cache_hits(self, fleet, report, once):
        """≥20 jobs through the pool; duplicates served from the cache."""
        assert len(report.jobs) == NUM_JOBS >= 20
        assert report.cache_misses == DISTINCT
        assert report.cache_hits == NUM_JOBS - DISTINCT
        assert report.cache_hit_rate == pytest.approx(
            (NUM_JOBS - DISTINCT) / NUM_JOBS
        )
        once(lambda: None)  # timing handled by the module fixture
        emit("service_batch_jobs", report.to_table())
        emit("service_batch_summary", report.summary_table())

    def test_results_identical_to_serial_plumber(self, fleet, report):
        """Determinism: the pool + cache path reproduces serial optimize
        exactly, decision log and throughputs included."""
        for job in fleet[:DISTINCT]:
            plumber = Plumber(
                job.machine,
                trace_duration=SERVICE_KWARGS["trace_duration"],
                trace_warmup=SERVICE_KWARGS["trace_warmup"],
            )
            serial = plumber.optimize(
                job.pipeline, iterations=SERVICE_KWARGS["iterations"]
            )
            got = report.job(job.name)
            assert got.decisions == tuple(serial.decisions), job.name
            assert got.optimized_throughput == serial.model.observed_throughput
            assert got.baseline_throughput == serial.baseline_throughput

    def test_optimization_helps_the_untuned_tail(self, fleet, report):
        """Obs. 2's promise: the naive/partial tail gets real speedups."""
        untuned = [
            report.job(j.name).speedup
            for j in fleet
            if j.config in ("naive", "partial")
        ]
        assert untuned, "fleet should contain untuned jobs"
        stats = speedup_distribution(untuned)
        assert stats.count > 0
        assert stats.maximum >= 1.5
        assert stats.geomean >= 1.0

    def test_bottleneck_histogram_covers_fleet(self, report):
        hist = report.bottlenecks()
        assert sum(hist.values()) == NUM_JOBS
        # Jobs duplicated from one template share a bottleneck label.
        assert len(hist) <= DISTINCT + 1
