"""Vectorized-vs-reference simulator wallclock on the cache-heavy seeds.

The tentpole claim: the vectorized engine runs the populate-then-serve
cache shape (the trace backend's hottest workload) at least ~3x faster
than the retained scalar reference engine *while emitting byte-identical
traces*. This benchmark measures both engines on the golden corpus's
``cache_heavy`` family, pinned to ``granularity=3`` over a 20-simulated-
second window so the event count — and therefore wallclock — scales with
the duration instead of being absorbed by the executor's auto-chunking.

Methodology (single-core CI runners are noisy; the reference engine's
wallclock wanders ±10-15% between invocations while the vectorized
engine's is stable):

* ``time.process_time`` (CPU time, immune to scheduler preemption),
* engines interleaved within each round (drift hits both sides),
* min-of-``ROUNDS`` per engine (the minimum is the least-noise
  estimate of intrinsic cost).

Each seed's first round also asserts the two engines' trace JSON is
identical — the perf claim is only meaningful under the equivalence
contract, so the benchmark refuses to report a speedup for diverging
engines.

Results go to ``benchmarks/results/BENCH_sim_speed.json`` (uploaded as
a CI artifact by the ``simspeed`` job) plus the usual text table. The
assertion floor is 2.5x — below the ~3x typical measurement by a noise
margin, so a real regression (dropping to ~1x) fails loudly while
runner jitter does not flake.
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, emit
from repro.core.trace import PipelineTrace
from repro.host.machine import setup_a
from repro.runtime.executor import RunConfig, run_pipeline
from tests.engine_equivalence import cache_heavy

pytestmark = pytest.mark.slow_sim

#: timing rounds per engine per seed (min is reported)
ROUNDS = 5
#: run window: granularity pinned so work scales with duration
CFG = dict(duration=20.0, warmup=0.5, granularity=3)
#: regression floor: typical measured speedup is ~3x; 2.5x leaves a
#: noise margin without letting a real regression pass
MIN_SPEEDUP = 2.5

SEEDS = [
    ("cache_heavy_0", lambda: cache_heavy(0)),
    ("cache_heavy_1", lambda: cache_heavy(1, read_cpu=0.0, map_cpu=5e-4)),
    ("cache_heavy_2", lambda: cache_heavy(2, par=2, map_cpu=3e-4)),
    ("cache_heavy_3", lambda: cache_heavy(3)),
]


def _measure(build) -> dict:
    """Interleaved min-of-ROUNDS CPU time per engine for one seed."""
    times = {"reference": [], "vectorized": []}
    traces = {}
    for _ in range(ROUNDS):
        for engine in ("reference", "vectorized"):
            pipeline = build()
            config = RunConfig(engine=engine, **CFG)
            machine = setup_a()
            t0 = time.process_time()
            result = run_pipeline(pipeline, machine, config)
            times[engine].append(time.process_time() - t0)
            if engine not in traces:
                traces[engine] = PipelineTrace.from_run(result).to_json()
    # No speedup claim without the equivalence contract holding on this
    # exact workload (the golden/property suites cover it more broadly).
    assert traces["vectorized"] == traces["reference"]
    ref = min(times["reference"])
    vec = min(times["vectorized"])
    return {
        "reference_seconds": ref,
        "vectorized_seconds": vec,
        "speedup": ref / vec,
        "rounds": ROUNDS,
    }


class TestSimSpeed:
    def test_vectorized_speedup_on_cache_heavy_seeds(self):
        payload = {"config": CFG, "seeds": {}}
        for name, build in SEEDS:
            payload["seeds"][name] = _measure(build)

        rows = [
            (name, f"{m['reference_seconds']:.3f}",
             f"{m['vectorized_seconds']:.3f}", f"{m['speedup']:.2f}x")
            for name, m in payload["seeds"].items()
        ]
        emit("BENCH_sim_speed", _table(rows))
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_sim_speed.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")

        for name, m in payload["seeds"].items():
            assert m["speedup"] >= MIN_SPEEDUP, (
                f"{name}: vectorized engine only {m['speedup']:.2f}x "
                f"faster than reference (floor {MIN_SPEEDUP}x); "
                f"ref={m['reference_seconds']:.3f}s "
                f"vec={m['vectorized_seconds']:.3f}s"
            )


def _table(rows) -> str:
    from repro.analysis.tables import format_table

    return format_table(
        ["seed", "reference s", "vectorized s", "speedup"],
        rows,
        title="simulator engine wallclock (min of "
              f"{ROUNDS}, process_time)",
    )
