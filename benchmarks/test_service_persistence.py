"""Persistent-service benchmark: disk-store round trips and warm restart.

The service items from ROADMAP turn optimization into a repeatable
service; this benchmark measures the two costs that make persistence
worth it:

* a cold fleet optimization populating a :class:`DiskStore`, vs the
  same fleet optimized by a *fresh* service instance against the warm
  store — the warm pass must be pure store reads (100% hit rate, the
  ≥90% acceptance bar with margin);
* raw ``DiskStore`` put/get round-trip latency at fleet-entry sizes.

Analytic backend throughout: the point is store economics, not
simulation cost, so the whole module stays on the fast-path CI job.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import BatchOptimizer, DiskStore

NUM_JOBS = 40
DISTINCT = 8
SEED = 13

SPEC = OptimizeSpec(iterations=1, backend="analytic",
                    trace_duration=1.0, trace_warmup=0.25)


@pytest.fixture(scope="module")
def fleet():
    return generate_pipeline_fleet(
        num_jobs=NUM_JOBS, distinct=DISTINCT, seed=SEED,
        config=FleetConfig(optimize_spec=SPEC),
    )


class TestServicePersistence:
    def test_warm_restart_serves_from_disk(self, fleet, tmp_path_factory,
                                           once):
        cache_dir = tmp_path_factory.mktemp("store")

        t0 = time.perf_counter()
        cold_report = BatchOptimizer(
            executor="serial", spec=SPEC, store=DiskStore(cache_dir)
        ).optimize_fleet(fleet)
        cold_s = time.perf_counter() - t0

        def warm():
            service = BatchOptimizer(executor="serial", spec=SPEC,
                                     store=DiskStore(cache_dir))
            return service.optimize_fleet(fleet)

        t0 = time.perf_counter()
        warm_report = once(warm)
        warm_s = time.perf_counter() - t0

        assert cold_report.cache_misses == DISTINCT
        assert warm_report.cache_misses == 0
        assert warm_report.cache_hit_rate == 1.0 >= 0.9  # acceptance bar
        # Warm restart skips every optimization; it must be much cheaper
        # than the cold pass even with the analytic fast path.
        speedup = cold_s / max(warm_s, 1e-9)
        rows = [
            ("fleet jobs", NUM_JOBS),
            ("distinct templates", DISTINCT),
            ("cold pass (populate store)", f"{cold_s * 1e3:.1f} ms"),
            ("warm pass (fresh process)", f"{warm_s * 1e3:.1f} ms"),
            ("warm hit rate", f"{warm_report.cache_hit_rate:.0%}"),
            ("cold/warm speedup", f"{speedup:.1f}x"),
        ]
        emit("BENCH_service_persistence",
             format_table(("metric", "value"), rows,
                          title="Disk-backed result store: warm restart"))
        assert speedup > 1.0

    def test_store_round_trip_latency(self, tmp_path_factory, benchmark):
        store = DiskStore(tmp_path_factory.mktemp("rtt"))
        entry = {"result": {"pipeline": "x" * 4096,
                            "decisions": ["d"] * 8,
                            "baseline_throughput": 1.0,
                            "optimized_throughput": 2.0},
                 "provenance": {"producer": "analytic", "created_at": 0.0}}

        def round_trip():
            for i in range(32):
                store.put(f"key{i:02d}", entry)
            assert all(store.get(f"key{i:02d}") is not None
                       for i in range(32))

        benchmark.pedantic(round_trip, rounds=3, iterations=1)
        assert len(store) == 32
