"""Figure 3: CDF of per-step Next latency across the fleet.

Paper: "for 92% of jobs Next latency exceeds 50µs, for 62% of jobs it
exceeds 1ms, and for 16% of jobs it exceeds 100ms."
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.fleet import FleetConfig, generate_fleet, summarize
from repro.fleet.analysis import latency_cdf


def run_experiment():
    jobs = generate_fleet(FleetConfig(num_jobs=3000, seed=3))
    return jobs, summarize(jobs)


def test_fig03_fleet_latency(once):
    jobs, summary = once(run_experiment)

    rows = [
        (">50us", 0.92, summary.frac_over_50us),
        (">1ms", 0.62, summary.frac_over_1ms),
        (">100ms", 0.16, summary.frac_over_100ms),
    ]
    table = format_table(
        ("threshold", "paper fraction", "measured fraction"),
        rows,
        title="Figure 3 — fraction of jobs whose mean Next latency exceeds t",
    )
    cdf = latency_cdf(jobs, points=11)
    cdf_table = format_table(
        ("latency_s", "cdf"), [(f"{l:.2e}", f"{q:.2f}") for l, q in cdf],
        title="Figure 3 — latency CDF",
    )
    emit("fig03_fleet_latency", table + "\n\n" + cdf_table)

    # Obs. 1 shape: the three headline quantiles land in loose bands.
    assert summary.frac_over_50us == pytest.approx(0.92, abs=0.07)
    assert summary.frac_over_1ms == pytest.approx(0.62, abs=0.14)
    assert summary.frac_over_100ms == pytest.approx(0.16, abs=0.08)
    assert summary.frac_over_50us > summary.frac_over_1ms > summary.frac_over_100ms
