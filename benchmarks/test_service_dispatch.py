"""Distributed-dispatch benchmark: concurrent shard fan-out and the
HTTP transport overhead.

The sharding layer's scaling claim is that fleet wallclock tracks the
*slowest* shard, not the sum of shards — shard dispatch must overlap.
This benchmark measures:

* concurrent vs. notional-sequential dispatch on a delayed-shard
  fixture (every shard sleeps a fixed latency before optimizing, so
  overlap is directly visible in wallclock), and
* the per-job overhead of going through the daemon HTTP path
  (``RemoteShard`` → serialize → POST → poll → rehydrate) versus
  calling ``BatchOptimizer`` in process.

Analytic backend throughout, so the whole module stays on the fast-path
CI job: the point is dispatch mechanics, not simulation cost.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import (
    BatchOptimizer,
    OptimizationClient,
    OptimizationDaemon,
    RemoteShard,
    ShardedOptimizer,
)

NUM_JOBS = 24
DISTINCT = 6
SEED = 17
SHARDS = 3
SHARD_DELAY_S = 0.25

SPEC = OptimizeSpec(iterations=1, backend="analytic",
                    trace_duration=1.0, trace_warmup=0.25)


@pytest.fixture(scope="module")
def fleet():
    return generate_pipeline_fleet(
        num_jobs=NUM_JOBS, distinct=DISTINCT, seed=SEED,
        config=FleetConfig(optimize_spec=SPEC),
    )


class _DelayedShard:
    """A shard with a fixed dispatch latency (a slow host / WAN hop)."""

    def __init__(self, delay: float) -> None:
        self.inner = BatchOptimizer(executor="serial", spec=SPEC)
        self.delay = delay
        self.busy_seconds = 0.0

    def optimize_fleet(self, jobs):
        start = time.perf_counter()
        time.sleep(self.delay)
        report = self.inner.optimize_fleet(jobs)
        self.busy_seconds = time.perf_counter() - start
        return report

    def stats(self):
        return self.inner.stats()


class TestShardDispatch:
    def test_concurrent_dispatch_beats_sequential_sum(self, fleet, once):
        shards = [_DelayedShard(SHARD_DELAY_S) for _ in range(SHARDS)]
        sharded = ShardedOptimizer(shards)

        start = time.perf_counter()
        report = once(sharded.optimize_fleet, fleet)
        wallclock = time.perf_counter() - start

        occupied = [s for s in shards if s.busy_seconds > 0]
        sequential = sum(s.busy_seconds for s in occupied)
        slowest = max(s.busy_seconds for s in occupied)
        rows = [
            ("fleet jobs", NUM_JOBS),
            ("occupied shards", f"{len(occupied)}/{SHARDS}"),
            ("per-shard latency", f"{SHARD_DELAY_S * 1e3:.0f} ms"),
            ("sequential dispatch (sum)", f"{sequential * 1e3:.0f} ms"),
            ("concurrent dispatch (measured)", f"{wallclock * 1e3:.0f} ms"),
            ("slowest shard", f"{slowest * 1e3:.0f} ms"),
            ("overlap speedup", f"{sequential / wallclock:.2f}x"),
        ]
        emit("BENCH_service_dispatch",
             format_table(("metric", "value"), rows,
                          title="Sharded dispatch: concurrent fan-out"))
        assert len(occupied) >= 2
        assert report.cache_hits + report.cache_misses == NUM_JOBS
        # The scaling claim: wallclock tracks the slowest shard, not
        # the sum of shards.
        assert wallclock < sequential

    def test_http_transport_overhead_per_job(self, fleet, once):
        local_service = BatchOptimizer(executor="serial", spec=SPEC)
        start = time.perf_counter()
        local = local_service.optimize_fleet(fleet)
        local_s = time.perf_counter() - start

        with OptimizationDaemon(
            BatchOptimizer(executor="serial", spec=SPEC)
        ) as daemon:
            shard = RemoteShard(daemon.url)
            start = time.perf_counter()
            remote = once(shard.optimize_fleet, fleet)
            remote_s = time.perf_counter() - start

            # Per-request transport cost, before/after keep-alive: the
            # client holds one persistent connection; closing it after
            # every request reproduces the old one-TCP-handshake-per-
            # request behaviour on identical requests.
            client = OptimizationClient(daemon.url)
            client.stats()  # warm the route once
            requests = 200
            start = time.perf_counter()
            for _ in range(requests):
                client.stats()
                client.close()
            fresh_ms = (time.perf_counter() - start) / requests * 1e3
            start = time.perf_counter()
            for _ in range(requests):
                client.stats()
            reused_ms = (time.perf_counter() - start) / requests * 1e3
            client.close()

        assert [j.name for j in remote.jobs] == [j.name for j in local.jobs]
        assert [j.speedup for j in remote.jobs] == \
               [j.speedup for j in local.jobs]
        overhead_ms = (remote_s - local_s) / NUM_JOBS * 1e3
        rows = [
            ("fleet jobs", NUM_JOBS),
            ("in-process optimize_fleet", f"{local_s * 1e3:.1f} ms"),
            ("HTTP submit→poll→rehydrate", f"{remote_s * 1e3:.1f} ms"),
            ("transport overhead / job", f"{overhead_ms:.2f} ms"),
            ("per-request, fresh connection", f"{fresh_ms:.3f} ms"),
            ("per-request, keep-alive", f"{reused_ms:.3f} ms"),
            ("keep-alive saving / request",
             f"{fresh_ms - reused_ms:.3f} ms "
             f"({fresh_ms / reused_ms:.2f}x)"),
        ]
        emit("BENCH_service_http_overhead",
             format_table(("metric", "value"), rows,
                          title="Daemon HTTP transport overhead"))
        # The HTTP hop must stay cheap relative to even one simulated
        # trace (hundreds of ms): a loose sanity bound, not a race.
        assert overhead_ms < 250
        # Keep-alive must never make the common poll loop slower; the
        # generous factor keeps this off the flaky-timing list.
        assert reused_ms < fresh_ms * 1.5
