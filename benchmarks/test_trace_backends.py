"""Trace acquisition cost per fleet domain: simulate vs analytic.

ROADMAP items 2 and 3 in one benchmark: event-budget granularity keeps
the simulator's cost bounded, and the analytic backend removes the
event loop entirely. For one representative fleet job per §3 domain
(vision / nlp / rl) this measures wallclock per trace under both
backends, checks they agree on the LP bottleneck, and requires the
analytic fast path to beat simulation by >= 10x on the NLP job (the
domain whose µs-scale op costs made full-fleet optimization
prohibitive).

Results are emitted as a table under ``benchmarks/results/`` and as a
machine-readable artifact ``BENCH_trace_backends.json`` at the repo
root, so the perf trajectory of trace acquisition is tracked across
PRs.
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.core.lp import solve_allocation
from repro.core.plumber import Plumber
from repro.core.rates import build_model
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet

DOMAINS = ("vision", "nlp", "rl")
BACKENDS = ("simulate", "analytic")
SEED = 3
#: acceptance bar: analytic trace acquisition speedup on the NLP job
NLP_SPEEDUP_FLOOR = 10.0

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_trace_backends.json"


def _domain_job(domain: str):
    return generate_pipeline_fleet(
        num_jobs=1, distinct=1, seed=SEED,
        config=FleetConfig(domain_weights={domain: 1.0}),
    )[0]


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for domain in DOMAINS:
        job = _domain_job(domain)
        for backend in BACKENDS:
            plumber = Plumber(job.machine, backend=backend)
            # Best of three guards the wallclock assertions against a
            # one-off GC pause / noisy CI neighbour; the analytic trace
            # is µs-scale, so the repeats cost nothing.
            seconds = math.inf
            for _ in range(3):
                start = time.perf_counter()
                trace = plumber.trace(job.pipeline)
                seconds = min(seconds, time.perf_counter() - start)
            lp = solve_allocation(build_model(trace))
            rows.append({
                "domain": domain,
                "backend": backend,
                "trace_seconds": seconds,
                "root_throughput": trace.root_throughput,
                "bottleneck": lp.bottleneck,
            })
    return rows


def _by(rows, domain, backend):
    return next(
        r for r in rows if r["domain"] == domain and r["backend"] == backend
    )


class TestTraceBackendBench:
    def test_backends_agree_on_bottleneck(self, measurements):
        for domain in DOMAINS:
            sim = _by(measurements, domain, "simulate")
            ana = _by(measurements, domain, "analytic")
            assert ana["bottleneck"] == sim["bottleneck"], domain

    def test_analytic_is_fast_for_every_domain(self, measurements):
        for domain in DOMAINS:
            ana = _by(measurements, domain, "analytic")
            # Closed form: O(nodes), must be far under a millisecond-ish
            # budget even on slow CI hosts.
            assert ana["trace_seconds"] < 0.05, domain

    def test_nlp_speedup_at_least_10x(self, measurements, once):
        """The acceptance bar: the µs-cost domain is >= 10x cheaper."""
        sim = _by(measurements, "nlp", "simulate")
        ana = _by(measurements, "nlp", "analytic")
        speedup = sim["trace_seconds"] / ana["trace_seconds"]
        assert speedup >= NLP_SPEEDUP_FLOOR
        once(lambda: None)  # timing handled by the module fixture

    def test_emit_table_and_artifact(self, measurements):
        table_rows = []
        artifact = {"benchmark": "trace_backends", "results": []}
        for domain in DOMAINS:
            sim = _by(measurements, domain, "simulate")
            ana = _by(measurements, domain, "analytic")
            speedup = sim["trace_seconds"] / max(ana["trace_seconds"], 1e-9)
            table_rows.append((
                domain,
                f"{sim['trace_seconds'] * 1e3:.1f}",
                f"{ana['trace_seconds'] * 1e3:.2f}",
                f"{speedup:.0f}x",
                sim["bottleneck"],
                "yes" if ana["bottleneck"] == sim["bottleneck"] else "NO",
            ))
            artifact["results"].append({
                "domain": domain,
                "simulate_seconds": sim["trace_seconds"],
                "analytic_seconds": ana["trace_seconds"],
                "speedup": speedup,
                "bottleneck_simulate": sim["bottleneck"],
                "bottleneck_analytic": ana["bottleneck"],
                "root_throughput_simulate": sim["root_throughput"],
                "root_throughput_analytic": ana["root_throughput"],
            })
        table = format_table(
            ("domain", "simulate ms", "analytic ms", "speedup",
             "bottleneck", "agree"),
            table_rows,
            title="Trace acquisition cost by backend (one fleet job/domain)",
        )
        emit("trace_backends", table)
        BENCH_PATH.write_text(json.dumps(artifact, indent=2) + "\n")
        assert BENCH_PATH.exists()
