"""§5.3 memory (cache) microbenchmarks.

Paper: Plumber predicts dataset sizes exactly at the source (148GB
ImageNet, 20GB COCO, 1-2GB WMT); subsampling ~1% of files gives ~1%
error; materialized sizes propagate through ops (unfused ImageNet decode
amplifies ~6x: 793GB estimated of a true 842GB); fused decode+crop can
only cache at the source; RCNN only at disk level; MultiBoxSSD's
post-filter cache is smaller than the decode output.
"""

import math

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.core.cache_planner import plan_cache_greedy
from repro.core.plumber import Plumber
from repro.core.rewriter import set_parallelism
from repro.host import setup_b, setup_c
from repro.io.catalogs import (
    coco_catalog,
    imagenet_catalog,
    wmt16_catalog,
    wmt17_catalog,
)
from repro.workloads import (
    build_resnet,
    build_resnet_fused,
    build_rcnn,
    build_ssd,
)
from repro.workloads import get_workload

SCALE = 1.0  # size estimation runs on the FULL catalogs


def _model(build_fn, machine, duration=3.0, parallelism=8, **kwargs):
    pipe = build_fn(parallelism=parallelism, **kwargs)
    plumber = Plumber(machine, trace_duration=duration, trace_warmup=0.5)
    return plumber.model(pipe)


def run_size_estimates():
    machine = setup_b()
    out = {}
    for name in ("resnet", "rcnn", "ssd", "transformer", "gnmt"):
        wl = get_workload(name)
        model = _model(wl.builder, machine, catalog=wl.catalog_factory())
        est = next(iter(model.source_estimates.values()))
        out[name] = (est, wl.catalog_factory().total_bytes)
    return out


def test_sec53_source_sizes_from_subsample(once):
    estimates = once(run_size_estimates)
    rows = []
    for name, (est, truth) in estimates.items():
        err = abs(est.estimated_bytes - truth) / truth
        rows.append(
            (name, f"{truth / 1e9:.1f}", f"{est.estimated_bytes / 1e9:.1f}",
             f"{100 * est.sample_fraction:.1f}%", f"{err:.1%}")
        )
    table = format_table(
        ("dataset", "true GB", "estimated GB", "files sampled", "error"),
        rows,
        title="§5.3 — source size estimation (paper: ~1% error at 1% sample)",
    )
    emit("sec53_source_sizes", table)

    for name, (est, truth) in estimates.items():
        assert est.estimated_bytes == pytest.approx(truth, rel=0.06), name
        # The trace genuinely subsampled big datasets (a few % of files).
        if truth > 5e9:
            assert est.sample_fraction < 0.6, name


def test_sec53_subsample_error_shrinks_with_tracing_time(once):
    """Longer tracing sees more files and tightens the estimate — the
    "knob for refining estimates at the expense of tuning time"."""
    machine = setup_b()
    truth = imagenet_catalog().total_bytes

    def error_at(duration):
        model = _model(build_resnet, machine, duration=duration,
                       parallelism=4)
        est = model.source_estimates["interleave_tfrecord"]
        return est.sample_fraction, abs(est.estimated_bytes - truth) / truth

    short_frac, short_err = once(error_at, 1.0)
    long_frac, long_err = error_at(6.0)
    assert long_frac > short_frac
    assert long_err < 0.05


def test_sec53_decode_amplification(once):
    """Unfused ImageNet: decode output ~5.7x the source (paper: 793GB of
    a true 842GB, 6% error with 60s of profiling)."""
    machine = setup_b()
    model = once(_model, build_resnet, machine)
    src = model.rates["interleave_tfrecord"].materialized_bytes
    dec = model.rates["map_decode"].materialized_bytes
    assert dec == pytest.approx(5.7 * src, rel=0.05)
    assert dec == pytest.approx(5.7 * 148e9, rel=0.1)
    emit(
        "sec53_amplification",
        format_table(
            ("point", "materialized GB", "paper GB"),
            [
                ("source (records)", f"{src / 1e9:.0f}", "148"),
                ("after decode", f"{dec / 1e9:.0f}", "842 true / 793 est."),
            ],
            title="§5.3 — ImageNet materialization propagation",
        ),
    )


def test_sec53_fused_pipeline_caches_at_source_only(once):
    """Figure 11 / §5.3: a fused decode+crop is random, so caching is
    only possible at the source."""
    machine = setup_c()  # 300 GB: decode output would fit only unfused
    fused_model = once(_model, build_resnet_fused, machine)
    cacheable = {r.name for r in fused_model.cache_candidates()}
    # Only source-side materialization remains (the parse output is the
    # record stream itself); nothing past the fused op is cacheable.
    assert cacheable <= {"interleave_tfrecord", "map_parse"}
    assert "map_decode" not in cacheable

    unfused_model = _model(build_resnet, machine)
    unfused_cacheable = {r.name for r in unfused_model.cache_candidates()}
    assert "map_decode" in unfused_cacheable


def test_sec53_rcnn_disk_level_only(once):
    """RCNN's randomized UDF follows the parse: only source-side caching."""
    model = once(_model, build_rcnn, setup_c())
    cacheable = {r.name for r in model.cache_candidates()}
    assert cacheable <= {"interleave_tfrecord", "map_parse"}
    decision = plan_cache_greedy(model)
    assert decision is not None
    assert decision.target in ("interleave_tfrecord", "map_parse")
    assert decision.materialized_bytes == pytest.approx(20e9, rel=0.1)


def test_sec53_ssd_post_filter_cache(once):
    """MultiBoxSSD materializes after filtering: ~97GB (of COCO's 20GB),
    and the filter trims it by <1% relative to the resize output."""
    model = once(_model, build_ssd, setup_c())
    filt = model.rates["filter_boxes"]
    resize = model.rates["map_resize"]
    assert filt.cacheable
    assert filt.materialized_bytes == pytest.approx(97e9, rel=0.1)
    reduction = 1 - filt.materialized_bytes / resize.materialized_bytes
    assert 0 < reduction < 0.01
    decision = plan_cache_greedy(model)
    assert decision.target == "filter_boxes"
