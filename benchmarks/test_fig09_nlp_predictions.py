"""Figure 9: Transformer and GNMT predictions on Setup A.

Paper: NLP operations are so small that iterator overhead dominates,
causing idle bubbles the CPU-time model cannot see — "both pipelines are
predicted to be 2–8x faster than they actually end up being";
Transformer's bottleneck is its sequential FilterDataset, GNMT's is
ShuffleAndRepeatDataset.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import sequential_tuning
from repro.analysis.tables import format_table
from repro.core.bottleneck import throughput_estimates
from repro.core.plumber import Plumber
from repro.host import setup_a
from repro.workloads import get_workload

#: simulation-heavy module: excluded from the fast-path CI job
pytestmark = pytest.mark.slow_sim

STEPS = 8
SCALE = 0.02


def run_workload(name):
    machine = setup_a()
    pipe = get_workload(name).build(scale=SCALE)
    run = sequential_tuning(pipe, machine, steps=STEPS, tuner="plumber")
    # Final LP-reported bottleneck via a fresh trace of the tuned state.
    return run


def _render(name, run):
    rows = [
        (s.step, f"{s.observed:.0f}", f"{s.lp_estimate:.0f}",
         f"{s.lp_estimate / max(s.observed, 1e-9):.1f}x")
        for s in run.steps
    ]
    return format_table(
        ("step", "Observed mb/s", "Est. Max (LP)", "gap"),
        rows,
        title=f"Figure 9 — {name} predictions (Setup A)",
    )


@pytest.mark.parametrize("name", ["transformer", "gnmt"])
def test_fig09_prediction_gap(once, name):
    run = once(run_workload, name)
    emit(f"fig09_{name}", _render(name, run))

    # The CPU-only LP overshoots observed throughput by 2-8x throughout
    # (the iterator-overhead "idle bubbles" are invisible to it).
    gaps = [
        s.lp_estimate / s.observed for s in run.steps if s.observed > 0
    ]
    assert max(gaps) >= 2.0, gaps
    assert all(g <= 9.0 for g in gaps), gaps
    # Parallelism barely helps: the final observed rate is within 2x of
    # the naive start (sequential overhead-bound stages cap it).
    assert run.final_observed <= run.steps[0].observed * 2.5


def test_fig09_bottleneck_is_sequential_stage(once):
    """Plumber points at the sequential ops: Transformer's filter and
    GNMT's ShuffleAndRepeat operate far below their CPU-rate bound."""
    machine = setup_a()

    def analyze(name):
        pipe = get_workload(name).build(scale=SCALE)
        plumber = Plumber(machine, trace_duration=1.5, trace_warmup=0.5)
        return plumber.model(pipe)

    t_model = once(analyze, "transformer")
    g_model = analyze("gnmt")

    # Effective (busy-time) rates of the sequential stages sit far below
    # their CPU-only rates — the signature of overhead-bound ops.
    t_filter = t_model.rates["filter_length"]
    assert t_filter.effective_rate_per_core <= t_filter.rate_per_core / 2
    g_snr = g_model.rates["shuffle_and_repeat"]
    assert g_snr.effective_rate_per_core <= g_snr.rate_per_core / 2
