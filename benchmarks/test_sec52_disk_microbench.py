"""§5.2 disk microbenchmarks.

Paper: with a token-bucket limiter, Plumber predicts ResNet's I/O-bound
throughput within ~5% from 50 to 300 MB/s (the compute bound starts
there); on a real HDD the ResNet bound is within 15%, on NVMe the
compute bound is hit first; MultiBoxSSD is ~25x more I/O-bound than
RCNN's compute demand allows at fixed CPU (they share dataset and batch
size, so their per-minibatch I/O load is identical).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.core.disk_planner import io_bound_throughput
from repro.core.plumber import Plumber
from repro.core.rewriter import set_parallelism
from repro.host import setup_b
from repro.host.disk import hdd_st4000, nvme_p3600, token_bucket
from repro.runtime.executor import run_pipeline
from repro.workloads import get_workload

MB = 1e6
SCALE = 0.1


def _tuned_resnet(machine, bandwidth_spec):
    """ResNet with generous CPU parallelism so only I/O can bind."""
    pipe = get_workload("resnet").build(scale=SCALE)
    plan = {n.name: 12 for n in pipe.tunables()}
    plan["interleave_tfrecord"] = 16
    return set_parallelism(pipe, plan), machine.with_disk(bandwidth_spec)


def run_token_bucket_sweep():
    machine = setup_b()
    results = []
    for mbps in (50, 100, 200, 300, 500):
        pipe, m = _tuned_resnet(machine, token_bucket(mbps * MB))
        plumber = Plumber(m, trace_duration=10.0, trace_warmup=4.0)
        model = plumber.model(pipe)
        predicted = io_bound_throughput(model.bytes_per_minibatch, mbps * MB)
        observed = model.observed_throughput
        results.append((mbps, predicted, observed))
    return results


def test_sec52_token_bucket_predictions(once):
    results = once(run_token_bucket_sweep)
    rows = [
        (mbps, f"{pred:.2f}", f"{obs:.2f}", f"{abs(pred - obs) / obs:.1%}")
        for mbps, pred, obs in results
    ]
    table = format_table(
        ("MB/s", "predicted mb/s", "observed mb/s", "error"),
        rows,
        title="§5.2 — ResNet token-bucket sweep (paper: within 5% to 300MB/s)",
    )
    emit("sec52_token_bucket", table)

    # The prediction holds while the pipeline is genuinely I/O bound;
    # "when the compute bound begins" (~300 MB/s here, as in the paper)
    # the observation detaches from the pure-I/O line.
    compute_cap = results[-1][2]
    for mbps, pred, obs in results:
        if pred <= 0.9 * compute_cap:  # I/O-bound region
            assert pred == pytest.approx(obs, rel=0.12), (mbps, pred, obs)
    mbps, pred, obs = results[-1]
    assert obs < pred * 0.98


def test_sec52_io_load_arithmetic(once):
    """"6.9 minibatches per 100MB/s" for 128 x ~110KB records."""
    pipe = get_workload("resnet").build(scale=SCALE)
    machine = setup_b().with_disk(token_bucket(100 * MB))
    plumber = Plumber(machine, trace_duration=1.5, trace_warmup=0.4)
    model = once(plumber.model, pipe)
    assert model.bytes_per_minibatch == pytest.approx(128 * 115e3, rel=0.05)
    assert io_bound_throughput(model.bytes_per_minibatch, 100 * MB) == (
        pytest.approx(6.8, rel=0.05)
    )


def test_sec52_hdd_and_nvme(once):
    """HDD binds ResNet near the prediction; NVMe leaves it compute-bound."""
    machine = setup_b()

    def measure(spec):
        pipe, m = _tuned_resnet(machine, spec)
        result = run_pipeline(pipe, m, duration=3.0, warmup=1.0, trace=False)
        predicted = io_bound_throughput(
            128 * 115e3, spec.max_bandwidth
        )
        return predicted, result.throughput

    hdd_pred, hdd_obs = once(measure, hdd_st4000())
    nvme_pred, nvme_obs = measure(nvme_p3600())
    emit(
        "sec52_hdd_nvme",
        format_table(
            ("disk", "predicted mb/s", "observed mb/s"),
            [
                ("HDD ST4000", f"{hdd_pred:.1f}", f"{hdd_obs:.1f}"),
                ("NVMe P3600", f"{nvme_pred:.1f}", f"{nvme_obs:.1f}"),
            ],
            title="§5.2 — real-drive bounds (paper HDD err 15%, NVMe compute-bound)",
        ),
    )
    # HDD: I/O bound within 15%.
    assert hdd_obs == pytest.approx(hdd_pred, rel=0.15)
    # NVMe: observed falls well short of the disk bound (compute-bound).
    assert nvme_obs < nvme_pred * 0.6


def test_sec52_ssd_more_io_bound_than_rcnn(once):
    """Same dataset and batch size -> same I/O load per minibatch, but
    MultiBoxSSD's faster CPU side makes it far more I/O-sensitive."""
    plumber = Plumber(setup_b(), trace_duration=1.5, trace_warmup=0.4)
    ssd_model = once(
        plumber.model, get_workload("ssd").build(scale=SCALE)
    )
    rcnn_model = plumber.model(get_workload("rcnn").build(scale=SCALE))
    assert ssd_model.bytes_per_minibatch == pytest.approx(
        rcnn_model.bytes_per_minibatch, rel=0.1
    )
    # CPU demand per minibatch: RCNN >> SSD (factor ~14 here; paper's
    # "25x more I/O bound" compares their I/O-vs-CPU balance).
    ssd_cpu = sum(1 / r.rate_per_core for r in ssd_model.cpu_nodes())
    rcnn_cpu = sum(1 / r.rate_per_core for r in rcnn_model.cpu_nodes())
    assert rcnn_cpu > 5 * ssd_cpu
