"""§C.3: the cost of profiling.

Paper (HEURISTIC configuration, tracer on vs off): Setup A averages ~5%
slowdown across the five pipelines, driven entirely by Transformer/GNMT
(19%/21%); Setup B is worse (~10% average, 17%/36% on text) because its
timer syscalls cost more. Tracing overhead grows as per-element work
shrinks.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.baselines.heuristic import heuristic_config
from repro.baselines.naive import naive_config
from repro.host import setup_a, setup_b
from repro.runtime.executor import run_pipeline
from repro.workloads import MICROBENCH_WORKLOADS, get_workload

#: simulation-heavy module: excluded from the fast-path CI job
pytestmark = pytest.mark.slow_sim

SCALES = {"resnet": 0.1, "rcnn": 0.25, "ssd": 0.25,
          "transformer": 0.02, "gnmt": 0.02}


def run_setup(machine):
    slowdowns = {}
    for name in MICROBENCH_WORKLOADS:
        pipe = heuristic_config(
            naive_config(get_workload(name).build(scale=SCALES[name])),
            machine,
        )
        off = run_pipeline(pipe, machine, duration=2.5, warmup=0.8,
                           trace=False)
        on = run_pipeline(pipe, machine, duration=2.5, warmup=0.8,
                          trace=True)
        slowdowns[name] = 1.0 - on.throughput / off.throughput
    return slowdowns


@pytest.mark.parametrize("label,machine_factory,text_floor,vision_cap", [
    ("setup_a", setup_a, 0.08, 0.08),
    ("setup_b", setup_b, 0.12, 0.12),
])
def test_appc3_tracing_overhead(once, label, machine_factory,
                                text_floor, vision_cap):
    slowdowns = once(run_setup, machine_factory())

    rows = [(name, f"{s:.1%}") for name, s in slowdowns.items()]
    table = format_table(
        ("workload", "tracing slowdown"),
        rows,
        title=(
            f"§C.3 — tracer on/off slowdown ({label}; paper A: ~5% avg, "
            "19-21% text; B: ~10% avg, 17-36% text)"
        ),
    )
    emit(f"appc3_overhead_{label}", table)

    # Vision pipelines barely notice the tracer...
    for name in ("resnet", "rcnn", "ssd"):
        assert slowdowns[name] <= vision_cap, (name, slowdowns[name])
    # ...text pipelines pay a large per-element tax.
    for name in ("transformer", "gnmt"):
        assert slowdowns[name] >= text_floor, (name, slowdowns[name])
    # Overhead grows as per-element work shrinks.
    assert min(slowdowns["transformer"], slowdowns["gnmt"]) > max(
        slowdowns["resnet"], slowdowns["ssd"]
    )


def test_appc3_setup_b_pays_more_on_text(once):
    """Setup B's pricier timers hit the text pipelines hardest."""
    a = once(run_setup, setup_a())
    b = run_setup(setup_b())
    assert b["gnmt"] >= a["gnmt"]
    assert b["transformer"] >= a["transformer"] * 0.9
