"""Figure 13: MultiBoxSSD one-step deviations from Plumber's choice.

Paper: sampling one-step deviations from Plumber's recommended action
shows local optimality except at bottleneck transitions, where several
nodes are similarly bottlenecked and the ranking is ambiguous;
MultiBoxSSD alternates between bottlenecks every few steps.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.baselines.naive import naive_config
from repro.core.bottleneck import rank_bottlenecks
from repro.core.plumber import Plumber
from repro.core.rewriter import set_parallelism
from repro.host import setup_a
from repro.workloads import get_workload

#: simulation-heavy module: excluded from the fast-path CI job
pytestmark = pytest.mark.slow_sim

STEPS = 10
SCALE = 0.25


def run_experiment():
    machine = setup_a()
    plumber = Plumber(machine, trace_duration=2.0, trace_warmup=0.6)
    current = naive_config(get_workload("ssd").build(scale=SCALE))
    history = []
    for _ in range(STEPS):
        model = plumber.model(current)
        ranked = rank_bottlenecks(model)
        chosen = ranked[0]
        alternatives = [r.name for r in ranked[1:4]]
        outcomes = {}
        for cand in [chosen.name] + alternatives:
            node = current.node(cand)
            trial = set_parallelism(
                current, {cand: node.effective_parallelism + 1}
            )
            outcomes[cand] = plumber.model(trial).observed_throughput
        history.append((chosen.name, outcomes))
        current = set_parallelism(
            current, {chosen.name: current.node(chosen.name).effective_parallelism + 1}
        )
    return history


def test_fig13_local_optimality(once):
    history = once(run_experiment)

    rows = []
    optimal, near_optimal = 0, 0
    for step, (chosen, outcomes) in enumerate(history):
        best = max(outcomes.values())
        chosen_rate = outcomes[chosen]
        if chosen_rate >= best - 1e-9:
            optimal += 1
        if chosen_rate >= 0.97 * best:
            near_optimal += 1
        rows.append(
            (step, chosen, f"{chosen_rate:.1f}", f"{best:.1f}",
             f"{chosen_rate / best:.3f}")
        )
    table = format_table(
        ("step", "Plumber's pick", "picked mb/s", "best deviation mb/s",
         "ratio"),
        rows,
        title="Figure 13 — MultiBoxSSD one-step deviations (Setup A)",
    )
    emit("fig13_ssd_perturbations", table)

    # Local optimality except at transitions: nearly every step is
    # within 3% of the best one-step deviation.
    assert near_optimal >= STEPS - 2, rows
    assert optimal >= STEPS // 2

    # The bottleneck alternates between operators (the "confusion at the
    # steps"): more than one distinct node gets chosen.
    chosen_nodes = {c for c, _ in history}
    assert len(chosen_nodes) >= 2, chosen_nodes
