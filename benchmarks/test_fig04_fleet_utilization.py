"""Figure 4: CPU vs memory-bandwidth utilization of fleet jobs.

Paper: jobs with pipeline latency of 100ms or more average ~11% CPU and
~18% memory-bandwidth utilization; "the majority of jobs do not saturate
host resources, suggesting bottlenecks in software" (Obs. 2), and jobs
in the 50µs–100ms band utilize more of the host than the >100ms band.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.fleet import FleetConfig, generate_fleet, summarize


def run_experiment():
    jobs = generate_fleet(FleetConfig(num_jobs=3000, seed=3))
    return jobs, summarize(jobs)


def test_fig04_fleet_utilization(once):
    jobs, summary = once(run_experiment)

    rows = [
        (b.label, b.jobs, f"{b.mean_cpu:.2f}", f"{b.mean_membw:.2f}")
        for b in summary.bands
    ]
    table = format_table(
        ("latency band", "jobs", "mean CPU util", "mean mem-bw util"),
        rows,
        title=(
            "Figure 4 — host utilization by Next-latency band "
            "(paper >100ms band: CPU 0.11, mem-bw 0.18)"
        ),
    )
    emit("fig04_fleet_utilization", table)

    worst = summary.band(">100ms")
    mid = summary.band("50us-100ms")
    assert worst.jobs > 50
    # Obs. 2: heavily input-bound jobs do not saturate host hardware.
    assert worst.mean_cpu < 0.5
    assert worst.mean_membw < 0.5
    # The >100ms cluster uses no more CPU than the mid-latency cluster.
    assert worst.mean_cpu <= mid.mean_cpu + 0.02
    # The majority of ALL jobs sit below 50% on both axes.
    below = np.mean([
        j.cpu_utilization < 0.5 and j.membw_utilization < 0.5 for j in jobs
    ])
    assert below > 0.5
