"""Figure 8: RCNN's heavy UDF parallelism on Setup A.

Paper: the heavy map is transparently parallelized — "1 parallelism uses
nearly 3 cores" — so over-allocation compounds into thread
oversubscription and baselines overshoot peak (Obs. 5, ~10% drops);
"only 4–5 parallelism is necessary"; the LP overestimates by up to 4x
but stays bounded, while AUTOTUNE oscillates.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import baseline_throughput, sequential_tuning
from repro.analysis.tables import format_table
from repro.baselines.naive import naive_config
from repro.core.plumber import Plumber
from repro.core.rewriter import set_parallelism
from repro.host import setup_a
from repro.workloads import get_workload

STEPS = 8
SCALE = 0.25


def run_experiment():
    machine = setup_a()
    pipe = get_workload("rcnn").build(scale=SCALE)
    run = sequential_tuning(pipe, machine, steps=STEPS, tuner="plumber")
    heuristic = baseline_throughput(naive_config(pipe), machine, "heuristic")
    autotune = baseline_throughput(naive_config(pipe), machine, "autotune")
    # Sweep heavy-map parallelism directly to expose the cliff.
    sweep = {}
    for p in (1, 3, 5, 8, 16):
        tuned = set_parallelism(naive_config(pipe), {"map_heavy": p})
        from repro.runtime.executor import run_pipeline

        sweep[p] = run_pipeline(
            tuned, machine, duration=3.0, warmup=1.0
        ).throughput
    return run, heuristic, autotune, sweep


def test_fig08_rcnn(once):
    run, heuristic, autotune, sweep = once(run_experiment)

    rows = [
        (s.step, f"{s.observed:.2f}", f"{s.lp_estimate:.2f}",
         f"{s.autotune_estimate:.2f}", s.target)
        for s in run.steps
    ]
    table = format_table(
        ("step", "Observed mb/s", "Est. Max (LP)", "Est. AUTOTUNE", "target"),
        rows,
        title="Figure 8 — RCNN on Setup A (heavy UDF internal parallelism 3)",
    )
    sweep_table = format_table(
        ("heavy parallelism", "threads (x3)", "mb/s"),
        [(p, 3 * p, f"{v:.2f}") for p, v in sweep.items()],
        title="Figure 8 — heavy-map parallelism sweep",
    )
    emit("fig08_rcnn", table + "\n\n" + sweep_table)

    # "The LP overestimates peak performance by 4x" but no worse: every
    # per-step prediction stays within 4.5x of the final achieved rate.
    for s in run.steps:
        assert s.lp_estimate <= run.final_observed * 4.5, s
    # "Only 4–5 parallelism is necessary": p=5 gets within 10% of p=8.
    assert sweep[5] >= 0.9 * sweep[8]
    # Over-allocation stops paying: p=16 (48 threads on 16 cores) is no
    # better than p=5, and measurably below the no-penalty ideal.
    assert sweep[16] <= sweep[5] * 1.10
    # Plumber's converged throughput is competitive with over-allocation.
    assert run.final_observed >= 0.85 * max(heuristic, autotune)
