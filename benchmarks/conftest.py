"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table/figure from the paper's evaluation,
prints the same rows/series, asserts the qualitative claims, and writes
its table to ``benchmarks/results/<name>.txt`` so the output survives
pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under ``benchmarks/results``."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
