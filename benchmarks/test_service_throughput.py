"""Sustained-throughput + saturation benchmark for the daemon serving
path, measured from the daemon's **own** ``GET /metrics``.

Two phases against live daemon processes:

* **Sustained**: N client threads run submit → poll → report loops on a
  cache-warm fleet for a fixed window. Client-side we count completed
  round trips (req/s); server-side we then scrape ``/metrics`` and read
  the daemon's route-latency histograms — the p50/p99 the benchmark
  reports are the daemon's own streaming-quantile sketches, not client
  stopwatch numbers, so the observability subsystem is itself under
  test: its numbers must agree with what the clients experienced.
* **Saturation**: a one-job admission lane is hammered by more
  concurrent submitters than it can hold. Every client-observed 429
  must reappear in ``repro_daemon_admission_rejections_total`` — the
  rejection counter and the wire protocol cannot disagree.

Results go to ``benchmarks/results/BENCH_service_throughput.json``
(machine-readable, uploaded as a CI artifact by the ``throughput``
job) plus the usual text table.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, emit
from repro.analysis.tables import format_table
from repro.core.spec import OptimizeSpec
from repro.fleet.generator import FleetConfig, generate_pipeline_fleet
from repro.service import (
    BatchOptimizer,
    OptimizationClient,
    OptimizationDaemon,
)
from repro.service.errors import ClientError

NUM_CLIENTS = 4
SUSTAIN_SECONDS = 3.0
NUM_JOBS = 4
DISTINCT = 2
SEED = 23

SPEC = OptimizeSpec(iterations=1, backend="analytic",
                    trace_duration=1.0, trace_warmup=0.25)


@pytest.fixture(scope="module")
def fleet():
    return generate_pipeline_fleet(
        num_jobs=NUM_JOBS, distinct=DISTINCT, seed=SEED,
        config=FleetConfig(optimize_spec=SPEC),
    )


def _quantiles(snapshot: dict, name: str, route: str) -> dict:
    """p50/p99/count for one route's latency series in a /metrics
    JSON snapshot."""
    for sample in snapshot[name]["samples"]:
        if sample["labels"].get("route") == route:
            value = sample["value"]
            return {"count": value["count"], "p50": value["p50"],
                    "p99": value["p99"]}
    raise AssertionError(f"no {name} series for route {route!r}")


class TestServiceThroughput:
    def test_sustained_and_saturation(self, fleet, once):
        payload = once(self._run, fleet)
        emit("BENCH_service_throughput", self._table(payload))
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_service_throughput.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")

        sustained = payload["sustained"]
        # The serving path kept up: every round trip completed, and the
        # warm (cache-hit) path sustains a non-trivial rate even under
        # a deliberately loose floor — this is a smoke bound for CI
        # runners, not a performance claim.
        assert sustained["errors"] == 0
        assert sustained["completed_batches"] >= NUM_CLIENTS
        assert sustained["batches_per_second"] > 1.0
        # The daemon's own sketches are coherent and non-degenerate.
        for route in ("optimize", "jobs"):
            q = sustained["daemon_request_seconds"][route]
            assert q["count"] >= sustained["completed_batches"]
            assert 0 < q["p50"] <= q["p99"]
        # Served batches (daemon-counted) match client round trips.
        assert sustained["daemon_batches_done"] == \
            sustained["completed_batches"] + 1  # + the warmup batch
        # The lanes drained back to idle.
        assert all(v == 0 for v in sustained["lane_in_flight"].values())

        saturation = payload["saturation"]
        # The hammer actually saturated the one-slot lane...
        assert saturation["client_429s"] >= 1
        assert saturation["accepted"] >= 1
        # ...and the admission counter agrees with the wire exactly.
        assert saturation["daemon_rejections"]["analytic"] == \
            saturation["client_429s"]

    # -- phases --------------------------------------------------------
    def _run(self, fleet) -> dict:
        return {
            "sustained": self._sustained_phase(fleet),
            "saturation": self._saturation_phase(fleet),
        }

    def _sustained_phase(self, fleet) -> dict:
        daemon = OptimizationDaemon(
            BatchOptimizer(executor="serial", spec=SPEC)).start()
        try:
            # Warm the result store: the sustained loop then measures
            # the serving path (HTTP + admission + store hit), not
            # optimizer wallclock.
            OptimizationClient(daemon.url).optimize_fleet(fleet)

            completed = [0] * NUM_CLIENTS
            errors = [0] * NUM_CLIENTS
            deadline = time.perf_counter() + SUSTAIN_SECONDS

            def hammer(idx: int) -> None:
                client = OptimizationClient(daemon.url)
                while time.perf_counter() < deadline:
                    try:
                        report = client.optimize_fleet(fleet, timeout=60)
                        assert report.cache_misses == 0
                        completed[idx] += 1
                    except Exception:  # noqa: BLE001 - counted, asserted 0
                        errors[idx] += 1
                client.close()

            threads = [
                threading.Thread(target=hammer, args=(i,), daemon=True)
                for i in range(NUM_CLIENTS)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            elapsed = time.perf_counter() - start

            # The daemon reads its own telemetry back over the wire.
            status, snapshot, _ = OptimizationClient(daemon.url)._request(
                "GET", "/metrics?format=json")
            assert status == 200
            batches_done = sum(
                s["value"]
                for s in snapshot["repro_daemon_batches_total"]["samples"]
                if s["labels"].get("status") == "done"
            )
            return {
                "clients": NUM_CLIENTS,
                "window_seconds": round(elapsed, 3),
                "completed_batches": sum(completed),
                "errors": sum(errors),
                "batches_per_second": round(sum(completed) / elapsed, 2),
                "jobs_per_second": round(
                    sum(completed) * NUM_JOBS / elapsed, 2),
                "daemon_request_seconds": {
                    route: _quantiles(
                        snapshot, "repro_daemon_request_seconds", route)
                    for route in ("optimize", "jobs", "report")
                },
                "daemon_batches_done": int(batches_done),
                "lane_in_flight": {
                    s["labels"]["lane"]: s["value"]
                    for s in snapshot[
                        "repro_daemon_lane_in_flight"]["samples"]
                },
            }
        finally:
            daemon.close(wait=False)

    def _saturation_phase(self, fleet) -> dict:
        class SlowOptimizer(BatchOptimizer):
            def optimize_fleet(self, jobs):
                time.sleep(0.4)
                return super().optimize_fleet(jobs)

        daemon = OptimizationDaemon(
            SlowOptimizer(executor="serial", spec=SPEC),
            max_analytic_jobs=NUM_JOBS,  # exactly one batch in flight
        ).start()
        try:
            outcomes: list = [None] * (NUM_CLIENTS * 2)

            def submit(idx: int) -> None:
                # max_retries=0: a 429 surfaces instead of being
                # absorbed, so we can count them on the client side.
                client = OptimizationClient(daemon.url, max_retries=0)
                try:
                    accepted = client.submit(fleet, spec=SPEC)
                    client.wait(accepted["id"], timeout=60)
                    outcomes[idx] = "accepted"
                except ClientError as exc:
                    outcomes[idx] = ("429" if exc.status == 429
                                     else f"error:{exc}")
                finally:
                    client.close()

            threads = [
                threading.Thread(target=submit, args=(i,), daemon=True)
                for i in range(len(outcomes))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)

            status, snapshot, _ = OptimizationClient(daemon.url)._request(
                "GET", "/metrics?format=json")
            assert status == 200
            rejections = {
                s["labels"]["lane"]: int(s["value"])
                for s in snapshot[
                    "repro_daemon_admission_rejections_total"]["samples"]
                if s["labels"]
            }
            return {
                "concurrent_submitters": len(outcomes),
                "lane_capacity_jobs": NUM_JOBS,
                "accepted": outcomes.count("accepted"),
                "client_429s": outcomes.count("429"),
                "other_outcomes": [o for o in outcomes
                                   if o not in ("accepted", "429")],
                "daemon_rejections": rejections,
            }
        finally:
            daemon.close(wait=False)

    # -- reporting -----------------------------------------------------
    @staticmethod
    def _table(payload: dict) -> str:
        s, sat = payload["sustained"], payload["saturation"]
        opt = s["daemon_request_seconds"]["optimize"]
        jobs = s["daemon_request_seconds"]["jobs"]
        rows = [
            ("client threads", s["clients"]),
            ("window", f"{s['window_seconds']:.1f} s"),
            ("batch round trips", s["completed_batches"]),
            ("sustained batches/s", s["batches_per_second"]),
            ("sustained jobs/s", s["jobs_per_second"]),
            ("daemon POST /optimize p50",
             f"{opt['p50'] * 1e3:.2f} ms"),
            ("daemon POST /optimize p99",
             f"{opt['p99'] * 1e3:.2f} ms"),
            ("daemon GET /jobs p50", f"{jobs['p50'] * 1e3:.2f} ms"),
            ("daemon GET /jobs p99", f"{jobs['p99'] * 1e3:.2f} ms"),
            ("saturation submitters", sat["concurrent_submitters"]),
            ("saturation accepted", sat["accepted"]),
            ("saturation 429s (client)", sat["client_429s"]),
            ("saturation rejections (daemon)",
             sat["daemon_rejections"].get("analytic", 0)),
        ]
        return format_table(
            ("metric", "value"), rows,
            title="Daemon serving path: sustained + saturation "
                  "(latencies from the daemon's own /metrics)")
