"""Figure 10: end-to-end relative speedups on the TPUv3-8 host (Setup C).

Paper (relative to naive): ResNet18 39.2x, ResNetLinear 47.6x,
MultiBoxSSD 23.6x, RCNN ~5-6x, Transformer/GNMT 1.0x (model-bound),
TransformerSmall 12.3x. "Apart from RCNN, Plumber surpasses strong
baselines by adding caching, yielding speedups of up to 47x compared to
naive and 50% compared to tuners."
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import EndToEndRow, end_to_end
from repro.analysis.tables import format_table
from repro.host import setup_c
from repro.workloads import END_TO_END_WORKLOADS, get_workload

#: simulation-heavy module: excluded from the fast-path CI job
pytestmark = pytest.mark.slow_sim

WORKLOADS = list(END_TO_END_WORKLOADS)

PAPER_RELATIVE = {
    "resnet18": (1.0, 28.8, 31.7, 39.2),
    "resnet_linear": (1.0, 29.8, 31.0, 47.6),
    "ssd": (1.0, 17.2, 17.6, 23.6),
    "rcnn": (1.0, 5.9, 6.0, 4.8),
    "transformer": (1.0, 1.0, 1.0, 1.0),
    "transformer_small": (1.0, 4.4, 4.5, 12.3),
    "gnmt": (1.0, 1.0, 1.0, 1.0),
}


def run_all():
    machine = setup_c()
    return {
        name: end_to_end(get_workload(name, end_to_end=True), machine)
        for name in WORKLOADS
    }


@pytest.fixture(scope="module")
def rows():
    return run_all()


def test_fig10_relative_speedups(once, rows):
    once(lambda: None)
    table_rows = []
    for name, row in rows.items():
        rel = row.relative()
        paper = PAPER_RELATIVE.get(name)
        table_rows.append(
            (name, f"{rel.autotune:.1f}", f"{rel.heuristic:.1f}",
             f"{rel.plumber:.1f}",
             "/".join(f"{p:g}" for p in paper[1:]) if paper else "-")
        )
    table = format_table(
        ("workload", "AUTOTUNE x", "HEURISTIC x", "Plumber x",
         "paper (at/heur/plumber)"),
        table_rows,
        title="Figure 10 — end-to-end speedup over naive (Setup C)",
    )
    emit("fig10_end_to_end", table)

    r18 = rows["resnet18"].relative()
    # Caching lifts Plumber decisively past the naive configuration...
    assert r18.plumber >= 25.0
    # ...and past both strong tuners (the paper's headline >50% is on
    # ResNetLinear; require a clear win on both ResNet variants).
    assert r18.plumber >= 1.15 * max(r18.autotune, r18.heuristic)
    rlin = rows["resnet_linear"].relative()
    assert rlin.plumber >= 1.3 * max(rlin.autotune, rlin.heuristic)

    # MultiBoxSSD: the post-filter cache removes decode load (Obs. 9).
    ssd = rows["ssd"].relative()
    assert ssd.plumber >= 1.2 * max(ssd.autotune, ssd.heuristic)

    # NLP MLPerf pipelines are model-bound: every tuner ties.
    for name in ("transformer", "gnmt"):
        rel = rows[name].relative()
        assert rel.autotune == pytest.approx(rel.plumber, rel=0.05)
        assert rel.heuristic == pytest.approx(rel.plumber, rel=0.05)

    # TransformerSmall: only aggressive caching reaches peak (2.5-3x gap
    # between Plumber and the strong baselines).
    ts = rows["transformer_small"].relative()
    assert ts.plumber >= 2.0 * max(ts.autotune, ts.heuristic)


def test_fig10_resnet50_model_bound(once, rows):
    """ResNet-50's 8k img/s model cap: Plumber cannot beat the baselines
    that already saturate it (paper: 24x over naive, ties otherwise)."""
    once(lambda: None)
    row = rows["resnet50"]
    assert row.plumber == pytest.approx(8000.0, rel=0.05)
    assert row.heuristic == pytest.approx(row.plumber, rel=0.1)
    assert row.plumber / row.naive >= 20.0
