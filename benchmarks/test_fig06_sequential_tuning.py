"""Figure 6: sequential tuning of ResNet on Setups A and B.

Paper: Plumber's bottleneck finder converges to peak 2–3x faster than a
random walk (Obs. 3); AUTOTUNE and HEURISTIC reach equivalent peaks;
Setup B peaks only ~1.2x above A despite 2x the cores.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import baseline_throughput, sequential_tuning
from repro.analysis.tables import format_table
from repro.baselines.naive import naive_config
from repro.host import setup_a, setup_b
from repro.workloads import get_workload

#: simulation-heavy module: excluded from the fast-path CI job
pytestmark = pytest.mark.slow_sim

STEPS = 30
SCALE = 0.05


def run_setup(machine):
    pipe = get_workload("resnet").build(scale=SCALE)
    plumber = sequential_tuning(pipe, machine, steps=STEPS, tuner="plumber")
    random = sequential_tuning(pipe, machine, steps=STEPS, tuner="random", seed=1)
    autotune = baseline_throughput(naive_config(pipe), machine, "autotune",
                                   io_parallelism=10)
    heuristic = baseline_throughput(naive_config(pipe), machine, "heuristic")
    return plumber, random, autotune, heuristic


def _render(label, plumber, random, autotune, heuristic):
    rows = []
    for p_step, r_step in zip(plumber.steps, random.steps):
        rows.append(
            (p_step.step, f"{p_step.observed:.1f}", f"{r_step.observed:.1f}",
             f"{autotune:.1f}", f"{heuristic:.1f}")
        )
    return format_table(
        ("step", "Plumber mb/s", "Random mb/s", "AUTOTUNE", "HEURISTIC"),
        rows,
        title=f"Figure 6 — ResNet sequential tuning ({label})",
    )


@pytest.mark.parametrize("label,machine_factory", [
    ("setup_a", setup_a), ("setup_b", setup_b),
])
def test_fig06_resnet_tuning(once, label, machine_factory):
    machine = machine_factory()
    plumber, random, autotune, heuristic = once(run_setup, machine)
    emit(f"fig06_{label}", _render(label, plumber, random, autotune, heuristic))

    peak = max(plumber.final_observed, heuristic, autotune)
    # Obs. 3: "Plumber outperforms random walks by 2-3x" at equal steps.
    assert plumber.final_observed >= 2.0 * random.final_observed
    # Plumber converges within the step budget: 80% of the baselines'
    # peak is reached well before the last step.
    p_steps = plumber.steps_to_reach(0.8 * peak)
    assert p_steps is not None and p_steps <= STEPS - 2, p_steps
    # Plumber approaches the strong baselines' peak.
    assert plumber.final_observed >= 0.8 * peak
    # Most Plumber steps target the JPEG decode bottleneck (§5.1).
    decode_steps = sum(1 for s in plumber.steps if s.target == "map_decode")
    assert decode_steps >= STEPS // 3


def test_fig06_setup_b_modest_gain_over_a(once):
    """2x the cores but lower per-core rate: ~1.2-1.5x peak gain."""
    pipe = get_workload("resnet").build(scale=SCALE)
    a = baseline_throughput(naive_config(pipe), setup_a(), "heuristic")
    b = baseline_throughput(naive_config(pipe), setup_b(), "heuristic")
    once(lambda: None)
    assert 1.0 <= b / a <= 1.7, (a, b)
