"""Figure 7: throughput predictions during ResNet tuning.

Paper: before optimization begins the LP bounds performance within ~2x
and the gap tightens over time (Obs. 4); the "local" estimate oscillates
because it cannot see past one bottleneck; AUTOTUNE's estimate is not
bounded by resource usage.
"""

import math

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import sequential_tuning
from repro.analysis.tables import format_table
from repro.host import setup_a, setup_b
from repro.workloads import get_workload

STEPS = 20
SCALE = 0.05


def run_setup(machine):
    pipe = get_workload("resnet").build(scale=SCALE)
    return sequential_tuning(pipe, machine, steps=STEPS, tuner="plumber")


def _render(label, run):
    rows = [
        (s.step, f"{s.observed:.1f}", f"{s.local_estimate:.1f}",
         f"{s.lp_estimate:.1f}", f"{s.autotune_estimate:.1f}")
        for s in run.steps
    ]
    return format_table(
        ("step", "Observed", "Est. Max (Local)", "Est. Max (LP)",
         "Est. AUTOTUNE"),
        rows,
        title=f"Figure 7 — ResNet prediction series ({label})",
    )


@pytest.mark.parametrize("label,machine_factory,final_bound", [
    ("setup_a", setup_a, 2.5), ("setup_b", setup_b, 4.0),
])
def test_fig07_lp_bounds(once, label, machine_factory, final_bound):
    run = once(run_setup, machine_factory())
    emit(f"fig07_{label}", _render(label, run))

    first, last = run.steps[0], run.steps[-1]
    # The LP never predicts below the observation.
    for s in run.steps:
        assert s.lp_estimate >= s.observed * 0.9, s
    assert first.lp_estimate <= first.observed * 100  # finite, meaningful
    # Obs. 4 / §1(3): LP predictions are bounded by resource usage —
    # within ~2x for Setup A, within the paper's global 4x for B (which
    # "takes longer to converge").
    assert last.lp_estimate <= last.observed * final_bound
    # The gap tightens as optimization proceeds (Obs. 4).
    first_gap = first.lp_estimate / first.observed
    last_gap = last.lp_estimate / last.observed
    assert last_gap < first_gap
    # The local estimate is capped by the *next* bottleneck, so early in
    # tuning it sits below the LP's global optimum.
    assert first.local_estimate <= first.lp_estimate * 1.05


def test_fig07_autotune_unbounded(once):
    """AUTOTUNE's model ignores saturation: with enough parallelism its
    predicted rate exceeds any resource bound."""
    from repro.baselines.autotune import AutotuneTuner
    from repro.core.plumber import Plumber

    machine = setup_a()
    pipe = get_workload("resnet").build(scale=SCALE)
    plumber = Plumber(machine, trace_duration=1.2, trace_warmup=0.3)
    model = once(plumber.model, pipe)
    tuner = AutotuneTuner(machine)
    inflated = tuner.predict_throughput(
        model, {r.name: 100_000 for r in model.cpu_nodes()}
    )
    # 16 cores x 2.5 mb/s/core decode -> hard bound ~40 mb/s; the
    # AUTOTUNE model happily predicts orders of magnitude beyond it.
    assert inflated > 40.0 * 100
