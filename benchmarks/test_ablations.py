"""Ablations of Plumber's design choices (DESIGN.md §5 notes).

Not a paper figure — these isolate the mechanisms the paper's results
rest on: (a) each optimizer pass's marginal contribution, (b) the
steady-state cache semantics in the LP, (c) I/O-accounted ranking vs
CPU-only ranking, (d) the second optimizer iteration.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.baselines.naive import naive_config
from repro.core.plumber import Plumber
from repro.host import setup_c
from repro.runtime.executor import ModelConsumer, run_pipeline
from repro.workloads import get_workload

#: simulation-heavy module: excluded from the fast-path CI job
pytestmark = pytest.mark.slow_sim

SCALE = 0.004


def run_pass_ablation():
    wl = get_workload("resnet18", end_to_end=True)
    machine = setup_c().with_memory(setup_c().memory_bytes * SCALE)
    base = naive_config(wl.build(scale=SCALE))
    consumer = ModelConsumer(wl.model_step_seconds)

    def measure(pipe):
        return run_pipeline(
            pipe, machine, duration=8.0, warmup=3.0, trace=False,
            consumer=consumer,
        ).examples_per_second

    results = {"naive": measure(base)}
    for passes in (
        ("parallelism",),
        ("parallelism", "prefetch"),
        ("parallelism", "prefetch", "cache"),
    ):
        plumber = Plumber(machine, trace_duration=1.5, trace_warmup=0.4)
        tuned = plumber.optimize(base, passes=passes).pipeline
        results["+".join(p[:5] for p in passes)] = measure(tuned)

    # One iteration vs two (the paper defaults to 2 "so that estimated
    # rates more closely reflect the final pipeline").
    plumber = Plumber(machine, trace_duration=1.5, trace_warmup=0.4)
    results["full@1iter"] = measure(
        plumber.optimize(base, iterations=1).pipeline
    )
    return results


def test_ablation_optimizer_passes(once):
    results = once(run_pass_ablation)
    rows = [(k, f"{v:.0f}") for k, v in results.items()]
    emit(
        "ablation_passes",
        format_table(("configuration", "images/s"), rows,
                     title="Ablation — ResNet18 end-to-end by optimizer pass"),
    )
    # Each pass contributes; caching delivers the final jump past the
    # cloud-storage bound.
    assert results["paral"] > 5 * results["naive"]
    assert results["paral+prefe+cache"] >= 1.1 * results["paral"]
    # The second iteration matters: with one iteration the parallelism
    # plan predates the cache (the LP still saw the disk bound), so the
    # two-iteration default strictly improves on it — exactly why the
    # paper re-runs its passes.
    assert results["paral+prefe+cache"] >= 1.1 * results["full@1iter"]


def test_ablation_steady_state_cache_lp(once):
    """Without steady-state cache semantics the LP keeps the (already
    cached-away) disk constraint and under-allocates decode."""
    from repro.core.lp import _cached_subtree, solve_allocation
    from repro.core.rewriter import insert_cache_after

    wl = get_workload("resnet18", end_to_end=True)
    machine = setup_c().with_memory(setup_c().memory_bytes * SCALE)
    pipe = insert_cache_after(
        naive_config(wl.build(scale=SCALE)), "map_parse"
    )
    plumber = Plumber(machine, trace_duration=1.5, trace_warmup=0.4)
    model = once(plumber.model, pipe)

    with_semantics = solve_allocation(model)
    # Ablate: pretend nothing is cached by keeping the disk rows.
    import repro.core.lp as lp_mod

    original = lp_mod._cached_subtree
    lp_mod._cached_subtree = lambda pipeline: set()
    try:
        without = solve_allocation(model)
    finally:
        lp_mod._cached_subtree = original

    emit(
        "ablation_cache_lp",
        format_table(
            ("LP variant", "predicted minibatches/s"),
            [
                ("steady-state cache semantics", f"{with_semantics.predicted_throughput:.1f}"),
                ("populate-epoch view (ablated)", f"{without.predicted_throughput:.1f}"),
            ],
            title="Ablation — LP with/without steady-state cache modelling",
        ),
    )
    # The ablated LP is pinned at the disk bound; the real one sees past
    # it to the CPU optimum.
    assert with_semantics.predicted_throughput > 1.3 * without.predicted_throughput
