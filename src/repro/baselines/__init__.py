"""Tuning baselines the paper compares against (§5):

* **NAIVE** — minimal parallelism (1 everywhere); end-to-end naive also
  strips prefetching.
* **HEURISTIC** — every tunable set to the machine's core count, with
  the dataset's hard-coded prefetching.
* **AUTOTUNE** — an M/M/1/k-style output-latency model tuned by hill
  climbing; predictions unbounded by resources (the Fig. 7 contrast).
* **random walk** — uninformed debugging: bump a random node each step.
"""

from repro.baselines.autotune import AutotuneResult, AutotuneTuner
from repro.baselines.heuristic import heuristic_config
from repro.baselines.naive import naive_config
from repro.baselines.random_walk import RandomWalkTuner

__all__ = [
    "AutotuneResult",
    "AutotuneTuner",
    "RandomWalkTuner",
    "heuristic_config",
    "naive_config",
]
