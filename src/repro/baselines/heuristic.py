"""The HEURISTIC baseline: parallelism = number of cores.

"HEURISTIC, which set the parallelism tunables to the number of cores
on the machine" (§5), keeping whatever prefetching the dataset hard-
codes. Over-provisioning is competitive in practice (Obs. 5) but
vulnerable to thread over-allocation on UDF-parallel pipelines.
"""

from __future__ import annotations

from repro.core.rewriter import set_parallelism
from repro.graph.datasets import Pipeline
from repro.host.machine import Machine


def heuristic_config(pipeline: Pipeline, machine: Machine) -> Pipeline:
    """Set every tunable's parallelism to the machine's core count."""
    plan = {node.name: machine.cores for node in pipeline.tunables()}
    return set_parallelism(pipeline, plan)
