"""The AUTOTUNE baseline (§2.2).

tf.data's autotuner models each iterator as an M/M/1/k queue: each
node's *output latency* is its processing time normalized by parallelism
plus its children's input latency, combined per node type. Tuning is
hill climbing on the parallelism knobs, stopping at a plateau or a
resource budget. Two properties the paper leans on:

* "because resource utilization is not modeled, the output latency
  function can be driven to zero if parallelism is allowed to increase
  unbounded" — the predicted rate ``1 / L_root`` is unbounded (Fig. 7);
* AUTOTUNE "tends to allocate maximum parallelism to all Datasets"
  (over-allocation, Obs. 5), and by default leaves source I/O
  parallelism alone (the ResNetLinear pitfall in §5.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.rates import PipelineModel
from repro.core.rewriter import set_parallelism
from repro.graph.datasets import InterleaveSourceNode, Pipeline
from repro.host.machine import Machine


@dataclass
class AutotuneResult:
    """Chosen parallelism plan and the model's (unbounded) prediction."""

    plan: Dict[str, int]
    predicted_latency: float       # modelled seconds per minibatch
    predicted_throughput: float    # 1 / latency — not resource-bounded
    pipeline: Pipeline


class AutotuneTuner:
    """Output-latency model + hill climbing over parallelism knobs.

    Parameters
    ----------
    budget_factor:
        Hill climbing stops when total allocated parallelism reaches
        ``budget_factor * cores`` — the heuristic constraint the paper
        notes AUTOTUNE is forced to use.
    io_parallelism:
        If ``None``, source (I/O) parallelism is left untouched — the
        default that bites ResNetLinear in §5.4. Set e.g. 10 to mimic
        the MLPerf-submission default the authors grant it.
    """

    def __init__(
        self,
        machine: Machine,
        budget_factor: float = 2.0,
        io_parallelism: Optional[int] = None,
    ) -> None:
        if budget_factor <= 0:
            raise ValueError("budget_factor must be > 0")
        self.machine = machine
        self.budget_factor = budget_factor
        self.io_parallelism = io_parallelism

    # ------------------------------------------------------------------
    # The latency model.
    # ------------------------------------------------------------------
    def output_latency(
        self, model: PipelineModel, plan: Optional[Dict[str, int]] = None
    ) -> float:
        """Modelled root output latency (seconds per minibatch).

        Per node: ``service_i / p_i`` converted to root units via the
        visit ratio, summed along the chain (children's input latency
        feeding parents). Service times come from traced CPU-time per
        element — resource contention is deliberately absent.
        """
        plan = plan or {}
        latency = 0.0
        for rates in model.rates.values():
            if rates.elements_produced <= 0 or rates.cpu_core_seconds <= 0:
                continue
            service = rates.cpu_core_seconds / rates.elements_produced
            p = plan.get(rates.name, rates.parallelism)
            # seconds per minibatch contributed by this node
            latency += service * rates.visit_ratio / max(1, p)
        return latency

    def predict_throughput(
        self, model: PipelineModel, plan: Optional[Dict[str, int]] = None
    ) -> float:
        """The AUTOTUNE rate estimate plotted in Figure 7 (unbounded)."""
        latency = self.output_latency(model, plan)
        return 1.0 / latency if latency > 0 else math.inf


    # ------------------------------------------------------------------
    # Hill climbing.
    # ------------------------------------------------------------------
    def tune(self, model: PipelineModel) -> AutotuneResult:
        """Hill-climb parallelism to minimize modelled output latency."""
        pipeline = model.pipeline
        tunables = {
            n.name: n for n in pipeline.tunables()
            if self.io_parallelism is not None
            or not isinstance(n, InterleaveSourceNode)
        }
        plan: Dict[str, int] = {
            name: node.effective_parallelism for name, node in tunables.items()
        }
        budget = int(self.machine.cores * self.budget_factor)

        while sum(plan.values()) < budget:
            base = self.output_latency(model, plan)
            best_name, best_gain = None, 0.0
            for name in plan:
                trial = dict(plan)
                trial[name] += 1
                gain = base - self.output_latency(model, trial)
                if gain > best_gain + 1e-15:
                    best_gain = gain
                    best_name = name
            if best_name is None:
                break  # plateau
            plan[best_name] += 1

        if self.io_parallelism is not None:
            for node in pipeline.sources():
                plan[node.name] = self.io_parallelism

        tuned = set_parallelism(pipeline, plan) if plan else pipeline
        latency = self.output_latency(model, plan)
        return AutotuneResult(
            plan=plan,
            predicted_latency=latency,
            predicted_throughput=1.0 / latency if latency > 0 else math.inf,
            pipeline=tuned,
        )
