"""Uninformed debugging: the random-walk tuner of Figure 6.

"To compare against uninformed debugging, we plot a random walk, which
randomly picks a node to parallelize for each step."
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.rewriter import set_parallelism
from repro.graph.datasets import Pipeline


class RandomWalkTuner:
    """Bump a uniformly random tunable node's parallelism each step."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self.history: List[str] = []

    def step(self, pipeline: Pipeline, core_budget: int | None = None) -> Pipeline:
        """One random step; respects ``core_budget`` if given."""
        tunables = pipeline.tunables()
        if not tunables:
            return pipeline
        if core_budget is not None:
            total = sum(n.effective_parallelism for n in tunables)
            if total >= core_budget:
                self.history.append("<budget>")
                return pipeline
        node = tunables[self._rng.integers(len(tunables))]
        self.history.append(node.name)
        return set_parallelism(
            pipeline, {node.name: node.effective_parallelism + 1}
        )
