"""The naive configuration: parallelism = 1 everywhere.

§5.1 microbenchmarks start from "the naive configuration
(parallelism=1) *with* prefetching"; §5.4 end-to-end naive additionally
has "1 parallelism and no prefetching". Both variants are provided.
"""

from __future__ import annotations

from repro.core.rewriter import remove_node, set_parallelism
from repro.graph.datasets import Pipeline, PrefetchNode


def naive_config(pipeline: Pipeline, keep_prefetch: bool = True) -> Pipeline:
    """Reset every tunable to parallelism 1; optionally strip prefetch."""
    plan = {node.name: 1 for node in pipeline.tunables()}
    result = set_parallelism(pipeline, plan)
    if not keep_prefetch:
        while True:
            prefetches = [
                n.name for n in result.iter_nodes() if isinstance(n, PrefetchNode)
            ]
            if not prefetches:
                break
            result = remove_node(result, prefetches[0])
    return result
