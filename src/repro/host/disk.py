"""Storage bandwidth models.

§5.2 evaluates three storage substrates: a token-bucket-limited
filesystem (the paper patches TensorFlow's filesystem layer), a Seagate
HDD (~180 MB/s) and an Intel P3600 NVMe SSD (~2 GB/s); §5.4 adds cloud
storage whose ResNet source tops out near 11k images/s (~1.25 GB/s) and
needs high read parallelism to get there.

A :class:`DiskSpec` exposes ``bandwidth(streams)`` — aggregate bytes/s as
a piecewise-linear, concave, non-decreasing function of concurrent read
streams. That curve is exactly what Plumber's disk planner benchmarks
and re-fits (§4.3 "Disk").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

MB = 1e6
GB = 1e9


@dataclass(frozen=True)
class DiskSpec:
    """Aggregate read bandwidth as a function of stream parallelism.

    Parameters
    ----------
    name:
        Identifier used in reports.
    curve:
        Sorted ``(streams, bytes_per_second)`` control points. Bandwidth
        is linearly interpolated between points and flat beyond the last.
        Must be concave and non-decreasing (validated).
    read_latency:
        Fixed per-read setup latency in seconds (seek / request RTT).
    """

    name: str
    curve: Tuple[Tuple[float, float], ...]
    read_latency: float = 0.0

    def __post_init__(self) -> None:
        if not self.curve:
            raise ValueError("DiskSpec needs at least one curve point")
        pts = sorted(self.curve)
        object.__setattr__(self, "curve", tuple(pts))
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        if xs[0] < 1:
            raise ValueError("curve must start at streams >= 1")
        if any(b <= a for a, b in zip(xs, xs[1:])) and len(xs) > 1:
            pass  # sorted() guarantees non-decreasing x
        if any(y2 < y1 for y1, y2 in zip(ys, ys[1:])):
            raise ValueError("bandwidth curve must be non-decreasing")
        if self.read_latency < 0:
            raise ValueError(f"read_latency must be >= 0, got {self.read_latency}")
        # Concavity: successive slopes must not increase.
        slopes = [
            (y2 - y1) / (x2 - x1)
            for (x1, y1), (x2, y2) in zip(pts, pts[1:])
            if x2 > x1
        ]
        if any(
            s2 > s1 + 1e-9 * max(1.0, abs(s1))
            for s1, s2 in zip(slopes, slopes[1:])
        ):
            raise ValueError("bandwidth curve must be concave")

    # ------------------------------------------------------------------
    def bandwidth(self, streams: float) -> float:
        """Aggregate bytes/s available with ``streams`` concurrent reads."""
        if streams <= 0:
            return 0.0
        xs = np.array([p[0] for p in self.curve])
        ys = np.array([p[1] for p in self.curve])
        return float(np.interp(streams, xs, ys))

    @property
    def max_bandwidth(self) -> float:
        """Peak aggregate bandwidth (the last curve point)."""
        return self.curve[-1][1]

    def saturation_parallelism(self, fraction: float = 0.99) -> float:
        """Smallest stream count achieving ``fraction`` of peak bandwidth.

        This is the quantity Plumber's disk planner solves for: "a
        minimal parallelism to hit max bandwidth".
        """
        target = self.max_bandwidth * fraction
        xs = [p[0] for p in self.curve]
        ys = [p[1] for p in self.curve]
        for (x1, y1), (x2, y2) in zip(self.curve, self.curve[1:]):
            if y2 >= target and y2 > y1:
                # Linear interpolation within the segment.
                return x1 + (target - y1) * (x2 - x1) / (y2 - y1)
        return float(xs[-1]) if ys[-1] >= target else float(xs[-1])

    def segments(self) -> Sequence[Tuple[float, float]]:
        """Affine segments ``(slope, intercept)`` covering the curve,
        for direct inclusion as LP constraints (``bw <= a*θ + c``)."""
        segs = []
        pts = list(self.curve)
        if len(pts) == 1:
            return [(0.0, pts[0][1])]
        for (x1, y1), (x2, y2) in zip(pts, pts[1:]):
            if x2 == x1:
                continue
            slope = (y2 - y1) / (x2 - x1)
            segs.append((slope, y1 - slope * x1))
        # Flat tail beyond the last point.
        segs.append((0.0, pts[-1][1]))
        return segs

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "name": self.name,
            "curve": [list(p) for p in self.curve],
            "read_latency": self.read_latency,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiskSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            curve=tuple(tuple(p) for p in data["curve"]),
            read_latency=data.get("read_latency", 0.0),
        )


# ----------------------------------------------------------------------
# Presets from the paper.
# ----------------------------------------------------------------------
def token_bucket(bytes_per_second: float, name: str | None = None) -> DiskSpec:
    """A flat rate cap, as in the §5.2 token-bucket microbenchmarks."""
    if bytes_per_second <= 0:
        raise ValueError(f"bandwidth must be > 0, got {bytes_per_second}")
    return DiskSpec(
        name=name or f"token_bucket_{bytes_per_second / MB:.0f}MBps",
        curve=((1.0, bytes_per_second),),
    )


def hdd_st4000() -> DiskSpec:
    """Seagate ST4000NM0023: ~180 MB/s sequential, mild parallel gain."""
    return DiskSpec(
        name="hdd_st4000",
        curve=((1.0, 150 * MB), (2.0, 175 * MB), (4.0, 180 * MB)),
        read_latency=4e-3,
    )


def nvme_p3600() -> DiskSpec:
    """Intel P3600 400GB: ~2 GB/s, needs a few streams to saturate."""
    return DiskSpec(
        name="nvme_p3600",
        curve=((1.0, 900 * MB), (2.0, 1600 * MB), (4.0, 2000 * MB)),
        read_latency=1e-4,
    )


def cloud_storage() -> DiskSpec:
    """Cloud object store: per-stream ~90 MB/s, saturating ~1.26 GB/s.

    Calibrated so an uncached ResNet source (115 KB records, batch 128)
    tops out near the paper's 11k images/s bound (§5.4).
    """
    return DiskSpec(
        name="cloud_storage",
        curve=(
            (1.0, 90 * MB),
            (4.0, 360 * MB),
            (8.0, 700 * MB),
            (16.0, 1150 * MB),
            (32.0, 1265 * MB),
        ),
        read_latency=2e-3,
    )


def local_ssd_fast() -> DiskSpec:
    """A fast local SSD used by the microbenchmark setups (A/B)."""
    return DiskSpec(
        name="local_ssd",
        curve=((1.0, 1000 * MB), (4.0, 2800 * MB), (8.0, 3200 * MB)),
        read_latency=5e-5,
    )
