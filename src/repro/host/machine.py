"""Machine presets (the paper's Setups A, B, C).

A :class:`Machine` carries everything the operational model and the
simulator need: core count, a per-core speed factor (Setup B's 2 GHz
Xeons decode slower per-core than Setup A's 2700X), memory capacity,
attached storage, and the framework overhead constants that produce the
NLP prediction gap (Fig. 9) and the tracing overhead (§C.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.host.disk import DiskSpec, local_ssd_fast, cloud_storage

GB = 1e9


@dataclass(frozen=True)
class Machine:
    """A simulated training host.

    Parameters
    ----------
    name:
        Identifier used in reports.
    cores:
        Number of physical cores available to the input pipeline.
    core_speed:
        Relative per-core speed; UDF ``cpu_seconds`` are divided by this.
    memory_bytes:
        Host RAM available for caches.
    disk:
        Attached storage spec.
    iterator_overhead:
        Per-element wallclock overhead of one iterator ``Next()`` call
        (thread wakeup, dispatch). Occupies the worker but not a core;
        invisible to CPU-time tracing — the source of Fig. 9's gap.
    tracer_overhead:
        Additional per-element overhead when Plumber tracing is enabled
        (CPU-timer syscalls; §C.3). Setup B pays more per syscall.
    oversubscription_penalty:
        Service-time inflation slope once runnable threads exceed cores
        (context switching); drives the RCNN over-allocation cliff.
    """

    name: str
    cores: int
    core_speed: float = 1.0
    memory_bytes: float = 32 * GB
    disk: DiskSpec = field(default_factory=local_ssd_fast)
    iterator_overhead: float = 25e-6
    tracer_overhead: float = 10e-6
    oversubscription_penalty: float = 0.02

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.core_speed <= 0:
            raise ValueError(f"core_speed must be > 0, got {self.core_speed}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be > 0, got {self.memory_bytes}")
        if self.iterator_overhead < 0 or self.tracer_overhead < 0:
            raise ValueError("overheads must be >= 0")
        if self.oversubscription_penalty < 0:
            raise ValueError("oversubscription_penalty must be >= 0")

    def with_disk(self, disk: DiskSpec) -> "Machine":
        """A copy of this machine with different storage attached."""
        return replace(self, disk=disk)

    def with_memory(self, memory_bytes: float) -> "Machine":
        """A copy of this machine with a different RAM capacity."""
        return replace(self, memory_bytes=memory_bytes)

    def with_cores(self, cores: int) -> "Machine":
        """A copy with a different core count (MultiBoxSSD(48) in §C.1)."""
        return replace(self, cores=cores)

    def cpu_seconds(self, reference_cpu_seconds: float) -> float:
        """Scale a reference-core cost to this machine's cores."""
        return reference_cpu_seconds / self.core_speed

    def to_dict(self) -> dict:
        """JSON-compatible representation (cross-process transport)."""
        return {
            "name": self.name,
            "cores": self.cores,
            "core_speed": self.core_speed,
            "memory_bytes": self.memory_bytes,
            "disk": self.disk.to_dict(),
            "iterator_overhead": self.iterator_overhead,
            "tracer_overhead": self.tracer_overhead,
            "oversubscription_penalty": self.oversubscription_penalty,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Machine":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        data["disk"] = DiskSpec.from_dict(data["disk"])
        return cls(**data)

    def fingerprint(self) -> str:
        """Stable hash of everything that affects optimization results.

        Display names — the machine's and the attached disk's — are
        excluded: two identically-specced hosts must share cache entries
        in the batch optimization service.
        """
        from repro.util import canonical_hash

        data = self.to_dict()
        data.pop("name", None)
        data["disk"].pop("name", None)
        return canonical_hash(data)


def setup_a() -> Machine:
    """Consumer AMD 2700X: 16 cores, 32 GiB (§5 'Setup A')."""
    return Machine(
        name="setup_a",
        cores=16,
        core_speed=1.0,
        memory_bytes=34.4 * GB,
        disk=local_ssd_fast(),
        iterator_overhead=25e-6,
        tracer_overhead=9e-6,
    )


def setup_b() -> Machine:
    """Enterprise Xeon E5-2698Bv3: 32 cores at 2 GHz, 64 GiB ('Setup B').

    Per-core decode rates on B are lower than A (the paper observes only
    a 1.2x end-to-end gain despite 2x cores); ``core_speed=0.62``
    reproduces that ratio. Timer syscalls are also pricier (§C.3).
    """
    return Machine(
        name="setup_b",
        cores=32,
        core_speed=0.62,
        memory_bytes=68.7 * GB,
        disk=local_ssd_fast(),
        iterator_overhead=30e-6,
        tracer_overhead=26e-6,
    )


def setup_c() -> Machine:
    """TPUv3-8 host: 96 Xeon cores, 300 GB RAM, cloud storage ('Setup C')."""
    return Machine(
        name="setup_c",
        cores=96,
        core_speed=0.9,
        memory_bytes=300 * GB,
        disk=cloud_storage(),
        iterator_overhead=25e-6,
        tracer_overhead=9e-6,
    )
