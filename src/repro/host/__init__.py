"""Simulated host hardware: machines, disks, memory.

The paper evaluates on three setups (§5): a 16-core AMD 2700X (A), a
32-core Xeon E5-2698Bv3 (B), and a TPUv3-8 host with 96 Xeon cores (C).
These presets carry the parameters the operational model consumes: core
count, per-core speed, memory capacity, and attached storage bandwidth
curves.
"""

from repro.host.disk import DiskSpec, cloud_storage, hdd_st4000, nvme_p3600, token_bucket
from repro.host.machine import Machine, setup_a, setup_b, setup_c
from repro.host.memory import MemoryBudget

__all__ = [
    "DiskSpec",
    "Machine",
    "MemoryBudget",
    "cloud_storage",
    "hdd_st4000",
    "nvme_p3600",
    "setup_a",
    "setup_b",
    "setup_c",
    "token_bucket",
]
