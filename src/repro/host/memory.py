"""Host memory accounting for cache planning.

Plumber's optimizer "knows that the machine only has 300GB of memory and
thus it must settle with caching at the 148GB Interleave" (§4.1).
:class:`MemoryBudget` is that ledger: reservations against capacity with
a configurable headroom fraction kept free for the training process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class MemoryError_(RuntimeError):
    """Raised when a reservation exceeds the remaining budget."""


@dataclass
class MemoryBudget:
    """Tracks cache reservations against host RAM.

    Parameters
    ----------
    capacity_bytes:
        Total host memory.
    headroom_fraction:
        Fraction of capacity reserved for the model/runtime and never
        given to caches.
    """

    capacity_bytes: float
    headroom_fraction: float = 0.1
    _reservations: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity_bytes}")
        if not 0.0 <= self.headroom_fraction < 1.0:
            raise ValueError(
                f"headroom_fraction must be in [0, 1), got {self.headroom_fraction}"
            )

    @property
    def usable_bytes(self) -> float:
        """Capacity minus headroom."""
        return self.capacity_bytes * (1.0 - self.headroom_fraction)

    @property
    def reserved_bytes(self) -> float:
        """Sum of active reservations."""
        return sum(self._reservations.values())

    @property
    def available_bytes(self) -> float:
        """Bytes still available for new reservations."""
        return self.usable_bytes - self.reserved_bytes

    def fits(self, nbytes: float) -> bool:
        """Whether a reservation of ``nbytes`` would succeed."""
        return nbytes <= self.available_bytes

    def reserve(self, key: str, nbytes: float) -> None:
        """Reserve ``nbytes`` under ``key``; raises if it doesn't fit."""
        if nbytes < 0:
            raise ValueError(f"cannot reserve negative bytes ({nbytes})")
        if key in self._reservations:
            raise MemoryError_(f"key {key!r} already has a reservation")
        if not self.fits(nbytes):
            raise MemoryError_(
                f"reservation {key!r} of {nbytes / 1e9:.1f} GB exceeds "
                f"available {self.available_bytes / 1e9:.1f} GB"
            )
        self._reservations[key] = nbytes

    def release(self, key: str) -> float:
        """Release the reservation under ``key``, returning its size."""
        if key not in self._reservations:
            raise KeyError(f"no reservation under {key!r}")
        return self._reservations.pop(key)
