"""Small shared utilities."""

from __future__ import annotations

import hashlib
import json


def canonical_hash(data: object) -> str:
    """SHA-256 of ``data`` rendered as canonical (sorted-key) JSON.

    The single hashing convention behind every cache key in the library
    — :func:`repro.graph.signature.structural_signature`,
    :meth:`repro.host.machine.Machine.fingerprint`, and the batch
    service's result-cache keys — so the three always canonicalize
    identically.
    """
    payload = json.dumps(data, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
