"""Element signatures: what kind of element each node emits, and its
expected size — plus the *structural signature*, a content hash of the
whole pipeline program used by the batch optimization service to key its
result cache.

The element half is the structural side of the byte-accounting
recurrence (§A): the source's element size comes from the catalog, and
every operator applies its declared size/count transformation. The
tracer's *measured* byte ratios must agree with these declared
signatures in steady state, which is one of the integration tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.util import canonical_hash

from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    FilterNode,
    InterleaveDatasetsNode,
    InterleaveSourceNode,
    MapNode,
    Pipeline,
    PrefetchNode,
    RepeatNode,
    ShuffleNode,
    TakeNode,
    ZipNode,
)


@dataclass(frozen=True)
class ElementSpec:
    """Declared output of one node.

    ``kind`` is one of ``record``, ``example``, ``minibatch``.
    ``avg_bytes`` is the expected bytes per element; ``cardinality`` the
    expected total number of elements in one epoch (``inf`` under an
    unbounded repeat).
    """

    kind: str
    avg_bytes: float
    cardinality: float

    @property
    def total_bytes(self) -> float:
        """Expected materialized size of the full stream."""
        return self.avg_bytes * self.cardinality


def structural_signature(pipeline: Pipeline) -> str:
    """Stable content hash of the pipeline *program*.

    Two pipelines have the same signature iff their serialized node lists
    (names, kinds, wiring, parallelism, and attrs) are identical; the
    pipeline's display name is excluded so that fleet jobs stamped from
    one template collapse to a single signature. The hash is computed
    over canonical JSON, so it is stable across processes and sessions —
    the batch optimization service uses it to key its result cache and to
    match results shipped back from worker processes.
    """
    from repro.graph.serialize import pipeline_to_dict

    data = pipeline_to_dict(pipeline)
    data.pop("name", None)
    return canonical_hash(data)


def infer_signatures(pipeline: Pipeline) -> Dict[str, ElementSpec]:
    """Propagate element specs from sources to root.

    Mirrors the paper's n_i (cardinality) and b_i (byte ratio)
    propagation: maps scale bytes, filters scale counts, batch scales
    both, repeat makes cardinality infinite.
    """
    specs: Dict[str, ElementSpec] = {}
    for node in pipeline.topological_order():
        specs[node.name] = _spec_for(node, specs)
    return specs


def _spec_for(node: DatasetNode, specs: Dict[str, ElementSpec]) -> ElementSpec:
    if isinstance(node, InterleaveSourceNode):
        catalog = node.catalog
        return ElementSpec(
            kind="record",
            avg_bytes=catalog.mean_bytes_per_record,
            cardinality=float(catalog.total_records),
        )

    if isinstance(node, ZipNode):
        # One output pairs one element from every branch: bytes add,
        # and the stream ends with the shortest branch.
        children = [specs[c.name] for c in node.inputs]
        return ElementSpec(
            kind="example",
            avg_bytes=sum(c.avg_bytes for c in children),
            cardinality=min(c.cardinality for c in children),
        )
    if isinstance(node, InterleaveDatasetsNode):
        # Weighted mix: expected bytes are the weighted mean, and the
        # stream ends when the first branch runs dry — after
        # ``n_i / w_i`` outputs if branch ``i`` is the limiting one.
        children = [specs[c.name] for c in node.inputs]
        return ElementSpec(
            kind="example",
            avg_bytes=sum(
                w * c.avg_bytes for w, c in zip(node.weights, children)
            ),
            cardinality=min(
                c.cardinality / w
                for w, c in zip(node.weights, children)
            ),
        )

    child = specs[node.inputs[0].name]

    if isinstance(node, MapNode):
        udf = node.udf
        return ElementSpec(
            kind="example",
            avg_bytes=udf.output_size(child.avg_bytes),
            cardinality=child.cardinality * udf.examples_ratio,
        )
    if isinstance(node, FilterNode):
        return ElementSpec(
            kind=child.kind,
            avg_bytes=child.avg_bytes,
            cardinality=child.cardinality * node.keep_fraction,
        )
    if isinstance(node, BatchNode):
        return ElementSpec(
            kind="minibatch",
            avg_bytes=child.avg_bytes * node.batch_size,
            cardinality=(
                math.floor(child.cardinality / node.batch_size)
                if math.isfinite(child.cardinality)
                else math.inf
            ),
        )
    if isinstance(node, RepeatNode):
        if node.count is None:
            cardinality = math.inf if child.cardinality > 0 else 0.0
        else:
            cardinality = child.cardinality * node.count
        return ElementSpec(
            kind=child.kind, avg_bytes=child.avg_bytes, cardinality=cardinality
        )
    if isinstance(node, TakeNode):
        return ElementSpec(
            kind=child.kind,
            avg_bytes=child.avg_bytes,
            cardinality=min(child.cardinality, node.count),
        )
    if isinstance(node, (ShuffleNode, PrefetchNode, CacheNode)):
        # ShuffleAndRepeatNode subclasses ShuffleNode: repeat semantics.
        if node.kind == "shuffle_and_repeat":
            cardinality = math.inf if child.cardinality > 0 else 0.0
        else:
            cardinality = child.cardinality
        return ElementSpec(
            kind=child.kind, avg_bytes=child.avg_bytes, cardinality=cardinality
        )
    raise TypeError(f"no signature rule for node kind {node.kind!r}")
