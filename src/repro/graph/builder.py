"""Fluent builder API mirroring Figure 1 of the paper.

Example
-------
>>> ds = from_tfrecords(catalog, parallelism=4)
>>> ds = ds.map(parse).map(decode, parallelism=8).shuffle(1024)
>>> pipe = ds.batch(128).prefetch(10).build("imagenet")

Multi-source graphs merge independently built branches:

>>> pairs = zip_datasets([images.map(decode), captions.map(tokenize)])
>>> pipe = pairs.batch(64).prefetch(8).build("multimodal")
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    FilterNode,
    InterleaveDatasetsNode,
    InterleaveSourceNode,
    MapNode,
    Pipeline,
    PrefetchNode,
    RepeatNode,
    ShuffleAndRepeatNode,
    ShuffleNode,
    TakeNode,
    ZipNode,
)
from repro.graph.udf import UserFunction
from repro.graph.validate import validate_pipeline

_counter = itertools.count()


def _auto_name(prefix: str, name: Optional[str]) -> str:
    if name is not None:
        return name
    return f"{prefix}_{next(_counter)}"


class DatasetBuilder:
    """Chainable wrapper around a :class:`DatasetNode`.

    Each method returns a new builder whose node consumes the previous
    one, so partially built chains can be shared and forked.
    """

    def __init__(self, node: DatasetNode) -> None:
        self.node = node

    # ------------------------------------------------------------------
    def map(
        self,
        udf: UserFunction,
        parallelism: int = 1,
        name: Optional[str] = None,
        sequential: bool = False,
    ) -> "DatasetBuilder":
        """Apply ``udf`` with the given parallelism (or sequentially)."""
        return DatasetBuilder(
            MapNode(
                _auto_name(f"map_{udf.name}", name),
                self.node,
                udf,
                parallelism,
                sequential=sequential,
            )
        )

    def filter(
        self,
        udf: UserFunction,
        keep_fraction: float = 1.0,
        name: Optional[str] = None,
    ) -> "DatasetBuilder":
        """Sequentially filter elements, keeping ``keep_fraction``."""
        return DatasetBuilder(
            FilterNode(
                _auto_name(f"filter_{udf.name}", name), self.node, udf, keep_fraction
            )
        )

    def batch(
        self,
        batch_size: int,
        parallelism: int = 1,
        cpu_seconds_per_example: float = 0.0,
        name: Optional[str] = None,
    ) -> "DatasetBuilder":
        """Group elements into minibatches."""
        return DatasetBuilder(
            BatchNode(
                _auto_name("batch", name),
                self.node,
                batch_size,
                parallelism=parallelism,
                cpu_seconds_per_example=cpu_seconds_per_example,
            )
        )

    def shuffle(
        self,
        buffer_size: int,
        cpu_seconds_per_element: float = 0.0,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> "DatasetBuilder":
        """Buffered uniform shuffle (sequential)."""
        return DatasetBuilder(
            ShuffleNode(
                _auto_name("shuffle", name),
                self.node,
                buffer_size,
                cpu_seconds_per_element=cpu_seconds_per_element,
                seed=seed,
            )
        )

    def shuffle_and_repeat(
        self,
        buffer_size: int,
        cpu_seconds_per_element: float = 0.0,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> "DatasetBuilder":
        """Fused shuffle+repeat (sequential), as in the GNMT pipeline."""
        return DatasetBuilder(
            ShuffleAndRepeatNode(
                _auto_name("shuffle_and_repeat", name),
                self.node,
                buffer_size,
                cpu_seconds_per_element=cpu_seconds_per_element,
                seed=seed,
            )
        )

    def repeat(
        self, count: Optional[int] = None, name: Optional[str] = None
    ) -> "DatasetBuilder":
        """Repeat the stream ``count`` times (``None`` = forever)."""
        return DatasetBuilder(RepeatNode(_auto_name("repeat", name), self.node, count))

    def take(self, count: int, name: Optional[str] = None) -> "DatasetBuilder":
        """Truncate after ``count`` elements."""
        return DatasetBuilder(TakeNode(_auto_name("take", name), self.node, count))

    def prefetch(self, buffer_size: int, name: Optional[str] = None) -> "DatasetBuilder":
        """Insert a decoupling buffer of ``buffer_size`` elements."""
        return DatasetBuilder(
            PrefetchNode(_auto_name("prefetch", name), self.node, buffer_size)
        )

    def cache(
        self,
        storage: str = "memory",
        name: Optional[str] = None,
    ) -> "DatasetBuilder":
        """Materialize and serve the stream from ``storage``."""
        return DatasetBuilder(
            CacheNode(_auto_name("cache", name), self.node, storage=storage)
        )

    def build(self, name: str = "pipeline", validate: bool = True) -> Pipeline:
        """Finish the chain, optionally validating the structure."""
        pipe = Pipeline(self.node, name=name)
        if validate:
            validate_pipeline(pipe)
        return pipe


def from_tfrecords(
    catalog,
    parallelism: int = 1,
    read_cpu_seconds_per_record: float = 0.0,
    name: Optional[str] = None,
) -> DatasetBuilder:
    """Start a chain from an interleaved TFRecord-style file source."""
    return DatasetBuilder(
        InterleaveSourceNode(
            _auto_name("interleave_tfrecord", name),
            catalog,
            parallelism=parallelism,
            read_cpu_seconds_per_record=read_cpu_seconds_per_record,
        )
    )


# ``from_source`` is an alias emphasizing that any record-oriented catalog
# works, not just TFRecords.
from_source = from_tfrecords


def _branch_nodes(branches: Sequence) -> list:
    """Unwrap builders (or accept bare nodes) into merge inputs."""
    nodes = []
    for branch in branches:
        node = branch.node if isinstance(branch, DatasetBuilder) else branch
        if not isinstance(node, DatasetNode):
            raise TypeError(
                f"merge inputs must be DatasetBuilder or DatasetNode, "
                f"got {type(branch).__name__}"
            )
        nodes.append(node)
    return nodes


def zip_datasets(
    branches: Sequence,
    cpu_seconds_per_element: float = 0.0,
    name: Optional[str] = None,
) -> DatasetBuilder:
    """Merge branches in lockstep: one output pairs one element from
    every branch (``tf.data.Dataset.zip``). Continue chaining from the
    returned builder."""
    return DatasetBuilder(
        ZipNode(
            _auto_name("zip", name),
            _branch_nodes(branches),
            cpu_seconds_per_element=cpu_seconds_per_element,
        )
    )


def interleave_datasets(
    branches: Sequence,
    weights: Optional[Sequence[float]] = None,
    cpu_seconds_per_element: float = 0.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> DatasetBuilder:
    """Mix branches by weighted round-robin sampling (replay-buffer
    mixing). ``weights`` are normalized; ``None`` means uniform."""
    return DatasetBuilder(
        InterleaveDatasetsNode(
            _auto_name("interleave_datasets", name),
            _branch_nodes(branches),
            weights=weights,
            cpu_seconds_per_element=cpu_seconds_per_element,
            seed=seed,
        )
    )
