"""Structural validation of pipelines.

Catches the misconfigurations that would otherwise surface as confusing
runtime failures: duplicate names, dangling inputs, cycles, non-positive
tunables, batch-after-batch of minibatches, and cache-above-repeat
(which would try to materialize an infinite stream).
"""

from __future__ import annotations

from typing import List

from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    InterleaveSourceNode,
    Pipeline,
    RepeatNode,
)


class GraphValidationError(ValueError):
    """Raised when a pipeline fails structural validation."""


def validate_pipeline(pipeline: Pipeline) -> None:
    """Validate ``pipeline``, raising :class:`GraphValidationError`.

    Checks:
    * at least one source; every node's input count matches its declared
      ``input_arity`` (0 for sources, 1 for chain operators, >= 2 for
      variadic merge nodes),
    * the graph is a rooted in-tree: no node feeds two consumers
      (fan-in via zip/interleave is allowed, fan-out is not),
    * no cycles (topological order covers all reachable nodes),
    * unique node names,
    * parallelism >= 1 on tunable nodes when set,
    * no cache above an unbounded repeat or shuffle_and_repeat.
    """
    errors: List[str] = []
    order = pipeline.topological_order()

    names = [n.name for n in order]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        errors.append(f"duplicate node names: {dupes}")

    sources = [n for n in order if isinstance(n, InterleaveSourceNode)]
    if not sources:
        errors.append("pipeline has no source node")

    for node in order:
        if node.input_arity is None:
            if len(node.inputs) < 2:
                errors.append(
                    f"merge node {node.name!r} needs at least 2 inputs, "
                    f"has {len(node.inputs)}"
                )
        elif len(node.inputs) != node.input_arity:
            what = "no inputs" if node.input_arity == 0 else (
                f"exactly {node.input_arity} input"
                + ("s" if node.input_arity != 1 else "")
            )
            errors.append(
                f"node {node.name!r} must have {what}, "
                f"has {len(node.inputs)}"
            )
        if isinstance(node, InterleaveSourceNode) and node.input_arity != 0:
            errors.append(f"source {node.name!r} must declare input_arity 0")
        if node.tunable and node.parallelism is not None and node.parallelism == 0:
            errors.append(f"node {node.name!r} has parallelism 0")
        if (
            node.tunable
            and node.parallelism is not None
            and node.parallelism < -1
        ):
            errors.append(
                f"node {node.name!r} has invalid parallelism {node.parallelism}"
            )

    _check_cycles(pipeline, errors)
    _check_single_consumer(order, errors)
    _check_cache_above_repeat(order, errors)

    if errors:
        raise GraphValidationError("; ".join(errors))


def _check_cycles(pipeline: Pipeline, errors: List[str]) -> None:
    visiting: set = set()
    done: set = set()

    def visit(node: DatasetNode) -> bool:
        if id(node) in done:
            return True
        if id(node) in visiting:
            errors.append(f"cycle detected through node {node.name!r}")
            return False
        visiting.add(id(node))
        ok = all(visit(c) for c in node.inputs)
        visiting.discard(id(node))
        done.add(id(node))
        return ok

    visit(pipeline.root)


def _check_single_consumer(order: List[DatasetNode], errors: List[str]) -> None:
    """The graph must be a rooted in-tree: merges fan *in*, never out.

    A node feeding two consumers would need its stream duplicated (or
    split) at execution time, which none of the backends model; zip and
    interleave merge *distinct* subgraphs.
    """
    consumers: dict = {}
    for node in order:
        for child in node.inputs:
            consumers.setdefault(id(child), []).append((child, node))
    for entries in consumers.values():
        if len(entries) > 1:
            child = entries[0][0]
            parents = sorted(parent.name for _, parent in entries)
            errors.append(
                f"node {child.name!r} feeds {len(entries)} consumers "
                f"({parents}); pipelines must be in-trees — merge "
                "distinct subgraphs instead of sharing one"
            )


def _check_cache_above_repeat(order: List[DatasetNode], errors: List[str]) -> None:
    """A cache must not materialize an already-infinite stream."""

    def subtree_infinite(node: DatasetNode) -> bool:
        if isinstance(node, RepeatNode) and node.count is None:
            return True
        if node.kind == "shuffle_and_repeat":
            return True
        return any(subtree_infinite(c) for c in node.inputs)

    for node in order:
        if isinstance(node, CacheNode) and subtree_infinite(node.inputs[0]):
            errors.append(
                f"cache {node.name!r} placed above an unbounded repeat; "
                "it would materialize an infinite stream"
            )


def find_batch_node(pipeline: Pipeline) -> BatchNode | None:
    """Return the (outermost) batch node, if any."""
    for node in pipeline.topological_order():
        if isinstance(node, BatchNode):
            return node
    return None
