"""User-defined function (UDF) metadata.

The paper's UDFs are traced TensorFlow functions; Plumber only needs a
handful of facts about them (§4.4, §B.1):

* how much CPU core-time an element costs (the resource-accounted rate),
* how many internal threads the runtime spawns per logical parallelism
  unit (RCNN's "1 parallelism uses nearly 3 cores"),
* how the element size and count change (decode amplifies bytes ~6x,
  filter drops elements),
* whether the function (transitively) touches a random seed, which makes
  its output uncacheable.

:class:`UserFunction` carries exactly those facts plus an optional real
Python callable so the same graph runs on the in-process executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence


@dataclass(frozen=True)
class CostModel:
    """Per-element execution cost of one UDF invocation.

    Parameters
    ----------
    cpu_seconds:
        Active CPU core-seconds consumed per produced element on a
        reference 1.0-speed core. Scaled by the machine's per-core speed
        factor at runtime.
    internal_parallelism:
        Number of cores' worth of CPU occupied while one invocation runs.
        ``1.0`` for ordinary ops; ~3.0 for RCNN's transparently
        parallelized UDF.
    """

    cpu_seconds: float = 0.0
    internal_parallelism: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_seconds < 0:
            raise ValueError(f"cpu_seconds must be >= 0, got {self.cpu_seconds}")
        if self.internal_parallelism <= 0:
            raise ValueError(
                f"internal_parallelism must be > 0, got {self.internal_parallelism}"
            )

    @property
    def core_seconds(self) -> float:
        """Total core-seconds consumed per element (width x duration)."""
        return self.cpu_seconds * self.internal_parallelism


@dataclass
class UserFunction:
    """A named user-defined transformation with traced metadata.

    Randomness is modelled as in §B.1: a function is random if it accesses
    a random seed *or* any function it calls does (transitive closure,
    computed in :mod:`repro.core.randomness`).

    Parameters
    ----------
    name:
        Unique-ish identifier used in traces and reports.
    cost:
        CPU cost model (see :class:`CostModel`).
    size_ratio:
        Output bytes per input byte (JPEG decode ~5.7x, crop < 1).
    output_bytes:
        If set, the output element size is fixed to this many bytes
        regardless of input size (e.g. crop to 224x224x3).
    examples_ratio:
        Elements produced per element consumed (1.0 for map; parsing a
        record into k examples gives k).
    accesses_seed:
        True if the function body reads a random seed directly.
    calls:
        Child functions invoked by this one; used for the transitive
        randomness closure.
    fn:
        Optional real Python callable for the in-process executor.
    """

    name: str
    cost: CostModel = field(default_factory=CostModel)
    size_ratio: float = 1.0
    output_bytes: Optional[float] = None
    examples_ratio: float = 1.0
    accesses_seed: bool = False
    calls: Sequence["UserFunction"] = field(default_factory=tuple)
    fn: Optional[Callable] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("UserFunction requires a non-empty name")
        if self.size_ratio < 0:
            raise ValueError(f"size_ratio must be >= 0, got {self.size_ratio}")
        if self.examples_ratio < 0:
            raise ValueError(
                f"examples_ratio must be >= 0, got {self.examples_ratio}"
            )
        if self.output_bytes is not None and self.output_bytes < 0:
            raise ValueError(f"output_bytes must be >= 0, got {self.output_bytes}")
        self.calls = tuple(self.calls)

    def output_size(self, input_bytes: float) -> float:
        """Bytes of one output element given one ``input_bytes`` input."""
        if self.output_bytes is not None:
            return float(self.output_bytes)
        return input_bytes * self.size_ratio

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict (callables are dropped)."""
        return {
            "name": self.name,
            "cpu_seconds": self.cost.cpu_seconds,
            "internal_parallelism": self.cost.internal_parallelism,
            "size_ratio": self.size_ratio,
            "output_bytes": self.output_bytes,
            "examples_ratio": self.examples_ratio,
            "accesses_seed": self.accesses_seed,
            "calls": [c.to_dict() for c in self.calls],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UserFunction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            cost=CostModel(
                cpu_seconds=data.get("cpu_seconds", 0.0),
                internal_parallelism=data.get("internal_parallelism", 1.0),
            ),
            size_ratio=data.get("size_ratio", 1.0),
            output_bytes=data.get("output_bytes"),
            examples_ratio=data.get("examples_ratio", 1.0),
            accesses_seed=data.get("accesses_seed", False),
            calls=tuple(cls.from_dict(c) for c in data.get("calls", ())),
        )


def identity_udf(name: str = "identity") -> UserFunction:
    """A zero-cost pass-through UDF, useful in tests."""
    return UserFunction(name=name, fn=lambda x: x)
