"""Pipeline (de)serialization.

Plumber dumps the serialized pipeline program next to the traced
statistics so offline analysis can rebuild an in-memory model of the
dataflow and *rewrite* it (§4.1, §B: "all Plumber traces are also valid
programs"). We serialize to a JSON-compatible dict keyed by node name,
which is also the rewrite key.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    FilterNode,
    InterleaveDatasetsNode,
    InterleaveSourceNode,
    MapNode,
    Pipeline,
    PrefetchNode,
    RepeatNode,
    ShuffleAndRepeatNode,
    ShuffleNode,
    TakeNode,
    ZipNode,
)
from repro.graph.udf import UserFunction
from repro.io.filesystem import FileCatalog

_FORMAT_VERSION = 1


def pipeline_to_dict(pipeline: Pipeline) -> dict:
    """Serialize a pipeline to a JSON-compatible dict."""
    nodes = []
    for node in pipeline.topological_order():
        nodes.append(
            {
                "name": node.name,
                "kind": node.kind,
                "inputs": [c.name for c in node.inputs],
                "parallelism": node.parallelism,
                "attrs": node.attrs(),
            }
        )
    return {"version": _FORMAT_VERSION, "name": pipeline.name, "nodes": nodes}


def pipeline_to_json(pipeline: Pipeline) -> str:
    """Serialize a pipeline to a JSON string."""
    return json.dumps(pipeline_to_dict(pipeline), sort_keys=True)


def _node_from_dict(spec: dict, resolved: Dict[str, DatasetNode]) -> DatasetNode:
    kind = spec["kind"]
    name = spec["name"]
    attrs = spec.get("attrs", {})
    inputs = [resolved[i] for i in spec.get("inputs", [])]
    parallelism = spec.get("parallelism")

    if kind == "interleave_source":
        return InterleaveSourceNode(
            name,
            catalog=FileCatalog.from_dict(attrs["catalog"]),
            parallelism=parallelism if parallelism is not None else 1,
            read_cpu_seconds_per_record=attrs.get("read_cpu_seconds_per_record", 0.0),
        )
    if kind == "map":
        return MapNode(
            name,
            inputs[0],
            udf=UserFunction.from_dict(attrs["udf"]),
            parallelism=parallelism if parallelism is not None else 1,
            sequential=attrs.get("sequential", False),
        )
    if kind == "filter":
        return FilterNode(
            name,
            inputs[0],
            udf=UserFunction.from_dict(attrs["udf"]),
            keep_fraction=attrs.get("keep_fraction", 1.0),
        )
    if kind == "batch":
        return BatchNode(
            name,
            inputs[0],
            batch_size=attrs["batch_size"],
            parallelism=parallelism if parallelism is not None else 1,
            cpu_seconds_per_example=attrs.get("cpu_seconds_per_example", 0.0),
            drop_remainder=attrs.get("drop_remainder", True),
        )
    if kind == "shuffle":
        return ShuffleNode(
            name,
            inputs[0],
            buffer_size=attrs["buffer_size"],
            cpu_seconds_per_element=attrs.get("cpu_seconds_per_element", 0.0),
            seed=attrs.get("seed", 0),
        )
    if kind == "shuffle_and_repeat":
        return ShuffleAndRepeatNode(
            name,
            inputs[0],
            buffer_size=attrs["buffer_size"],
            cpu_seconds_per_element=attrs.get("cpu_seconds_per_element", 0.0),
            seed=attrs.get("seed", 0),
        )
    if kind == "zip":
        return ZipNode(
            name,
            inputs,
            cpu_seconds_per_element=attrs.get("cpu_seconds_per_element", 0.0),
        )
    if kind == "interleave_datasets":
        return InterleaveDatasetsNode(
            name,
            inputs,
            weights=attrs.get("weights"),
            cpu_seconds_per_element=attrs.get("cpu_seconds_per_element", 0.0),
            seed=attrs.get("seed", 0),
        )
    if kind == "repeat":
        return RepeatNode(name, inputs[0], count=attrs.get("count"))
    if kind == "take":
        return TakeNode(name, inputs[0], count=attrs["count"])
    if kind == "prefetch":
        return PrefetchNode(name, inputs[0], buffer_size=attrs["buffer_size"])
    if kind == "cache":
        return CacheNode(
            name,
            inputs[0],
            storage=attrs.get("storage", "memory"),
            read_cpu_seconds_per_element=attrs.get(
                "read_cpu_seconds_per_element", 1e-6
            ),
        )
    raise ValueError(f"unknown node kind {kind!r}")


def pipeline_from_dict(data: dict) -> Pipeline:
    """Rebuild a pipeline from :func:`pipeline_to_dict` output."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported pipeline format version {version!r}; "
            f"expected {_FORMAT_VERSION}"
        )
    resolved: Dict[str, DatasetNode] = {}
    last: DatasetNode | None = None
    for spec in data["nodes"]:
        node = _node_from_dict(spec, resolved)
        resolved[node.name] = node
        last = node
    if last is None:
        raise ValueError("pipeline has no nodes")
    # Nodes are serialized sources-first; the last one is the root.
    return Pipeline(last, name=data.get("name", "pipeline"))


def pipeline_from_json(text: str) -> Pipeline:
    """Rebuild a pipeline from :func:`pipeline_to_json` output."""
    return pipeline_from_dict(json.loads(text))
