"""Dataset node types and the :class:`Pipeline` container.

The node vocabulary mirrors the ``tf.data`` operators that appear in the
paper's five MLPerf pipelines (Figure 1, Figure 2, §2.1):

* :class:`InterleaveSourceNode` — parallel reads over a file catalog
  (``Interleave`` over per-file ``TFRecordDataset`` readers),
* :class:`MapNode` — possibly-parallel UDF application,
* :class:`FilterNode` — sequential predicate,
* :class:`BatchNode` — grouping (optionally parallel, GNMT's
  "inner-parallelism for Batching"),
* :class:`ShuffleNode` / :class:`ShuffleAndRepeatNode` — sequential
  buffered sampling,
* :class:`RepeatNode`, :class:`TakeNode`,
* :class:`PrefetchNode` — decoupling buffer,
* :class:`CacheNode` — in-memory materialization,
* :class:`ZipNode` / :class:`InterleaveDatasetsNode` — multi-input
  merges (lockstep zip and weighted round-robin mixing), turning the
  chain into a rooted in-tree: every node still has exactly one
  consumer, but merge nodes pull from two or more child subgraphs
  (image+caption multimodal, RL replay-buffer mixing).

Nodes are immutable-ish descriptors; execution state lives in
:mod:`repro.runtime`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence

from repro.graph.udf import UserFunction

#: Sentinel parallelism value meaning "let the tuner decide" (the paper's
#: ``AUTOTUNE`` placeholder).
AUTOTUNE = -1


class DatasetNode:
    """Base class for all dataset operators.

    Parameters
    ----------
    name:
        Unique name within a pipeline; used as the rewrite key exactly as
        the paper joins traced stats with the serialized program (§B).
    inputs:
        Child nodes this operator pulls from (source nodes have none).
    parallelism:
        Degree of parallelism if the node is tunable, else ``None``.
    """

    kind: str = "dataset"
    #: whether ``parallelism`` may be rewritten by a tuner
    tunable: bool = False
    #: declared input arity: ``0`` for sources, ``1`` for chain
    #: operators, ``None`` for variadic merge nodes (two or more
    #: inputs); checked by :func:`repro.graph.validate.validate_pipeline`
    input_arity: Optional[int] = 1

    def __init__(
        self,
        name: str,
        inputs: Sequence["DatasetNode"] = (),
        parallelism: Optional[int] = None,
    ) -> None:
        if not name:
            raise ValueError("DatasetNode requires a non-empty name")
        self.name = name
        self.inputs: List[DatasetNode] = list(inputs)
        self.parallelism = parallelism

    # ------------------------------------------------------------------
    # Structural properties used by the analysis layer.
    # ------------------------------------------------------------------
    @property
    def sequential(self) -> bool:
        """True if the node cannot use more than one core (θ_i ≤ 1)."""
        return not self.tunable

    @property
    def effective_parallelism(self) -> int:
        """Parallelism used at execution time (1 for sequential nodes)."""
        if self.parallelism is None or self.parallelism == AUTOTUNE:
            return 1
        return max(1, int(self.parallelism))

    @property
    def udf(self) -> Optional[UserFunction]:
        """The user function attached to this node, if any."""
        return getattr(self, "_udf", None)

    @property
    def merges(self) -> bool:
        """True for fan-in nodes (declared variadic input arity)."""
        return self.input_arity is None

    def elements_ratio(self) -> float:
        """Mean elements produced per element consumed (the local visit
        ratio ``C_i / C_{i-1}`` in steady state)."""
        return 1.0

    def input_consumption(self, index: int) -> float:
        """Mean elements consumed from input ``index`` per element this
        node produces.

        For chain operators this is ``1 / elements_ratio()`` — the §4.4
        recurrence read edge-wise — so single-input semantics are
        unchanged. Merge nodes override it per input: a zip consumes one
        element from *every* input per output, an interleave consumes
        ``weight[i]`` elements from input ``i`` on average.
        """
        ratio = self.elements_ratio()
        if ratio <= 0:
            return math.inf
        return 1.0 / ratio

    def attrs(self) -> dict:
        """Node-specific serializable attributes."""
        return {}

    def copy_with(self, **overrides) -> "DatasetNode":
        """Shallow-clone this node, overriding constructor kwargs.

        ``inputs`` is always replaced by the caller during a graph clone;
        other attributes default to their current values.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        par = f", parallelism={self.parallelism}" if self.tunable else ""
        return f"{type(self).__name__}(name={self.name!r}{par})"


class InterleaveSourceNode(DatasetNode):
    """Parallel file reads: ``Interleave`` over per-file record readers.

    ``parallelism`` is the cycle length (number of files read
    concurrently); reads consume disk bandwidth in the simulated host.
    """

    kind = "interleave_source"
    tunable = True
    input_arity = 0

    def __init__(
        self,
        name: str,
        catalog,
        parallelism: int = 1,
        read_cpu_seconds_per_record: float = 0.0,
    ) -> None:
        super().__init__(name, inputs=(), parallelism=parallelism)
        self.catalog = catalog
        self.read_cpu_seconds_per_record = read_cpu_seconds_per_record

    def elements_ratio(self) -> float:
        return 1.0

    def attrs(self) -> dict:
        return {
            "catalog": self.catalog.to_dict(),
            "read_cpu_seconds_per_record": self.read_cpu_seconds_per_record,
        }

    def copy_with(self, **overrides) -> "InterleaveSourceNode":
        return InterleaveSourceNode(
            name=overrides.get("name", self.name),
            catalog=overrides.get("catalog", self.catalog),
            parallelism=overrides.get("parallelism", self.parallelism),
            read_cpu_seconds_per_record=overrides.get(
                "read_cpu_seconds_per_record", self.read_cpu_seconds_per_record
            ),
        )


class MapNode(DatasetNode):
    """Apply a UDF to every element, with optional parallelism.

    ``sequential=True`` marks a map whose implementation cannot be
    parallelized (stateful packing/grouping in the Flax text pipelines);
    such nodes behave like any other sequential operator (θ ≤ 1).
    """

    kind = "map"
    tunable = True

    def __init__(
        self,
        name: str,
        input_node: DatasetNode,
        udf: UserFunction,
        parallelism: int = 1,
        sequential: bool = False,
    ) -> None:
        super().__init__(name, inputs=(input_node,), parallelism=parallelism)
        self._udf = udf
        if sequential:
            # Instance attribute shadows the class-level ``tunable``.
            self.tunable = False
            self.parallelism = None

    def elements_ratio(self) -> float:
        return self._udf.examples_ratio

    def attrs(self) -> dict:
        return {"udf": self._udf.to_dict(), "sequential": not self.tunable}

    def copy_with(self, **overrides) -> "MapNode":
        return MapNode(
            name=overrides.get("name", self.name),
            input_node=overrides.get("input_node", self.inputs[0]),
            udf=overrides.get("udf", self._udf),
            parallelism=overrides.get("parallelism", self.parallelism),
            sequential=overrides.get("sequential", not self.tunable),
        )


class FilterNode(DatasetNode):
    """Sequential predicate; keeps ``keep_fraction`` of elements."""

    kind = "filter"
    tunable = False

    def __init__(
        self,
        name: str,
        input_node: DatasetNode,
        udf: UserFunction,
        keep_fraction: float = 1.0,
    ) -> None:
        super().__init__(name, inputs=(input_node,), parallelism=None)
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in [0, 1], got {keep_fraction}")
        self._udf = udf
        self.keep_fraction = keep_fraction

    def elements_ratio(self) -> float:
        return self.keep_fraction

    def attrs(self) -> dict:
        return {"udf": self._udf.to_dict(), "keep_fraction": self.keep_fraction}

    def copy_with(self, **overrides) -> "FilterNode":
        return FilterNode(
            name=overrides.get("name", self.name),
            input_node=overrides.get("input_node", self.inputs[0]),
            udf=overrides.get("udf", self._udf),
            keep_fraction=overrides.get("keep_fraction", self.keep_fraction),
        )


class BatchNode(DatasetNode):
    """Group ``batch_size`` elements into one minibatch element."""

    kind = "batch"
    tunable = True

    def __init__(
        self,
        name: str,
        input_node: DatasetNode,
        batch_size: int,
        parallelism: int = 1,
        cpu_seconds_per_example: float = 0.0,
        drop_remainder: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        super().__init__(name, inputs=(input_node,), parallelism=parallelism)
        self.batch_size = int(batch_size)
        self.cpu_seconds_per_example = cpu_seconds_per_example
        self.drop_remainder = drop_remainder

    def elements_ratio(self) -> float:
        return 1.0 / self.batch_size

    def attrs(self) -> dict:
        return {
            "batch_size": self.batch_size,
            "cpu_seconds_per_example": self.cpu_seconds_per_example,
            "drop_remainder": self.drop_remainder,
        }

    def copy_with(self, **overrides) -> "BatchNode":
        return BatchNode(
            name=overrides.get("name", self.name),
            input_node=overrides.get("input_node", self.inputs[0]),
            batch_size=overrides.get("batch_size", self.batch_size),
            parallelism=overrides.get("parallelism", self.parallelism),
            cpu_seconds_per_example=overrides.get(
                "cpu_seconds_per_example", self.cpu_seconds_per_example
            ),
            drop_remainder=overrides.get("drop_remainder", self.drop_remainder),
        )


class ShuffleNode(DatasetNode):
    """Sequential buffered uniform shuffle."""

    kind = "shuffle"
    tunable = False

    def __init__(
        self,
        name: str,
        input_node: DatasetNode,
        buffer_size: int,
        cpu_seconds_per_element: float = 0.0,
        seed: int = 0,
    ) -> None:
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        super().__init__(name, inputs=(input_node,), parallelism=None)
        self.buffer_size = int(buffer_size)
        self.cpu_seconds_per_element = cpu_seconds_per_element
        self.seed = seed

    def attrs(self) -> dict:
        return {
            "buffer_size": self.buffer_size,
            "cpu_seconds_per_element": self.cpu_seconds_per_element,
            "seed": self.seed,
        }

    def copy_with(self, **overrides) -> "ShuffleNode":
        return ShuffleNode(
            name=overrides.get("name", self.name),
            input_node=overrides.get("input_node", self.inputs[0]),
            buffer_size=overrides.get("buffer_size", self.buffer_size),
            cpu_seconds_per_element=overrides.get(
                "cpu_seconds_per_element", self.cpu_seconds_per_element
            ),
            seed=overrides.get("seed", self.seed),
        )


class ShuffleAndRepeatNode(ShuffleNode):
    """Fused sequential shuffle+repeat (GNMT's bottleneck in Fig. 9b)."""

    kind = "shuffle_and_repeat"

    def copy_with(self, **overrides) -> "ShuffleAndRepeatNode":
        return ShuffleAndRepeatNode(
            name=overrides.get("name", self.name),
            input_node=overrides.get("input_node", self.inputs[0]),
            buffer_size=overrides.get("buffer_size", self.buffer_size),
            cpu_seconds_per_element=overrides.get(
                "cpu_seconds_per_element", self.cpu_seconds_per_element
            ),
            seed=overrides.get("seed", self.seed),
        )


class RepeatNode(DatasetNode):
    """Repeat the child dataset ``count`` times (``None`` = forever)."""

    kind = "repeat"
    tunable = False

    def __init__(
        self, name: str, input_node: DatasetNode, count: Optional[int] = None
    ) -> None:
        if count is not None and count < 1:
            raise ValueError(f"repeat count must be >= 1 or None, got {count}")
        super().__init__(name, inputs=(input_node,), parallelism=None)
        self.count = count

    def attrs(self) -> dict:
        return {"count": self.count}

    def copy_with(self, **overrides) -> "RepeatNode":
        return RepeatNode(
            name=overrides.get("name", self.name),
            input_node=overrides.get("input_node", self.inputs[0]),
            count=overrides.get("count", self.count),
        )


class TakeNode(DatasetNode):
    """Truncate the stream after ``count`` elements."""

    kind = "take"
    tunable = False

    def __init__(self, name: str, input_node: DatasetNode, count: int) -> None:
        if count < 1:
            raise ValueError(f"take count must be >= 1, got {count}")
        super().__init__(name, inputs=(input_node,), parallelism=None)
        self.count = int(count)

    def attrs(self) -> dict:
        return {"count": self.count}

    def copy_with(self, **overrides) -> "TakeNode":
        return TakeNode(
            name=overrides.get("name", self.name),
            input_node=overrides.get("input_node", self.inputs[0]),
            count=overrides.get("count", self.count),
        )


class PrefetchNode(DatasetNode):
    """Decoupling buffer of ``buffer_size`` elements (software pipelining)."""

    kind = "prefetch"
    tunable = False

    def __init__(self, name: str, input_node: DatasetNode, buffer_size: int) -> None:
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        super().__init__(name, inputs=(input_node,), parallelism=None)
        self.buffer_size = int(buffer_size)

    def attrs(self) -> dict:
        return {"buffer_size": self.buffer_size}

    def copy_with(self, **overrides) -> "PrefetchNode":
        return PrefetchNode(
            name=overrides.get("name", self.name),
            input_node=overrides.get("input_node", self.inputs[0]),
            buffer_size=overrides.get("buffer_size", self.buffer_size),
        )


class CacheNode(DatasetNode):
    """Materialize the child's output (first pass) and serve from memory.

    ``read_cpu_seconds_per_element`` models the cheap memory-copy cost of
    serving a cached element.
    """

    kind = "cache"
    tunable = False

    def __init__(
        self,
        name: str,
        input_node: DatasetNode,
        storage: str = "memory",
        read_cpu_seconds_per_element: float = 1e-6,
    ) -> None:
        if storage not in ("memory", "disk"):
            raise ValueError(f"storage must be 'memory' or 'disk', got {storage!r}")
        super().__init__(name, inputs=(input_node,), parallelism=None)
        self.storage = storage
        self.read_cpu_seconds_per_element = read_cpu_seconds_per_element

    def attrs(self) -> dict:
        return {
            "storage": self.storage,
            "read_cpu_seconds_per_element": self.read_cpu_seconds_per_element,
        }

    def copy_with(self, **overrides) -> "CacheNode":
        return CacheNode(
            name=overrides.get("name", self.name),
            input_node=overrides.get("input_node", self.inputs[0]),
            storage=overrides.get("storage", self.storage),
            read_cpu_seconds_per_element=overrides.get(
                "read_cpu_seconds_per_element", self.read_cpu_seconds_per_element
            ),
        )


class ZipNode(DatasetNode):
    """Lockstep merge: one output element pairs one element from every
    input (``tf.data.Dataset.zip``).

    The zip ticks at the rate of its slowest input; per output it
    consumes exactly one element from each branch, so the output's bytes
    are the *sum* of the branch elements' bytes. The stream ends when
    any input is exhausted (shorter branches truncate the longer ones).
    """

    kind = "zip"
    tunable = False
    input_arity = None

    def __init__(
        self,
        name: str,
        input_nodes: Sequence[DatasetNode],
        cpu_seconds_per_element: float = 0.0,
    ) -> None:
        if len(input_nodes) < 2:
            raise ValueError(
                f"zip needs at least 2 inputs, got {len(input_nodes)}"
            )
        super().__init__(name, inputs=input_nodes, parallelism=None)
        self.cpu_seconds_per_element = cpu_seconds_per_element

    def input_consumption(self, index: int) -> float:
        return 1.0

    def attrs(self) -> dict:
        return {"cpu_seconds_per_element": self.cpu_seconds_per_element}

    def copy_with(self, **overrides) -> "ZipNode":
        return ZipNode(
            name=overrides.get("name", self.name),
            input_nodes=overrides.get("input_nodes", self.inputs),
            cpu_seconds_per_element=overrides.get(
                "cpu_seconds_per_element", self.cpu_seconds_per_element
            ),
        )


class InterleaveDatasetsNode(DatasetNode):
    """Weighted round-robin merge over child subgraphs
    (``tf.data.Dataset.sample_from_datasets``-style replay mixing).

    Per output element, input ``i`` contributes with probability
    ``weights[i]`` (normalized), so on average the node consumes
    ``weights[i]`` elements from branch ``i`` per output. The mixed
    stream ends when the first branch is exhausted, keeping the declared
    mix exact for the whole stream.
    """

    kind = "interleave_datasets"
    tunable = False
    input_arity = None

    def __init__(
        self,
        name: str,
        input_nodes: Sequence[DatasetNode],
        weights: Optional[Sequence[float]] = None,
        cpu_seconds_per_element: float = 0.0,
        seed: int = 0,
    ) -> None:
        if len(input_nodes) < 2:
            raise ValueError(
                "interleave_datasets needs at least 2 inputs, "
                f"got {len(input_nodes)}"
            )
        super().__init__(name, inputs=input_nodes, parallelism=None)
        if weights is None:
            weights = [1.0] * len(input_nodes)
        if len(weights) != len(input_nodes):
            raise ValueError(
                f"got {len(weights)} weights for {len(input_nodes)} inputs"
            )
        if any(not w > 0 for w in weights):
            raise ValueError(f"weights must be > 0, got {list(weights)}")
        total = float(sum(weights))
        # Idempotent normalization: already-normalized weights (modulo
        # float residue) pass through untouched so a serialize →
        # deserialize round trip is byte-identical.
        if math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-9):
            self.weights = tuple(float(w) for w in weights)
        else:
            self.weights = tuple(float(w) / total for w in weights)
        self.cpu_seconds_per_element = cpu_seconds_per_element
        self.seed = seed

    def input_consumption(self, index: int) -> float:
        return self.weights[index]

    def attrs(self) -> dict:
        return {
            "weights": list(self.weights),
            "cpu_seconds_per_element": self.cpu_seconds_per_element,
            "seed": self.seed,
        }

    def copy_with(self, **overrides) -> "InterleaveDatasetsNode":
        return InterleaveDatasetsNode(
            name=overrides.get("name", self.name),
            input_nodes=overrides.get("input_nodes", self.inputs),
            weights=overrides.get("weights", self.weights),
            cpu_seconds_per_element=overrides.get(
                "cpu_seconds_per_element", self.cpu_seconds_per_element
            ),
            seed=overrides.get("seed", self.seed),
        )


class Pipeline:
    """A rooted dataset tree plus pipeline-level metadata.

    The root produces the elements the model consumes (minibatches once a
    :class:`BatchNode` is present). Iteration order in
    :meth:`topological_order` is sources-first, root-last, matching the
    direction of the byte-accounting recurrence in §A.
    """

    def __init__(self, root: DatasetNode, name: str = "pipeline") -> None:
        self.root = root
        self.name = name
        self._check_unique_names()

    # ------------------------------------------------------------------
    def _check_unique_names(self) -> None:
        seen: Dict[str, DatasetNode] = {}
        for node in self.iter_nodes():
            if node.name in seen and seen[node.name] is not node:
                raise ValueError(f"duplicate node name {node.name!r} in pipeline")
            seen[node.name] = node

    def iter_nodes(self) -> Iterator[DatasetNode]:
        """Yield nodes root-first (pre-order)."""
        stack = [self.root]
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(node.inputs)

    def topological_order(self) -> List[DatasetNode]:
        """Nodes ordered sources-first (children before parents)."""
        order: List[DatasetNode] = []
        seen = set()

        def visit(node: DatasetNode) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for child in node.inputs:
                visit(child)
            order.append(node)

        visit(self.root)
        return order

    @property
    def nodes(self) -> Dict[str, DatasetNode]:
        """Name → node mapping."""
        return {n.name: n for n in self.iter_nodes()}

    def node(self, name: str) -> DatasetNode:
        """Look up a node by name, raising ``KeyError`` with context."""
        nodes = self.nodes
        if name not in nodes:
            raise KeyError(
                f"no node named {name!r}; have {sorted(nodes)}"
            )
        return nodes[name]

    def sources(self) -> List[InterleaveSourceNode]:
        """All source nodes, sources-first order."""
        return [
            n for n in self.topological_order() if isinstance(n, InterleaveSourceNode)
        ]

    def tunables(self) -> List[DatasetNode]:
        """Nodes whose parallelism a tuner may rewrite."""
        return [n for n in self.topological_order() if n.tunable]

    def parent_of(self, name: str) -> Optional[DatasetNode]:
        """The unique consumer of node ``name`` (``None`` for the root)."""
        for node in self.iter_nodes():
            for child in node.inputs:
                if child.name == name:
                    return node
        return None

    def visit_ratios(self) -> Dict[str, float]:
        """Structural visit ratios V_i (root units per node element).

        This is the *declared* recurrence ``V_i = r_i × V_{i-1}`` (§4.4)
        computed from node semantics; the tracer recomputes the same
        quantity from observed counters and the two must agree in steady
        state (tested).
        """
        ratios: Dict[str, float] = {self.root.name: 1.0}
        stack = [self.root]
        while stack:
            node = stack.pop()
            v_parent = ratios[node.name]
            for i, child in enumerate(node.inputs):
                # The parent consumes ``input_consumption(i)`` elements
                # from input ``i`` per element it produces — 1/ratio for
                # chain operators, per-branch for merges.
                ratios[child.name] = v_parent * node.input_consumption(i)
                stack.append(child)
        return ratios

    def batch_size(self) -> int:
        """Examples per root element.

        For a chain this is the product of batch sizes along the spine.
        At a zip the branch contributions *add* (one output carries one
        element from every branch); at an interleave they mix by weight.
        """

        def examples(node: DatasetNode) -> float:
            if not node.inputs:
                return 1.0
            if isinstance(node, ZipNode):
                return sum(examples(c) for c in node.inputs)
            if isinstance(node, InterleaveDatasetsNode):
                return sum(
                    w * examples(c)
                    for w, c in zip(node.weights, node.inputs)
                )
            per_input = examples(node.inputs[0])
            if isinstance(node, BatchNode):
                return per_input * node.batch_size
            return per_input

        return max(1, int(round(examples(self.root))))

    def below_cache_names(self) -> set:
        """Names of nodes strictly below any :class:`CacheNode` — the
        subtree with no steady-state cost once the cache is populated
        (the paper's post-first-epoch regime). Shared by the LP, the
        steady-state model, and the analytic trace backend so the three
        never disagree on which nodes are free."""
        names: set = set()
        for node in self.iter_nodes():
            if isinstance(node, CacheNode):
                stack = list(node.inputs)
                while stack:
                    child = stack.pop()
                    names.add(child.name)
                    stack.extend(child.inputs)
        return names

    def clone(self) -> "Pipeline":
        """Deep-copy the node structure (UDFs/catalogs shared)."""
        mapping: Dict[int, DatasetNode] = {}

        def copy(node: DatasetNode) -> DatasetNode:
            if id(node) in mapping:
                return mapping[id(node)]
            new_inputs = [copy(c) for c in node.inputs]
            if len(new_inputs) > 1:
                clone = node.copy_with(input_nodes=new_inputs)
            elif new_inputs:
                clone = node.copy_with(input_node=new_inputs[0])
                clone.inputs = new_inputs
            else:
                clone = node.copy_with()
            mapping[id(node)] = clone
            return clone

        return Pipeline(copy(self.root), name=self.name)

    def _render_chain(self, node: DatasetNode) -> str:
        """Root-first ``a <- b`` rendering; merge branches bracketed as
        ``merge <- [branch_a | branch_b]`` so fan-in is visible instead
        of being flattened into a misleading linear chain."""
        if not node.inputs:
            return node.name
        if len(node.inputs) == 1:
            return f"{node.name} <- {self._render_chain(node.inputs[0])}"
        branches = " | ".join(self._render_chain(c) for c in node.inputs)
        return f"{node.name} <- [{branches}]"

    def describe(self) -> str:
        """Multi-line indented tree of the graph, root-first."""
        lines: List[str] = []

        def visit(node: DatasetNode, depth: int) -> None:
            par = f" x{node.effective_parallelism}" if node.tunable else ""
            lines.append(f"{'  ' * depth}{node.name} [{node.kind}{par}]")
            for child in node.inputs:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Pipeline({self.name!r}: {self._render_chain(self.root)})"
