"""Declarative dataset-graph layer (the ``tf.data`` equivalent).

A pipeline is a tree of :class:`~repro.graph.datasets.DatasetNode` objects,
built with the fluent API in :mod:`repro.graph.builder`, validated by
:mod:`repro.graph.validate`, and serialized by :mod:`repro.graph.serialize`
so that a trace (stats + program) can be shipped to Plumber's offline
analysis exactly as in the paper.
"""

from repro.graph.builder import DatasetBuilder, from_source, from_tfrecords
from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    FilterNode,
    InterleaveSourceNode,
    MapNode,
    Pipeline,
    PrefetchNode,
    RepeatNode,
    ShuffleAndRepeatNode,
    ShuffleNode,
    TakeNode,
)
from repro.graph.serialize import pipeline_from_dict, pipeline_to_dict
from repro.graph.signature import ElementSpec, infer_signatures
from repro.graph.udf import CostModel, UserFunction
from repro.graph.validate import GraphValidationError, validate_pipeline

__all__ = [
    "BatchNode",
    "CacheNode",
    "CostModel",
    "DatasetBuilder",
    "DatasetNode",
    "ElementSpec",
    "FilterNode",
    "GraphValidationError",
    "InterleaveSourceNode",
    "MapNode",
    "Pipeline",
    "PrefetchNode",
    "RepeatNode",
    "ShuffleAndRepeatNode",
    "ShuffleNode",
    "TakeNode",
    "UserFunction",
    "from_source",
    "from_tfrecords",
    "infer_signatures",
    "pipeline_from_dict",
    "pipeline_to_dict",
    "validate_pipeline",
]
