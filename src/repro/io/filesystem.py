"""Synthetic file catalogs.

A :class:`FileCatalog` is the unit Plumber's tracer observes at the
storage layer: a list of files, each with a byte size and a record count.
Sizes are drawn deterministically from a seeded lognormal so that file
sizes vary realistically — this is what makes the subsampled
dataset-size estimator (§A, "1% of files gives 1% error") a non-trivial
statistical claim to reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np


@dataclass(frozen=True)
class FileStat:
    """One file's metadata: name, total bytes, and record count."""

    name: str
    size_bytes: float
    num_records: int

    @property
    def bytes_per_record(self) -> float:
        """Mean record size within this file."""
        if self.num_records == 0:
            return 0.0
        return self.size_bytes / self.num_records


class FileCatalog:
    """A deterministic synthetic dataset laid out as record files.

    Parameters
    ----------
    name:
        Dataset identifier (e.g. ``"imagenet"``).
    num_files:
        Number of shard files (ImageNet: 1024).
    records_per_file:
        Mean records per file (ImageNet: ~1200).
    bytes_per_record:
        Mean record size in bytes (ImageNet: ~110 KB).
    size_cv:
        Coefficient of variation of per-file sizes (lognormal spread).
    seed:
        RNG seed; the same (name, seed) always yields the same files.
    """

    def __init__(
        self,
        name: str,
        num_files: int,
        records_per_file: float,
        bytes_per_record: float,
        size_cv: float = 0.15,
        seed: int = 0,
    ) -> None:
        if num_files < 1:
            raise ValueError(f"num_files must be >= 1, got {num_files}")
        if records_per_file <= 0:
            raise ValueError(
                f"records_per_file must be > 0, got {records_per_file}"
            )
        if bytes_per_record <= 0:
            raise ValueError(
                f"bytes_per_record must be > 0, got {bytes_per_record}"
            )
        if size_cv < 0:
            raise ValueError(f"size_cv must be >= 0, got {size_cv}")
        self.name = name
        self.num_files = int(num_files)
        self.records_per_file = float(records_per_file)
        self.bytes_per_record = float(bytes_per_record)
        self.size_cv = float(size_cv)
        self.seed = int(seed)
        self._files: List[FileStat] | None = None

    # ------------------------------------------------------------------
    def _generate(self) -> List[FileStat]:
        rng = np.random.default_rng(self.seed)
        if self.size_cv > 0:
            # Lognormal with the requested mean and CV for record counts.
            sigma2 = np.log1p(self.size_cv**2)
            mu = np.log(self.records_per_file) - sigma2 / 2.0
            counts = rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=self.num_files)
        else:
            counts = np.full(self.num_files, self.records_per_file)
        counts = np.maximum(1, np.round(counts)).astype(int)
        sizes = counts * self.bytes_per_record
        return [
            FileStat(
                name=f"{self.name}/part-{i:05d}",
                size_bytes=float(sizes[i]),
                num_records=int(counts[i]),
            )
            for i in range(self.num_files)
        ]

    @property
    def files(self) -> Sequence[FileStat]:
        """All file stats (generated lazily, cached)."""
        if self._files is None:
            self._files = self._generate()
        return self._files

    def __len__(self) -> int:
        return self.num_files

    def __iter__(self) -> Iterator[FileStat]:
        return iter(self.files)

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> float:
        """Exact dataset size in bytes (ground truth for §5.3)."""
        return float(sum(f.size_bytes for f in self.files))

    @property
    def total_records(self) -> int:
        """Exact record count (ImageNet: ~1.2M)."""
        return int(sum(f.num_records for f in self.files))

    @property
    def mean_bytes_per_record(self) -> float:
        """Dataset-wide mean record size."""
        records = self.total_records
        return self.total_bytes / records if records else 0.0

    def scaled(
        self, factor: float, seed: int | None = None, min_files: int = 8
    ) -> "FileCatalog":
        """A catalog with total records scaled by ``factor``.

        Used to run laptop-scale simulations of datacenter-scale datasets
        while preserving per-file statistics. Scaling primarily reduces
        the file count; once the count would drop below ``min_files``
        (interleave still needs streams to read from), the remaining
        factor is applied to records-per-file instead, so the *total*
        record count always scales by ``factor``.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be > 0, got {factor}")
        new_files = max(
            min(min_files, self.num_files), int(round(self.num_files * factor))
        )
        residual = factor * self.num_files / new_files
        return FileCatalog(
            name=f"{self.name}@x{factor:g}",
            num_files=new_files,
            records_per_file=max(1.0, self.records_per_file * residual),
            bytes_per_record=self.bytes_per_record,
            size_cv=self.size_cv,
            seed=self.seed if seed is None else seed,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize catalog parameters (files regenerate from the seed)."""
        return {
            "name": self.name,
            "num_files": self.num_files,
            "records_per_file": self.records_per_file,
            "bytes_per_record": self.bytes_per_record,
            "size_cv": self.size_cv,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileCatalog":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FileCatalog({self.name!r}, files={self.num_files}, "
            f"~{self.total_bytes / 1e9:.1f} GB)"
        )
