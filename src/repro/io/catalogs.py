"""Dataset catalog presets matching the paper's statistics (§D, §5.3).

* ImageNet: 1024 files x ~1200 records x ~110 KB ≈ 148 GB (train).
* ImageNet validation: 50k images, ~6.4 GB — the set ResNetLinear caches
  decoded (§5.4).
* COCO: 20 GB shared by Mask-RCNN and MultiBoxSSD.
* WMT17 (Transformer): 1.2 GB processed text.
* WMT16 (GNMT): 1.9 GB processed text.

All presets accept a ``scale`` factor so simulations stay laptop-sized
while preserving per-file statistics; Plumber's estimators only see
per-file sizes and ratios, so scaling does not change the math.
"""

from __future__ import annotations

from repro.io.filesystem import FileCatalog

GB = 1e9
KB = 1e3


def imagenet_catalog(scale: float = 1.0, seed: int = 1) -> FileCatalog:
    """ImageNet train set: 1024 files, 1.2M images, ~148 GB."""
    cat = FileCatalog(
        name="imagenet",
        num_files=1024,
        records_per_file=1200.0,
        bytes_per_record=115.0 * KB,
        size_cv=0.12,
        seed=seed,
    )
    return cat if scale == 1.0 else cat.scaled(scale)


def imagenet_validation_catalog(scale: float = 1.0, seed: int = 2) -> FileCatalog:
    """ImageNet validation set: 128 files, 50k images, ~5.8 GB."""
    cat = FileCatalog(
        name="imagenet-val",
        num_files=128,
        records_per_file=390.0,
        bytes_per_record=115.0 * KB,
        size_cv=0.12,
        seed=seed,
    )
    return cat if scale == 1.0 else cat.scaled(scale)


def coco_catalog(scale: float = 1.0, seed: int = 3) -> FileCatalog:
    """MS-COCO: 256 files, ~118k images, ~20 GB."""
    cat = FileCatalog(
        name="coco",
        num_files=256,
        records_per_file=460.0,
        bytes_per_record=170.0 * KB,
        size_cv=0.08,
        seed=seed,
    )
    return cat if scale == 1.0 else cat.scaled(scale)


def wmt17_catalog(scale: float = 1.0, seed: int = 4) -> FileCatalog:
    """WMT17 EN-DE (Transformer): ~1.2 GB of packed text."""
    cat = FileCatalog(
        name="wmt17",
        num_files=100,
        records_per_file=45_000.0,
        bytes_per_record=266.0,
        size_cv=0.1,
        seed=seed,
    )
    return cat if scale == 1.0 else cat.scaled(scale)


def wmt16_catalog(scale: float = 1.0, seed: int = 5) -> FileCatalog:
    """WMT16 EN-DE (GNMT): ~1.9 GB of packed text."""
    cat = FileCatalog(
        name="wmt16",
        num_files=100,
        records_per_file=68_000.0,
        bytes_per_record=280.0,
        size_cv=0.1,
        seed=seed,
    )
    return cat if scale == 1.0 else cat.scaled(scale)


def toy_catalog(
    num_files: int = 8,
    records_per_file: float = 64.0,
    bytes_per_record: float = 1024.0,
    seed: int = 0,
) -> FileCatalog:
    """A small catalog for unit tests and the quickstart example."""
    return FileCatalog(
        name="toy",
        num_files=num_files,
        records_per_file=records_per_file,
        bytes_per_record=bytes_per_record,
        size_cv=0.1,
        seed=seed,
    )
