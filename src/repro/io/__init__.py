"""Storage substrate: synthetic file catalogs and dataset presets.

The paper's pipelines read TFRecord files from disk or cloud storage.
We model a dataset as a :class:`~repro.io.filesystem.FileCatalog` — a set
of files with (deterministic, seeded) per-file sizes and record counts —
which is everything Plumber's byte accounting observes (§4.4, §A).
"""

from repro.io.catalogs import (
    coco_catalog,
    imagenet_catalog,
    imagenet_validation_catalog,
    toy_catalog,
    wmt16_catalog,
    wmt17_catalog,
)
from repro.io.filesystem import FileCatalog, FileStat
from repro.io.tfrecord import TFRecordFormat

__all__ = [
    "FileCatalog",
    "FileStat",
    "TFRecordFormat",
    "coco_catalog",
    "imagenet_catalog",
    "imagenet_validation_catalog",
    "toy_catalog",
    "wmt16_catalog",
    "wmt17_catalog",
]
