"""A minimal model of the TFRecord on-disk format.

Plumber's tracer instruments ``read()`` calls and unpacks records from
files (§4.1: "Each record is unpacked into roughly 1200 elements").
For the simulator we only need the framing arithmetic: how many payload
bytes a record of a given example size occupies, and how many records fit
in a file. The in-process executor uses :meth:`encode`/:meth:`decode`
to round-trip real payloads with the same framing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List

#: TFRecord framing: u64 length + u32 length-crc + payload + u32 data-crc.
_HEADER_BYTES = 8 + 4
_FOOTER_BYTES = 4
_LENGTH_STRUCT = struct.Struct("<Q")
_CRC_STRUCT = struct.Struct("<I")


def _masked_crc(data: bytes) -> int:
    """TFRecord's masked CRC32C, approximated with CRC32 (same width)."""
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return ((crc >> 15) | (crc << 17)) + 0xA282EAD8 & 0xFFFFFFFF


@dataclass(frozen=True)
class TFRecordFormat:
    """Framing arithmetic for TFRecord-style files."""

    header_bytes: int = _HEADER_BYTES
    footer_bytes: int = _FOOTER_BYTES

    def record_bytes(self, payload_bytes: float) -> float:
        """On-disk bytes for one record with ``payload_bytes`` payload."""
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
        return payload_bytes + self.header_bytes + self.footer_bytes

    def records_in_file(self, file_bytes: float, payload_bytes: float) -> int:
        """How many records of ``payload_bytes`` fit in ``file_bytes``."""
        per = self.record_bytes(payload_bytes)
        if per <= 0:
            return 0
        return int(file_bytes // per)

    # ------------------------------------------------------------------
    # Real encode/decode for the in-process executor.
    # ------------------------------------------------------------------
    def encode(self, payloads: List[bytes]) -> bytes:
        """Pack payloads into a TFRecord-framed byte string."""
        out = bytearray()
        for payload in payloads:
            length = _LENGTH_STRUCT.pack(len(payload))
            out += length
            out += _CRC_STRUCT.pack(_masked_crc(length))
            out += payload
            out += _CRC_STRUCT.pack(_masked_crc(payload))
        return bytes(out)

    def decode(self, blob: bytes) -> Iterator[bytes]:
        """Unpack a framed byte string, verifying CRCs."""
        offset = 0
        n = len(blob)
        while offset < n:
            if offset + _HEADER_BYTES > n:
                raise ValueError("truncated TFRecord header")
            (length,) = _LENGTH_STRUCT.unpack_from(blob, offset)
            (length_crc,) = _CRC_STRUCT.unpack_from(blob, offset + 8)
            if length_crc != _masked_crc(blob[offset : offset + 8]):
                raise ValueError("corrupt TFRecord length CRC")
            start = offset + _HEADER_BYTES
            end = start + length
            if end + _FOOTER_BYTES > n:
                raise ValueError("truncated TFRecord payload")
            payload = blob[start:end]
            (data_crc,) = _CRC_STRUCT.unpack_from(blob, end)
            if data_crc != _masked_crc(payload):
                raise ValueError("corrupt TFRecord data CRC")
            yield payload
            offset = end + _FOOTER_BYTES
