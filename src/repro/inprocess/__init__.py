"""A real (non-simulated) in-process executor.

Runs pipelines over actual Python data, preserving element-level
semantics: UDFs are called, filters predicate, shuffles reorder with a
seeded RNG, caches memoize, batches group. Used for semantic tests and
the quickstart; a wall-clock tracer produces the same
:class:`~repro.core.trace.PipelineTrace` shape as the simulator so
Plumber can analyze real runs too.
"""

from repro.inprocess.executor import (
    InProcessError,
    iterate,
    materialize,
    trace_real_run,
)

__all__ = ["InProcessError", "iterate", "materialize", "trace_real_run"]
