"""Pull-based execution of a pipeline over real Python objects.

The element source is a ``record_fn(file_index, record_index) -> object``
callable (defaults to returning ``(file_index, record_index)`` tuples),
iterated per the catalog's layout. Each node becomes a Python iterator
following the Open/Next/Close model of §2.1; UDFs must carry a real
``fn`` to participate.

This executor is intentionally sequential and deterministic — it is the
semantics oracle the simulator's ratio arithmetic is tested against, and
the engine behind the quickstart example.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.core.trace import HostInfo, PipelineTrace
from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    FilterNode,
    InterleaveSourceNode,
    MapNode,
    Pipeline,
    PrefetchNode,
    RepeatNode,
    ShuffleAndRepeatNode,
    ShuffleNode,
    TakeNode,
)
from repro.graph.serialize import pipeline_to_dict
from repro.host.machine import Machine
from repro.runtime.stats import NodeStats


class InProcessError(RuntimeError):
    """Raised when a pipeline cannot execute in-process (e.g. a UDF has
    no Python callable attached)."""


def _default_record_fn(file_index: int, record_index: int) -> tuple:
    return (file_index, record_index)


class _Tracer:
    """Wall-clock per-node counters with the simulator's stats shape."""

    def __init__(self) -> None:
        self.stats: Dict[str, NodeStats] = {}
        self.start = time.perf_counter()

    def for_node(self, node: DatasetNode) -> NodeStats:
        if node.name not in self.stats:
            self.stats[node.name] = NodeStats(
                name=node.name,
                kind=node.kind,
                parallelism=node.effective_parallelism,
                sequential=node.sequential,
            )
        return self.stats[node.name]

    def elapsed(self) -> float:
        return time.perf_counter() - self.start


def _approx_nbytes(value: Any) -> float:
    """Best-effort byte size of an element for the tracer."""
    if isinstance(value, np.ndarray):
        return float(value.nbytes)
    if isinstance(value, (bytes, bytearray, str)):
        return float(len(value))
    if isinstance(value, (list, tuple)):
        return float(sum(_approx_nbytes(v) for v in value))
    return 8.0


def _timed(tracer: Optional[_Tracer], node: DatasetNode, fn: Callable, *args):
    """Call ``fn`` recording CPU time against ``node``."""
    if tracer is None:
        return fn(*args)
    t0 = time.process_time()
    out = fn(*args)
    stats = tracer.for_node(node)
    stats.on_cpu(time.process_time() - t0)
    return out


def _node_iter(
    node: DatasetNode,
    record_fn: Callable[[int, int], Any],
    tracer: Optional[_Tracer],
) -> Iterator[Any]:
    """Instantiate the iterator tree for ``node`` (Open), recursively."""
    if isinstance(node, InterleaveSourceNode):
        yield from _source_iter(node, record_fn, tracer)
        return

    child = node.inputs[0]

    if isinstance(node, MapNode):
        udf = node.udf
        if udf.fn is None:
            raise InProcessError(
                f"map node {node.name!r} UDF {udf.name!r} has no Python fn"
            )
        for item in _node_iter(child, record_fn, tracer):
            out = _timed(tracer, node, udf.fn, item)
            _record(tracer, node, out)
            yield out
        return

    if isinstance(node, FilterNode):
        udf = node.udf
        if udf.fn is None:
            raise InProcessError(
                f"filter node {node.name!r} UDF {udf.name!r} has no Python fn"
            )
        for item in _node_iter(child, record_fn, tracer):
            if _timed(tracer, node, udf.fn, item):
                _record(tracer, node, item)
                yield item
        return

    if isinstance(node, BatchNode):
        batch: List[Any] = []
        for item in _node_iter(child, record_fn, tracer):
            batch.append(item)
            if len(batch) == node.batch_size:
                out = _stack(batch)
                _record(tracer, node, out)
                yield out
                batch = []
        if batch and not node.drop_remainder:
            out = _stack(batch)
            _record(tracer, node, out)
            yield out
        return

    if isinstance(node, (ShuffleNode, ShuffleAndRepeatNode)):
        repeat_forever = isinstance(node, ShuffleAndRepeatNode)
        rng = np.random.default_rng(node.seed)
        while True:
            buffer: List[Any] = []
            for item in _node_iter(child, record_fn, tracer):
                if len(buffer) < node.buffer_size:
                    buffer.append(item)
                    continue
                idx = int(rng.integers(len(buffer)))
                out = buffer[idx]
                buffer[idx] = item
                _record(tracer, node, out)
                yield out
            while buffer:
                idx = int(rng.integers(len(buffer)))
                out = buffer.pop(idx)
                _record(tracer, node, out)
                yield out
            if not repeat_forever:
                return

    if isinstance(node, RepeatNode):
        epoch = 0
        while node.count is None or epoch < node.count:
            emitted = False
            for item in _node_iter(child, record_fn, tracer):
                emitted = True
                _record(tracer, node, item)
                yield item
            if not emitted:
                return  # empty child: avoid spinning forever
            epoch += 1
        return

    if isinstance(node, TakeNode):
        emitted = 0
        for item in _node_iter(child, record_fn, tracer):
            if emitted >= node.count:
                return
            emitted += 1
            _record(tracer, node, item)
            yield item
        return

    if isinstance(node, PrefetchNode):
        # In-process execution is single-threaded; prefetch is a no-op
        # pass-through preserving semantics.
        for item in _node_iter(child, record_fn, tracer):
            _record(tracer, node, item)
            yield item
        return

    if isinstance(node, CacheNode):
        stored: List[Any] = []
        for item in _node_iter(child, record_fn, tracer):
            stored.append(item)
            _record(tracer, node, item)
            yield item
        while True:
            # Subsequent pulls replay the materialized pass; the iterator
            # is infinite only if a repeat above keeps pulling.
            return

    raise InProcessError(f"no in-process implementation for {node.kind!r}")


def _source_iter(
    node: InterleaveSourceNode,
    record_fn: Callable[[int, int], Any],
    tracer: Optional[_Tracer],
) -> Iterator[Any]:
    """Round-robin interleave over ``cycle_length`` file readers."""
    catalog = node.catalog
    cycle = max(1, node.effective_parallelism)
    files = list(range(catalog.num_files))
    readers: List[Iterator[Any]] = []
    next_file = 0

    def file_reader(fi: int) -> Iterator[Any]:
        n = catalog.files[fi].num_records
        for ri in range(n):
            yield record_fn(fi, ri)
        if tracer is not None:
            tracer.for_node(node).on_file_done(catalog.files[fi].size_bytes)

    while next_file < len(files) and len(readers) < cycle:
        readers.append(file_reader(files[next_file]))
        next_file += 1
    idx = 0
    while readers:
        reader = readers[idx % len(readers)]
        try:
            item = next(reader)
        except StopIteration:
            readers.remove(reader)
            if next_file < len(files):
                readers.append(file_reader(files[next_file]))
                next_file += 1
            continue
        _record(tracer, node, item)
        yield item
        idx += 1


def _record(tracer: Optional[_Tracer], node: DatasetNode, item: Any) -> None:
    if tracer is None:
        return
    tracer.for_node(node).on_produce(1.0, _approx_nbytes(item), tracer.elapsed())


def _stack(batch: List[Any]) -> Any:
    if batch and isinstance(batch[0], np.ndarray):
        return np.stack(batch)
    return list(batch)


def iterate(
    pipeline: Pipeline,
    record_fn: Callable[[int, int], Any] = _default_record_fn,
    tracer: Optional[_Tracer] = None,
) -> Iterator[Any]:
    """Iterate the pipeline's root elements (possibly infinite)."""
    return _node_iter(pipeline.root, record_fn, tracer)


def materialize(
    pipeline: Pipeline,
    record_fn: Callable[[int, int], Any] = _default_record_fn,
    limit: Optional[int] = None,
) -> List[Any]:
    """Collect up to ``limit`` root elements into a list."""
    out: List[Any] = []
    for item in iterate(pipeline, record_fn):
        out.append(item)
        if limit is not None and len(out) >= limit:
            break
    return out


def trace_real_run(
    pipeline: Pipeline,
    machine: Machine,
    record_fn: Callable[[int, int], Any] = _default_record_fn,
    limit: int = 1000,
) -> PipelineTrace:
    """Execute for real with wall-clock tracing; return a Plumber trace.

    The returned trace has the same shape as a simulated one, so
    :func:`repro.core.build_model` and the planners work on real runs.
    """
    tracer = _Tracer()
    count = 0.0
    for _ in iterate(pipeline, record_fn, tracer):
        count += 1
        if count >= limit:
            break
    elapsed = max(tracer.elapsed(), 1e-9)
    # Nodes that never produced still need stats entries.
    for node in pipeline.topological_order():
        tracer.for_node(node)
    return PipelineTrace(
        program=pipeline_to_dict(pipeline),
        stats=tracer.stats,
        host=HostInfo.from_machine(machine),
        measured_seconds=elapsed,
        root_throughput=count / elapsed,
        backend="inprocess",
    )
