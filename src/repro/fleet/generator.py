"""Synthetic fleet generation.

Every job is a real (small) pipeline built with the public graph API,
assigned a host and an accelerator, and evaluated with the analytic
steady-state model — the fleet statistics *emerge* from the population
of configurations rather than being sampled directly.

Population structure, mirroring §3's narrative:

* domains: vision (heavy decode UDFs), NLP (tiny ops dominated by
  framework overhead), RL (medium, bursty); plus two multi-source
  templates — ``multimodal`` (vision + caption branches merged in
  lockstep by ``zip``) and ``rl_replay`` (fresh rollouts interleaved
  with cheap replay-buffer reads by weight) — off by default in
  ``domain_weights`` so the §3 population is unchanged;
* configurations: a fraction of jobs are well tuned, a fraction
  partially tuned, and a fraction naive (parallelism 1, no prefetch) —
  the software misconfigurations Observation 2 attributes stalls to;
* hosts: 8–96 cores with varying storage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.steady_state import predict_throughput
from repro.core.spec import OptimizeSpec
from repro.graph.builder import (
    from_tfrecords,
    interleave_datasets,
    zip_datasets,
)
from repro.graph.signature import infer_signatures
from repro.graph.udf import CostModel, UserFunction
from repro.host.disk import cloud_storage, hdd_st4000, local_ssd_fast, nvme_p3600
from repro.host.machine import Machine
from repro.io.filesystem import FileCatalog

#: baseline Next-call cost when data is ready in a prefetch buffer
#: ("it takes tens of microseconds to read input data that is readily
#: available from a prefetch buffer", §3.2)
READY_LATENCY_SECONDS = 25e-6
#: host memory bandwidth assumed for utilization accounting
MEMORY_BANDWIDTH_BYTES = 40e9
#: each element is written once and read once per stage boundary
MEMORY_COPY_FACTOR = 2.0


@dataclass(frozen=True)
class JobSample:
    """One fleet job's measured quantities."""

    domain: str
    config: str                 # tuned / partial / naive
    next_latency: float         # mean blocked seconds per step
    cpu_utilization: float
    membw_utilization: float
    pipeline_rate: float        # minibatches/s the pipeline can sustain
    model_rate: float           # minibatches/s the accelerator consumes
    cores: int

    @property
    def input_bound(self) -> bool:
        """True when the pipeline is slower than the model."""
        return self.pipeline_rate < self.model_rate


@dataclass
class FleetConfig:
    """Population mixture knobs (defaults calibrated to §3)."""

    num_jobs: int = 4000
    seed: int = 0
    domain_weights: Dict[str, float] = field(
        default_factory=lambda: {"vision": 0.60, "nlp": 0.25, "rl": 0.15}
    )
    # Configuration mixture: most jobs are at least partially tuned, but
    # a long tail is naive — that tail is the >100ms latency band.
    config_weights: Dict[str, float] = field(
        default_factory=lambda: {"tuned": 0.46, "partial": 0.42, "naive": 0.12}
    )
    #: accelerator speed: model step budget as a multiple of the tuned
    #: pipeline's capability (log-uniform). > 1 means the model is slower
    #: than even a tuned pipeline (the job is never input-bound).
    accel_speed_low: float = 0.03
    accel_speed_high: float = 2.5
    #: full optimizer configuration stamped onto generated fleet jobs
    #: (``None`` = inherit the batch service's default spec); the
    #: per-domain granularity and backend overrides below are folded in
    #: on top of it.
    optimize_spec: OptimizeSpec | None = None
    #: trace acquisition overrides stamped onto generated fleet jobs
    #: (``None`` = inherit the batch service's defaults): trace backend
    #: name, chunk granularity, and per-domain granularity overrides —
    #: the knob that makes µs-cost NLP jobs cheap to simulate.
    trace_backend: str | None = None
    trace_granularity: int | None = None
    domain_granularity: Dict[str, int] = field(default_factory=dict)


_DOMAIN_PARAMS = {
    # per-example UDF cpu-seconds (lognormal median), ops count, batch
    "vision": dict(op_cost=2e-3, op_sigma=0.7, ops=(3, 5), batch=128,
                   record_bytes=120e3, size_ratio=5.0),
    "nlp": dict(op_cost=3e-6, op_sigma=0.7, ops=(3, 6), batch=16,
                record_bytes=300.0, size_ratio=1.2),
    "rl": dict(op_cost=1e-4, op_sigma=1.0, ops=(2, 4), batch=8,
               record_bytes=8e3, size_ratio=1.5),
}

#: datacenter hosts skew large (the paper's jobs run next to TPU hosts)
_CORE_CHOICES = (16, 32, 32, 64, 96)
_DISK_FACTORIES = (local_ssd_fast, nvme_p3600, hdd_st4000, cloud_storage)


def _choice(rng: np.random.Generator, weights: Dict[str, float]) -> str:
    names = list(weights)
    probs = np.array([weights[n] for n in names], dtype=float)
    probs /= probs.sum()
    return names[rng.choice(len(names), p=probs)]


def _par_sampler(rng: np.random.Generator, config: str):
    """Per-stage parallelism sampler matching the tuning state."""
    cores_hint = 16
    if config == "tuned":
        return lambda: cores_hint
    if config == "partial":
        return lambda: int(rng.integers(3, cores_hint + 1))
    return lambda: 1


def _build_branch(rng: np.random.Generator, domain: str, prefix: str, par):
    """One source→maps subgraph in the given domain (no trailing stages)."""
    params = _DOMAIN_PARAMS[domain]
    n_ops = int(rng.integers(params["ops"][0], params["ops"][1] + 1))
    catalog = FileCatalog(
        name=f"fleet_{prefix}_{domain}" if prefix else f"fleet_{domain}",
        num_files=int(rng.integers(16, 256)),
        records_per_file=float(rng.integers(200, 2000)),
        bytes_per_record=params["record_bytes"] * float(rng.lognormal(0, 0.3)),
        seed=int(rng.integers(0, 2**31)),
    )
    src_name = f"{prefix}_src" if prefix else "src"
    ds = from_tfrecords(catalog, parallelism=par(), name=src_name,
                        read_cpu_seconds_per_record=1e-5)
    for i in range(n_ops):
        cost = params["op_cost"] * float(rng.lognormal(0, params["op_sigma"]))
        udf = UserFunction(
            f"{prefix}_op{i}" if prefix else f"op{i}",
            cost=CostModel(cpu_seconds=cost),
            size_ratio=params["size_ratio"] if i == 0 else 1.0,
        )
        map_name = f"{prefix}_map_{i}" if prefix else f"map_{i}"
        ds = ds.map(udf, parallelism=par(), name=map_name)
    return ds


def _finish_job(ds, config: str, batch: int, name: str):
    """Common trailing stages: shuffle, batch, (prefetch), repeat."""
    ds = ds.shuffle(256, cpu_seconds_per_element=2e-6, name="shuffle")
    ds = ds.batch(batch, name="batch")
    if config != "naive":
        ds = ds.prefetch(8, name="prefetch")
    ds = ds.repeat(None, name="repeat")
    return ds.build(name, validate=False)


def _build_job_pipeline(rng: np.random.Generator, domain: str, config: str):
    """A random small pipeline in the given domain and tuning state."""
    par = _par_sampler(rng, config)
    if domain == "multimodal":
        # Vision frames zipped in lockstep with their text captions —
        # the heavy decode branch throttles the merge, the caption
        # branch idles (the fleet's canonical thin-branch-margin case).
        merged = zip_datasets(
            [
                _build_branch(rng, "vision", "img", par),
                _build_branch(rng, "nlp", "txt", par),
            ],
            name="zip_modalities",
        )
        return _finish_job(merged, config, batch=64,
                           name=f"fleet_{domain}_{config}")
    if domain == "rl_replay":
        # Fresh environment rollouts mixed with cheap replay-buffer
        # reads at a sampled replay ratio.
        fresh_weight = float(rng.uniform(0.3, 0.7))
        merged = interleave_datasets(
            [
                _build_branch(rng, "rl", "fresh", par),
                _build_branch(rng, "rl", "replay", par),
            ],
            weights=[fresh_weight, 1.0 - fresh_weight],
            name="replay_mix",
        )
        return _finish_job(merged, config, batch=8,
                           name=f"fleet_{domain}_{config}")
    params = _DOMAIN_PARAMS[domain]
    ds = _build_branch(rng, domain, "", par)
    return _finish_job(ds, config, batch=params["batch"],
                       name=f"fleet_{domain}_{config}")


@dataclass(frozen=True)
class FleetPipeline:
    """One named fleet job ready for the batch optimization service.

    ``spec`` (a full :class:`~repro.core.spec.OptimizeSpec`) and the
    loose ``granularity``/``backend`` knobs are per-job overrides picked
    up by :class:`repro.service.BatchOptimizer` (``None`` = inherit the
    service defaults; the loose knobs are folded into the effective
    spec on top of ``spec``).
    """

    name: str
    pipeline: object            # repro.graph.datasets.Pipeline
    machine: Machine
    domain: str
    config: str                 # tuned / partial / naive
    granularity: int | None = None
    backend: str | None = None
    spec: OptimizeSpec | None = None


def generate_pipeline_fleet(
    num_jobs: int = 20,
    distinct: int = 6,
    seed: int = 0,
    cores: int = 16,
    config: FleetConfig | None = None,
) -> List[FleetPipeline]:
    """Generate ``num_jobs`` named jobs stamped from ``distinct`` templates.

    Unlike :func:`generate_fleet` (which *measures* jobs analytically),
    this returns the pipelines themselves, bound to hosts, so they can be
    driven through the trace→analyze→optimize loop by
    :class:`repro.service.BatchOptimizer`. Production fleets contain many
    structurally identical jobs (the same training program launched over
    and over), so jobs cycle through a small pool of templates — that
    redundancy is exactly what the service's signature-keyed cache
    exploits.
    """
    if num_jobs < 1:
        raise ValueError(f"num_jobs must be >= 1, got {num_jobs}")
    if not 1 <= distinct <= num_jobs:
        raise ValueError(
            f"distinct must be in [1, num_jobs], got {distinct}"
        )
    config = config or FleetConfig()
    rng = np.random.default_rng(seed)
    templates = []
    for _ in range(distinct):
        domain = _choice(rng, config.domain_weights)
        tuning = _choice(rng, config.config_weights)
        disk = _DISK_FACTORIES[rng.integers(len(_DISK_FACTORIES))]()
        machine = Machine(
            name="fleet_host",
            cores=cores,
            core_speed=float(rng.uniform(0.6, 1.2)),
            memory_bytes=64e9,
            disk=disk,
            iterator_overhead=float(rng.uniform(15e-6, 40e-6)),
            tracer_overhead=0.0,
        )
        pipeline = _build_job_pipeline(rng, domain, tuning)
        templates.append((domain, tuning, machine, pipeline))
    jobs: List[FleetPipeline] = []
    for i in range(num_jobs):
        domain, tuning, machine, pipeline = templates[i % distinct]
        granularity = config.domain_granularity.get(
            domain, config.trace_granularity
        )
        spec = config.optimize_spec
        if spec is not None:
            spec = spec.with_overrides(granularity=granularity,
                                       backend=config.trace_backend)
        jobs.append(
            FleetPipeline(
                name=f"job{i:03d}_{domain}_{tuning}",
                pipeline=pipeline,
                machine=machine,
                domain=domain,
                config=tuning,
                granularity=granularity,
                backend=config.trace_backend,
                spec=spec,
            )
        )
    return jobs


def generate_fleet(config: FleetConfig | None = None) -> List[JobSample]:
    """Generate the synthetic job population and measure every job."""
    config = config or FleetConfig()
    rng = np.random.default_rng(config.seed)
    jobs: List[JobSample] = []
    for _ in range(config.num_jobs):
        domain = _choice(rng, config.domain_weights)
        tuning = _choice(rng, config.config_weights)
        cores = int(rng.choice(_CORE_CHOICES))
        disk = _DISK_FACTORIES[rng.integers(len(_DISK_FACTORIES))]()
        machine = Machine(
            name="fleet_host",
            cores=cores,
            core_speed=float(rng.uniform(0.6, 1.2)),
            memory_bytes=64e9,
            disk=disk,
            iterator_overhead=float(rng.uniform(15e-6, 40e-6)),
            tracer_overhead=0.0,
        )
        pipeline = _build_job_pipeline(rng, domain, tuning)
        jobs.append(_measure_job(rng, pipeline, machine, domain, tuning, config))
    return jobs


def _measure_job(
    rng: np.random.Generator,
    pipeline,
    machine: Machine,
    domain: str,
    tuning: str,
    config: FleetConfig,
) -> JobSample:
    """Run the §3 measurement for one job via the analytic model."""
    prediction = predict_throughput(pipeline, machine, cached=False)
    pipeline_rate = prediction.throughput

    # Accelerator speed relative to a *tuned* pipeline on this host: the
    # model's demand is independent of how well the input side happens to
    # be configured.
    cpu_cap = prediction.cpu_cap
    reference = cpu_cap if math.isfinite(cpu_cap) else pipeline_rate
    speed = math.exp(
        rng.uniform(math.log(config.accel_speed_low),
                    math.log(config.accel_speed_high))
    )
    model_rate = max(reference / speed, 1e-3)

    achieved = min(pipeline_rate, model_rate)
    if pipeline_rate >= model_rate:
        next_latency = READY_LATENCY_SECONDS
    else:
        next_latency = (
            READY_LATENCY_SECONDS + 1.0 / pipeline_rate - 1.0 / model_rate
        )

    # Background host activity (model infeed, checkpointing, logging):
    # keeps even a fully stalled job's host from reading exactly zero.
    background_cpu = float(rng.uniform(0.02, 0.08))
    background_membw = float(rng.uniform(0.05, 0.16))
    cpu_util = min(
        1.0,
        background_cpu
        + achieved * prediction.cpu_demand_per_element / machine.cores,
    )
    bytes_per_root = _bytes_per_root(pipeline)
    membw_util = min(
        1.0,
        background_membw
        + achieved * bytes_per_root * MEMORY_COPY_FACTOR / MEMORY_BANDWIDTH_BYTES,
    )
    return JobSample(
        domain=domain,
        config=tuning,
        next_latency=next_latency,
        cpu_utilization=cpu_util,
        membw_utilization=membw_util,
        pipeline_rate=pipeline_rate,
        model_rate=model_rate,
        cores=machine.cores,
    )


def _bytes_per_root(pipeline) -> float:
    """Bytes materialized across stage boundaries per root element."""
    specs = infer_signatures(pipeline)
    ratios = pipeline.visit_ratios()
    total = 0.0
    for node in pipeline.topological_order():
        v = ratios[node.name]
        if math.isfinite(v):
            total += v * specs[node.name].avg_bytes
    return total
