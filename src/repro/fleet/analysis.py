"""Fleet measurement code: the Figure 3 CDF and Figure 4 breakdown.

The paper's headline fleet numbers:

* 92% of jobs exceed 50 µs mean ``Next`` latency, 62% exceed 1 ms,
  16% exceed 100 ms (Fig. 3);
* jobs above 100 ms average ~11% CPU and ~18% memory-bandwidth
  utilization — host hardware is rarely saturated (Fig. 4, Obs. 2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.generator import JobSample

#: Figure 3's thresholds (seconds).
LATENCY_THRESHOLDS = (50e-6, 1e-3, 100e-3)


@dataclass(frozen=True)
class UtilizationBand:
    """Mean utilizations for one latency band of jobs."""

    label: str
    jobs: int
    mean_cpu: float
    mean_membw: float


@dataclass(frozen=True)
class FleetSummary:
    """All fleet statistics the paper reports."""

    num_jobs: int
    frac_over_50us: float
    frac_over_1ms: float
    frac_over_100ms: float
    bands: Tuple[UtilizationBand, ...]
    frac_input_bound: float

    def band(self, label: str) -> UtilizationBand:
        """Look up a band by label."""
        for b in self.bands:
            if b.label == label:
                return b
        raise KeyError(f"no band {label!r}")


def latency_fractions(
    jobs: Sequence[JobSample],
    thresholds: Sequence[float] = LATENCY_THRESHOLDS,
) -> List[float]:
    """Fraction of jobs at or above each latency threshold.

    The comparison is inclusive (``>=``) so that a job sitting exactly on
    a threshold belongs to the same side as :func:`summarize`'s
    ``low <= x < high`` utilization bands — a job at exactly 100 ms is in
    the ``>100ms`` band *and* counted by ``frac_over_100ms``.
    """
    if not jobs:
        raise ValueError("no jobs to analyze")
    latencies = np.array([j.next_latency for j in jobs])
    return [float(np.mean(latencies >= t)) for t in thresholds]


def latency_cdf(
    jobs: Sequence[JobSample], points: int = 50
) -> List[Tuple[float, float]]:
    """(latency, fraction of jobs below) pairs — Figure 3's curve."""
    latencies = np.sort([j.next_latency for j in jobs])
    qs = np.linspace(0.0, 1.0, points)
    return [(float(np.quantile(latencies, q)), float(q)) for q in qs]


def summarize(jobs: Sequence[JobSample]) -> FleetSummary:
    """Compute every fleet statistic the paper reports."""
    over_50us, over_1ms, over_100ms = latency_fractions(jobs)
    bands = []
    for label, low, high in (
        ("<50us", 0.0, 50e-6),
        ("50us-100ms", 50e-6, 100e-3),
        (">100ms", 100e-3, float("inf")),
    ):
        members = [j for j in jobs if low <= j.next_latency < high]
        if members:
            bands.append(
                UtilizationBand(
                    label=label,
                    jobs=len(members),
                    mean_cpu=float(np.mean([j.cpu_utilization for j in members])),
                    mean_membw=float(
                        np.mean([j.membw_utilization for j in members])
                    ),
                )
            )
        else:
            bands.append(UtilizationBand(label, 0, 0.0, 0.0))
    return FleetSummary(
        num_jobs=len(jobs),
        frac_over_50us=over_50us,
        frac_over_1ms=over_1ms,
        frac_over_100ms=over_100ms,
        bands=tuple(bands),
        frac_input_bound=float(np.mean([j.input_bound for j in jobs])),
    )


# ----------------------------------------------------------------------
# Fleet *optimization* aggregates (consumed by repro.service's report).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpeedupStats:
    """Distribution summary of per-job optimization speedups."""

    count: int
    geomean: float
    minimum: float
    median: float
    maximum: float


def speedup_distribution(speedups: Iterable[float]) -> SpeedupStats:
    """Summarize per-job speedups (non-finite entries are dropped)."""
    values = np.array([s for s in speedups if np.isfinite(s)], dtype=float)
    if values.size == 0:
        return SpeedupStats(0, float("nan"), float("nan"),
                            float("nan"), float("nan"))
    return SpeedupStats(
        count=int(values.size),
        geomean=float(np.exp(np.mean(np.log(np.maximum(values, 1e-12))))),
        minimum=float(values.min()),
        median=float(np.median(values)),
        maximum=float(values.max()),
    )


def bottleneck_histogram(bottlenecks: Iterable[str]) -> Dict[str, int]:
    """Count how often each bottleneck label binds across a fleet,
    most-common first — the batch service's Figure-4-style breakdown of
    *why* jobs were slow."""
    counts = Counter(bottlenecks)
    return dict(counts.most_common())


def merged_cache_counts(
    job_outcomes: Iterable[Tuple[str, bool]],
) -> Tuple[int, int]:
    """``(cache_hits, cache_misses)`` for a merged view of many runs.

    ``job_outcomes`` is ``(cache_key, was_hit)`` per job, in any order.
    Each distinct key counts as at most **one** miss fleet-wide: when the
    same key was computed independently in two shards (or two service
    processes), the duplicate computations are surplus — under one
    global cache they would have been hits — so the merged hit-rate
    arithmetic reports exactly one distinct optimization per key.
    This is the single place that arithmetic lives;
    :meth:`repro.service.FleetOptimizationReport.merge` delegates here.
    """
    seen_missed: set = set()
    hits = misses = 0
    for key, was_hit in job_outcomes:
        if was_hit or key in seen_missed:
            hits += 1
        else:
            seen_missed.add(key)
            misses += 1
    return hits, misses


def merge_degraded_sections(
    sections: Iterable[Optional[dict]],
) -> Optional[dict]:
    """Combine per-report ``degraded`` sections into one.

    A ``degraded`` section records shard-fabric faults survived while
    producing a report: ``failed_shards`` (one record per failed
    dispatch: host, error kind/text, the jobs it held), ``rehomed_jobs``
    (job name → where it moved and how many re-dispatch attempts it
    took), and ``redispatch_rounds``. Merging concatenates the failure
    records, unions the re-homed jobs (later sections win on a name
    collision — they describe the later dispatch), and sums the rounds.
    All-``None`` inputs merge to ``None``: a fully healthy fleet's
    report carries no degraded section at all, byte-identically to a
    report produced before the fault-tolerance layer existed.
    This is the single place that arithmetic lives;
    :meth:`repro.service.FleetOptimizationReport.merge` delegates here.
    """
    present = [s for s in sections if s]
    if not present:
        return None
    merged: dict = {"failed_shards": [], "rehomed_jobs": {},
                    "redispatch_rounds": 0}
    for section in present:
        merged["failed_shards"].extend(section.get("failed_shards", ()))
        merged["rehomed_jobs"].update(section.get("rehomed_jobs", {}))
        merged["redispatch_rounds"] += section.get("redispatch_rounds", 0)
    return merged
