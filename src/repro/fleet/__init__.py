"""Fleet analysis (§3): are input bottlenecks common, and why?

The paper measures two million production jobs; we generate a synthetic
job population (random pipelines, configurations, hosts, and
accelerators) and push every job through the same analytic operational
model the rest of the library uses, then run the paper's measurement
code: the ``Next``-latency CDF (Figure 3) and the CPU/memory-bandwidth
utilization breakdown (Figure 4).
"""

from repro.fleet.analysis import FleetSummary, latency_fractions, summarize
from repro.fleet.generator import FleetConfig, JobSample, generate_fleet

__all__ = [
    "FleetConfig",
    "FleetSummary",
    "JobSample",
    "generate_fleet",
    "latency_fractions",
    "summarize",
]
