"""Fleet analysis (§3): are input bottlenecks common, and why?

The paper measures two million production jobs; we generate a synthetic
job population (random pipelines, configurations, hosts, and
accelerators) and push every job through the same analytic operational
model the rest of the library uses, then run the paper's measurement
code: the ``Next``-latency CDF (Figure 3) and the CPU/memory-bandwidth
utilization breakdown (Figure 4).
"""

from repro.fleet.analysis import (
    FleetSummary,
    SpeedupStats,
    bottleneck_histogram,
    latency_fractions,
    speedup_distribution,
    summarize,
)
from repro.fleet.generator import (
    FleetConfig,
    FleetPipeline,
    JobSample,
    generate_fleet,
    generate_pipeline_fleet,
)

__all__ = [
    "FleetConfig",
    "FleetPipeline",
    "FleetSummary",
    "JobSample",
    "SpeedupStats",
    "bottleneck_histogram",
    "generate_fleet",
    "generate_pipeline_fleet",
    "latency_fractions",
    "speedup_distribution",
    "summarize",
]
