"""repro — a reproduction of Plumber (MLSys 2022).

Plumber traces ML input pipelines, models each operator with
resource-accounted rates, and rewrites the pipeline (parallelism,
prefetching, caching) via a linear program over host resources.

Public API quick tour
---------------------
* :mod:`repro.graph` — build a declarative pipeline (``from_tfrecords``,
  ``.map``, ``.batch`` ...).
* :mod:`repro.host` — machine presets (Setups A/B/C) and storage specs.
* :mod:`repro.runtime` — simulated executor (``run_pipeline``).
* :mod:`repro.core` — Plumber itself (``Plumber``, ``optimize_pipeline``).
* :mod:`repro.baselines` — AUTOTUNE / HEURISTIC / naive / random tuners.
* :mod:`repro.workloads` — the five MLPerf pipelines from the paper.
* :mod:`repro.fleet` — the §3 fleet analysis.
* :mod:`repro.service` — fleet-scale batch optimization
  (``BatchOptimizer`` with a signature-keyed result cache).
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
