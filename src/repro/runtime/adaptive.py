"""Adaptive trace backend: analytic first, simulate when in doubt.

The analytic backend is 20–1600x cheaper per trace than the simulator
and has bottleneck parity with it on the seed workloads — but parity is
a *statistical* property, and the cases where the closed-form model can
mislead the optimizer are structurally identifiable: when two capacity
constraints are nearly tied, a small modelling error flips which one
binds, and the LP downstream allocates cores to the wrong node.

The ``"adaptive"`` backend turns that observation into a policy:

1. compute the closed-form equilibrium diagnostics (O(nodes), no
   events) and the analytic trace;
2. if the analytic picture is *decisive* — the binding cap clears the
   runner-up by at least ``margin`` and the trace is healthy — keep the
   analytic trace;
3. otherwise fall back to the discrete-event simulator, and record
   whether the two backends actually disagreed on the bottleneck (via
   the same build-model→LP attribution the optimizer uses).

Every emitted :class:`~repro.core.trace.PipelineTrace` records which
backend produced it (``"adaptive[analytic]"`` / ``"adaptive[simulate]"``)
so downstream consumers — and the service's spec-keyed result cache —
never confuse the two acquisition paths. Decisions are kept in a
bounded per-instance log for fleet-level reporting.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.trace import PipelineTrace

from repro.graph.datasets import Pipeline
from repro.host.machine import Machine
from repro.obs import global_registry
from repro.runtime.analytic import analytic_trace_with_diagnostics
from repro.runtime.executor import RunConfig, run_pipeline

#: most recent decisions kept per backend instance
_DECISION_LOG_LIMIT = 512


@dataclass(frozen=True)
class AdaptiveDecision:
    """One adaptive-backend routing decision, for observability."""

    pipeline: str                #: pipeline name
    chosen: str                  #: "analytic" or "simulate"
    #: "confident" / "low-confidence" / "thin-branch-margin" / "degenerate"
    reason: str
    margin: float                #: equilibrium margin (runner-up headroom)
    binding: str                 #: analytic binding-cap label
    #: did analytic and simulated traces agree on the bottleneck?
    #: True/False when the fallback ran and the LP attribution worked
    #: on both traces; None when analytic was accepted (nothing to
    #: compare) or attribution failed.
    agreed: Optional[bool] = None


class AdaptiveBackend:
    """Analytic fast path with a simulation fallback policy.

    Parameters
    ----------
    margin:
        Minimum relative headroom between the analytic equilibrium's
        binding cap and its runner-up for the analytic trace to be
        trusted. ``0.1`` means the second constraint must be at least
        10% looser than the binding one; below that the two are "nearly
        tied" and the simulator arbitrates.
    """

    name = "adaptive"

    def __init__(self, margin: float = 0.1) -> None:
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self.margin = margin
        self.decisions: List[AdaptiveDecision] = []

    # ------------------------------------------------------------------
    def trace(
        self, pipeline: Pipeline, machine: Machine, config: RunConfig
    ) -> "PipelineTrace":
        # Imported lazily: backends.py imports this module at load time.
        from repro.runtime.backends import record_trace_wallclock

        start = time.monotonic()
        try:
            return self._trace(pipeline, machine, config)
        finally:
            record_trace_wallclock(self.name, time.monotonic() - start)

    def _trace(
        self, pipeline: Pipeline, machine: Machine, config: RunConfig
    ) -> "PipelineTrace":
        ana, diag = analytic_trace_with_diagnostics(pipeline, machine, config)
        healthy = (
            math.isfinite(ana.root_throughput) and ana.root_throughput > 0
        )
        # Two ways the closed-form picture can be on a knife edge: the
        # global binding cap barely clears the runner-up, or — in a
        # multi-source graph — two branches of a merge deliver at nearly
        # the same rate, so which branch throttles the merge is within
        # modelling error. Either way the simulator arbitrates.
        thin_branch = diag.min_branch_margin < self.margin
        if healthy and diag.margin >= self.margin and not thin_branch:
            ana.backend = "adaptive[analytic]"
            self._record(AdaptiveDecision(
                pipeline=pipeline.name, chosen="analytic",
                reason="confident", margin=diag.margin,
                binding=diag.binding,
            ))
            return ana

        # Ambiguous or degenerate analytic picture: simulate, and audit
        # whether the fallback actually changed the bottleneck story.
        from repro.core.trace import PipelineTrace

        if not healthy:
            reason = "degenerate"
        elif diag.margin < self.margin:
            reason = "low-confidence"
        else:
            reason = "thin-branch-margin"
        sim = PipelineTrace.from_run(run_pipeline(pipeline, machine, config))
        sim.backend = "adaptive[simulate]"
        self._record(AdaptiveDecision(
            pipeline=pipeline.name, chosen="simulate",
            reason=reason,
            margin=diag.margin, binding=diag.binding,
            agreed=self._bottlenecks_agree(ana, sim),
        ))
        return sim

    # ------------------------------------------------------------------
    @staticmethod
    def _bottlenecks_agree(ana: "PipelineTrace",
                           sim: "PipelineTrace") -> Optional[bool]:
        """LP bottleneck attribution on both traces (None on failure).

        This is exactly the optimizer's view: if the LP blames the same
        constraint under either trace, the analytic fast path would have
        driven the same decisions and the fallback bought fidelity, not
        a different answer.
        """
        # Imported lazily: repro.core.rates transitively imports this
        # package during initialization.
        from repro.core.lp import LPError, solve_allocation
        from repro.core.rates import build_model

        try:
            lp_ana = solve_allocation(build_model(ana))
            lp_sim = solve_allocation(build_model(sim))
        except (LPError, ValueError, KeyError):
            return None
        return lp_ana.bottleneck == lp_sim.bottleneck

    def _record(self, decision: AdaptiveDecision) -> None:
        self.decisions.append(decision)
        if len(self.decisions) > _DECISION_LOG_LIMIT:
            del self.decisions[:-_DECISION_LOG_LIMIT]
        global_registry().counter(
            "repro_adaptive_decisions_total",
            "Adaptive backend routing decisions, by chosen path and reason",
        ).labels(chosen=decision.chosen, reason=decision.reason).inc()

    def clear_decisions(self) -> None:
        """Drop the recorded decision log (e.g. between fleet runs)."""
        self.decisions.clear()
