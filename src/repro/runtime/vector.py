"""The vectorized simulation engine (``RunConfig.engine="vectorized"``).

The reference engine (:mod:`repro.runtime.engine` +
:mod:`repro.runtime.iterators`) drives Python *generators* that yield
frozen request objects (``Timeout``/``Compute``/``Read``/``Put``/``Get``)
through a dispatch layer. Profiling a cache-heavy trace shows ~80% of
wallclock goes to that machinery — ``gen.send`` frame switches, one
frozen-dataclass allocation per request, ``_dispatch`` lookups, and the
``schedule()`` indirection on every zero-delay wake — not to the event
loop or the resource models themselves.

This module removes all of it while leaving the *simulated universe*
bit-for-bit unchanged:

* **Compiled workers** — every generator in
  :mod:`repro.runtime.iterators` is transcribed into a state-machine
  object whose continuations are bound once at construction. Each
  continuation performs the *same float operations in the same order*
  and makes the *same* queue/core/disk/clock calls as its generator
  counterpart, so the event sequence — and therefore every counter,
  timestamp, and emitted trace byte — is identical by construction. No
  request objects and no generator frames are allocated, ever; items
  travel as plain ``(count, nbytes)`` tuples instead of frozen
  dataclasses, and the per-node counter updates are the
  :class:`~repro.runtime.stats.NodeStats` method bodies inlined
  verbatim.
* **Direct ready-deque wakes** — :class:`TurboQueue` and
  :class:`TurboCores` append ``(resume, value)`` entries straight onto
  the engine's same-timestamp FIFO instead of going through
  ``schedule(0.0, ...)``. ``schedule(0.0, cb, v)`` *is*
  ``ready.append((cb, v))``, so ordering is untouched. Adjacent wake
  pairs that the protocol always emits back-to-back (a queue handoff
  waking both the getter and the putter) are *fused* into one
  four-field entry, halving deque traffic for handoffs. Timed waits
  push onto the heap with the exact expression ``schedule`` uses,
  minus the call.
* **Cohort draining** — :class:`VectorSimulation.run` drains an entire
  same-timestamp resume cohort in one inner loop with *no per-event
  heap probe*: every timed push site proves its entry lands strictly
  in the future (raising :class:`EngineFallback` otherwise), so
  nothing on the heap can become due mid-cohort and the due-check is
  needed only once per cohort, not once per event.
* **Closed-form serve-phase deltas** — a steady-state cache replays an
  identical chunk pattern, so :class:`_CacheTask` computes each serve
  chunk's overhead/service/CPU-counter deltas once per run of
  equal-sized chunks and replays them from cached floats; products of
  identical floats are identical, so fast-forwarding through the
  pattern is exact.

The equivalence contract is enforced, not assumed: the golden-trace
corpus (``tests/golden/`` + ``tests/test_engine_golden.py``) and the
hypothesis property suite assert the two engines serialize
byte-identical :class:`~repro.core.trace.PipelineTrace` artifacts on
every run. Engine-internal telemetry (``events_processed``,
``peak_ready_depth``) is explicitly *not* part of the contract.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    FilterNode,
    InterleaveDatasetsNode,
    InterleaveSourceNode,
    MapNode,
    PrefetchNode,
    RepeatNode,
    ShuffleNode,
    TakeNode,
    ZipNode,
)
from repro.runtime.engine import (
    EOS,
    CoreScheduler,
    SimQueue,
    Simulation,
    SimulationError,
)
from repro.runtime.iterators import (
    READ_BLOCK_BYTES,
    ExecContext,
    FileCursor,
    StageState,
)
from repro.runtime.stats import NodeStats

_push = heapq.heappush


class EngineFallback(Exception):
    """Raised when the vectorized engine detects a degenerate float regime.

    Every timed delay in the engine is strictly positive, so ``now +
    delay > now`` — unless the delay is smaller than one ulp of the
    clock (e.g. a ``1e-18`` second timer at ``t=100``). The reference
    engine would run such an entry *mid-cohort* (it lands due at the
    current instant), which is the one interleaving the vectorized
    cohort drain does not reproduce. Rather than pay a per-event heap
    probe to cover a case that cannot occur for any physical workload,
    the push sites detect it and raise; :func:`~repro.runtime.executor.
    run_pipeline` catches the exception, discards the partial run, and
    reruns the pipeline on the reference engine — so emitted traces are
    byte-identical to the reference engine in *every* regime.
    """


class _MultiArg:
    """Cold-path adapter: a zero-delay callback with >1 scheduled args.

    Vectorized ready entries are ``(callback, value)`` pairs (every wake
    in the engine protocol carries at most one value), so the rare
    multi-arg ``schedule(0.0, cb, a, b)`` call is wrapped to fit.
    """

    __slots__ = ("cb", "args")

    def __init__(self, cb, args):
        self.cb = cb
        self.args = args

    def __call__(self, value=None):
        self.cb(*self.args)


class VectorSimulation(Simulation):
    """Event loop with batched same-timestamp cohort draining.

    Event *ordering* is identical to :meth:`Simulation.run`: timed
    entries due at the current instant run before ready entries (they
    were necessarily scheduled earlier), and the ready FIFO preserves
    insertion order. The inner drain runs a whole same-timestamp
    cohort *without* probing the heap between callbacks. That is exact
    because a heap entry can only become due mid-cohort if a push
    collapsed onto the current instant (``now + delay == now`` with
    ``delay > 0``) — the due-drain runs before each cohort, and every
    other push is strictly future. All timed push sites guard against
    exactly that collapse and raise :class:`EngineFallback`, which
    :func:`~repro.runtime.executor.run_pipeline` converts into a clean
    rerun on the reference engine. Ready depth is sampled once per
    cohort (telemetry only; the golden harness excludes
    engine-internal telemetry from equivalence, and
    ``events_processed`` is likewise a cohort-sampled approximation).

    The clock is mirrored into a local: callbacks cannot move ``now``
    (only the loop's own timed-entry pop does), so ``self.now`` is
    written exactly when the clock advances and read never.

    Ready entries are ``(callback, value)`` pairs — one positional
    value per wake, matching the resume protocol — so dispatch is a
    plain call instead of an argument-tuple unpack. Fused adjacent
    wake pairs travel as ``(cb1, v1, cb2, v2)`` and are discriminated
    by length; running both halves consecutively matches reference
    FIFO order because the pair was appended with nothing between its
    halves, and anything the first callback appends lands *after* the
    pair. ``schedule`` is overridden to normalize zero-delay entries
    into the pair shape.
    """

    def schedule(self, delay: float, callback, *args) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if delay == 0.0:
            n = len(args)
            if n == 1:
                self._ready.append((callback, args[0]))
            elif n == 0:
                self._ready.append((callback, None))
            else:
                self._ready.append((_MultiArg(callback, args), None))
            return
        t = self.now + delay
        if t <= self.now:
            raise EngineFallback
        self._seq += 1
        _push(self._heap, (t, self._seq, callback, args))

    def run(self, until: float) -> float:
        heap = self._heap
        ready = self._ready
        pop = heapq.heappop
        popleft = ready.popleft
        events = 0
        peak_ready = self.peak_ready_depth
        now = self.now
        try:
            while True:
                if ready:
                    depth = len(ready)
                    if depth > peak_ready:
                        peak_ready = depth
                    # Telemetry only: cohorts are counted by their depth
                    # at entry (a lower-bound sample — same-instant
                    # chains appended mid-drain are not re-counted).
                    events += depth
                    # The drain is unconditional: no timed entry can
                    # become due while the clock is parked (every push
                    # site raises EngineFallback if its strictly
                    # positive delay would vanish into the current
                    # instant), so the reference engine's after-each-
                    # callback heap probe is provably a no-op here —
                    # the heap is consulted only once per clock
                    # advance, not once per event.
                    # Entries are (cb, value) wakes or (cb1, v1, cb2,
                    # v2) fused pairs — two wakes appended back-to-back
                    # with nothing between them, dispatched in order.
                    while ready:
                        e = popleft()
                        if len(e) == 2:
                            e[0](e[1])
                        else:
                            e[0](e[1])
                            e[2](e[3])
                if not heap:
                    break
                time = heap[0][0]
                if time > until:
                    self.now = until
                    return until
                now = time
                self.now = time
                # Run every timed entry due at the new instant before
                # the ready cohort they wake — the reference ordering.
                # Later heap entries can share this timestamp (pushed
                # from earlier instants), so this is a loop.
                while heap and heap[0][0] <= now:
                    _t, _s, cb, args = pop(heap)
                    events += 1
                    cb(*args)
            return now
        finally:
            self.events_processed += events
            self.peak_ready_depth = peak_ready


class TurboQueue(SimQueue):
    """A :class:`SimQueue` whose zero-delay wakes skip ``schedule()``.

    ``_put``/``_get`` are verbatim transcriptions of the parent methods
    with ``sim.schedule(0.0, cb, *args)`` replaced by the equivalent
    ``sim._ready.append((cb, value))`` — the exact rewrite ``schedule``
    itself performs for zero delays — and the ``_track`` occupancy
    update inlined. Callers pass the continuation callable to wake
    (rather than a process whose ``.resume`` is read per wake), and
    handoff wake pairs are appended fused. Counters, occupancy
    tracking, and blocking semantics stay float-op-for-float-op
    identical.
    """

    #: ``_n`` mirrors ``len(self.items)`` (only ``_put``/``_get`` mutate
    #: the deque) so the hot paths read one slot instead of calling len.
    __slots__ = ("_n",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._n = 0

    def _put(self, resume, item) -> None:
        if self.closed:
            raise SimulationError(f"put on closed queue {self.name!r}")
        sim = self.sim
        now = sim.now
        n = self._n
        last = self._occ_last_t
        if now != last:
            self._occ_integral += n * (now - last)
            self._occ_last_t = now
        self.total_puts += 1
        getters = self._getters
        if getters:
            sim._ready.append((getters.popleft(), item, resume, None))
        else:
            if n < self.capacity:
                self.items.append(item)
                n += 1
                self._n = n
                if n > self.peak_occupancy:
                    self.peak_occupancy = n
                sim._ready.append((resume, None))
            else:
                self._putters.append((resume, item))

    def _get(self, resume) -> None:
        sim = self.sim
        now = sim.now
        items = self.items
        last = self._occ_last_t
        if now != last:
            self._occ_integral += self._n * (now - last)
            self._occ_last_t = now
        self.total_gets += 1
        if items:
            item = items.popleft()
            putters = self._putters
            if putters:
                putter, pending = putters.popleft()
                items.append(pending)
                sim._ready.append((putter, None, resume, item))
            else:
                self._n -= 1
                sim._ready.append((resume, item))
        elif self._putters:
            # capacity reached with direct handoff pending
            putter, pending = self._putters.popleft()
            sim._ready.append((putter, None, resume, pending))
        elif self.closed:
            sim._ready.append((resume, EOS))
        else:
            self._getters.append(resume)

    def close(self) -> None:
        # Parent close() expects parked *processes* (it reads
        # ``.resume`` at wake time); this queue parks the continuation
        # callables themselves, so the wakes are re-issued in the same
        # order with the parked callable directly. schedule(0.0, ...)
        # is a ready append, so ordering matches the parent verbatim.
        if self.closed:
            return
        self.closed = True
        ready = self.sim._ready
        getters = self._getters
        while getters:
            ready.append((getters.popleft(), EOS))
        putters = self._putters
        while putters:
            putter, _pending = putters.popleft()
            ready.append((putter, EOS))


class TurboCores(CoreScheduler):
    """A :class:`CoreScheduler` whose completion wakes skip ``schedule()``.

    Timed service completions still go through the heap (they must) via
    the inlined push ``schedule`` would perform; only the zero-delay
    grant/finish resumes take the direct append. The busy-integral
    update is the parent ``_track`` body inlined.
    """

    __slots__ = ("_k_finish",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._k_finish = self._finish

    def submit(self, resume, seconds: float, width: float) -> None:
        if width > self.capacity:
            width = self.capacity
        if seconds < 0:
            raise SimulationError(f"negative compute time {seconds}")
        if seconds == 0:
            self.sim._ready.append((resume, None))
            return
        if self.free >= width and not self._waiting:
            # _start inlined (the no-contention fast path)
            sim = self.sim
            now = sim.now
            last = self._busy_last_t
            if now != last:
                self._busy_integral += (self.capacity - self.free) * (now - last)
                self._busy_last_t = now
            self.free -= width
            t = now + seconds * self.penalty
            if t <= now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self._k_finish, (resume, width)))
        else:
            self._waiting.append((resume, seconds, width))

    def _start(self, resume, seconds: float, width: float) -> None:
        sim = self.sim
        now = sim.now
        last = self._busy_last_t
        if now != last:
            self._busy_integral += (self.capacity - self.free) * (now - last)
            self._busy_last_t = now
        self.free -= width
        t = now + seconds * self.penalty
        if t <= now:
            raise EngineFallback
        sim._seq += 1
        _push(sim._heap, (t, sim._seq, self._k_finish, (resume, width)))

    def _finish(self, resume, width: float) -> None:
        sim = self.sim
        now = sim.now
        last = self._busy_last_t
        if now != last:
            self._busy_integral += (self.capacity - self.free) * (now - last)
            self._busy_last_t = now
        self.free += width
        sim._ready.append((resume, None))
        waiting = self._waiting
        while waiting and self.free >= waiting[0][2]:
            waiting_resume, seconds, w = waiting.popleft()
            self._start(waiting_resume, seconds, w)


# ----------------------------------------------------------------------
# Compiled worker tasks. Each class transcribes one generator from
# repro.runtime.iterators; the float operations and resource calls are
# kept in the generator's exact order so the event stream is identical.
# Queues and cores receive the continuation *callable* to wake —
# ``q._put(self.k_after_put, item)`` — so no ``.resume`` attribute is
# read per wake. Only the disk (shared with the reference engine) still
# wakes through ``task.resume``, so the ``resume`` slot is kept and set
# before every disk call.
# Continuations are bound once in __init__ (``k_*`` slots) so parking a
# task is an attribute copy, not a bound-method allocation; items are
# ``(count, nbytes)`` tuples; NodeStats updates are the method bodies
# from repro.runtime.stats inlined unchanged.
# ----------------------------------------------------------------------
class _SourceTask:
    """Compiled :func:`~repro.runtime.iterators.source_worker`."""

    __slots__ = (
        "resume", "sim", "stats", "state", "cursor", "granularity",
        "read_cpu", "ov", "core_speed", "penalty", "remaining",
        "per_record", "unread", "buffered", "n", "nbytes", "t_read",
        "block", "svc", "item", "out_put", "disk_submit", "cores_submit",
        "k_after_read", "k_after_overhead", "k_after_compute",
        "k_after_put",
    )

    def __init__(self, node, cursor, out_q, state, ctx, stats, granularity):
        sim = ctx.sim
        self.sim = sim
        self.stats = stats
        self.state = state
        self.cursor = cursor
        self.granularity = granularity
        self.read_cpu = node.read_cpu_seconds_per_record
        self.ov = ctx.overhead_per_element
        self.core_speed = ctx.machine.core_speed
        self.penalty = ctx.penalty
        self.out_put = out_q._put
        self.disk_submit = sim.disk.submit
        self.cores_submit = sim.cores.submit
        self.remaining = 0
        self.k_after_read = self._after_read
        self.k_after_overhead = self._after_overhead
        self.k_after_compute = self._after_compute
        self.k_after_put = self._after_put
        self.resume = self.start

    def start(self, value=None):
        self._chunk_loop()

    def _chunk_loop(self):
        while self.remaining <= 0:
            f = self.cursor.next_file()
            if f is None:
                self.state.worker_done()
                return
            st = self.stats
            size = f.size_bytes
            if st.files_seen_count < st.files_seen_cap:
                st.files_seen_sizes.append(size)
            st.files_seen_count += 1
            st.files_seen_bytes += size
            self.remaining = f.num_records
            self.per_record = f.bytes_per_record
            self.unread = size
            self.buffered = 0.0
        n = min(self.granularity, self.remaining)
        self.remaining -= n
        nbytes = n * self.per_record
        self.n = n
        self.nbytes = nbytes
        if self.buffered < nbytes and self.unread > 0:
            block = min(max(nbytes, READ_BLOCK_BYTES), self.unread)
            self.block = block
            self.t_read = self.sim.now
            self.resume = self.k_after_read
            self.disk_submit(self, block)
            return
        self._post_read()

    def _after_read(self, value=None):
        st = self.stats
        st.io_seconds += self.sim.now - self.t_read
        block = self.block
        st.bytes_read += block
        self.unread -= block
        self.buffered += block
        self._post_read()

    def _post_read(self):
        self.buffered -= self.nbytes
        o = self.ov * self.n
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_after_overhead, ()))
            return
        self._after_overhead()

    def _after_overhead(self, value=None):
        if self.read_cpu > 0:
            svc = self.read_cpu * self.n / self.core_speed
            self.svc = svc
            self.cores_submit(self.k_after_compute, svc, 1.0)
            return
        n = self.n
        self.stats.elements_consumed += n
        item = (float(n), self.nbytes)
        self.item = item
        self.out_put(self.k_after_put, item)

    def _after_compute(self, value=None):
        self.stats.cpu_core_seconds += self.svc * self.penalty
        n = self.n
        self.stats.elements_consumed += n
        item = (float(n), self.nbytes)
        self.item = item
        self.out_put(self.k_after_put, item)

    def _after_put(self, value=None):
        item = self.item
        st = self.stats
        now = self.sim.now
        st.elements_produced += item[0]
        st.bytes_produced += item[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self._chunk_loop()


class _MapTask:
    """Compiled :func:`~repro.runtime.iterators.map_worker`."""

    __slots__ = (
        "resume", "sim", "stats", "state", "in_get", "out_put",
        "cores_submit", "cpu_seconds", "width", "ratio", "fixed_out",
        "size_ratio", "ov", "core_speed", "penalty", "item", "svc",
        "out", "k_on_item", "k_after_overhead", "k_after_compute",
        "k_after_put",
    )

    def __init__(self, node, in_q, out_q, state, ctx, stats):
        sim = ctx.sim
        self.sim = sim
        self.stats = stats
        self.state = state
        self.in_get = in_q._get
        self.out_put = out_q._put
        self.cores_submit = sim.cores.submit
        udf = node.udf
        self.cpu_seconds = udf.cost.cpu_seconds
        self.width = udf.cost.internal_parallelism
        self.ratio = udf.examples_ratio
        out_b = udf.output_bytes
        self.fixed_out = float(out_b) if out_b is not None else None
        self.size_ratio = udf.size_ratio
        self.ov = ctx.overhead_per_element
        self.core_speed = ctx.machine.core_speed
        self.penalty = ctx.penalty
        self.k_on_item = self._on_item
        self.k_after_overhead = self._after_overhead
        self.k_after_compute = self._after_compute
        self.k_after_put = self._after_put
        self.resume = self.start

    def start(self, value=None):
        self.in_get(self.k_on_item)

    def _on_item(self, item):
        if item is EOS:
            self.state.worker_done()
            return
        count = item[0]
        self.stats.elements_consumed += count
        self.item = item
        o = self.ov * count
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_after_overhead, ()))
            return
        self._after_overhead()

    def _after_overhead(self, value=None):
        if self.cpu_seconds > 0:
            svc = self.cpu_seconds * self.item[0] / self.core_speed
            self.svc = svc
            self.cores_submit(self.k_after_compute, svc, self.width)
            return
        self._emit()

    def _after_compute(self, value=None):
        self.stats.cpu_core_seconds += self.svc * self.width * self.penalty
        self._emit()

    def _emit(self):
        item = self.item
        count = item[0]
        out_count = count * self.ratio
        # udf.output_size(item.bytes_per_element), properties unrolled
        bpe = item[1] / count if count > 0 else 0.0
        fixed = self.fixed_out
        ob = fixed if fixed is not None else bpe * self.size_ratio
        out_bytes = ob * out_count
        if out_count > 0:
            out = (out_count, out_bytes)
            self.out = out
            self.out_put(self.k_after_put, out)
            return
        self.in_get(self.k_on_item)

    def _after_put(self, value=None):
        out = self.out
        st = self.stats
        now = self.sim.now
        st.elements_produced += out[0]
        st.bytes_produced += out[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self.in_get(self.k_on_item)


class _FilterTask:
    """Compiled :func:`~repro.runtime.iterators.filter_worker`."""

    __slots__ = (
        "resume", "sim", "stats", "state", "in_get", "out_put",
        "cores_submit", "cpu_seconds", "keep", "ov", "core_speed",
        "penalty", "item", "svc", "out", "k_on_item", "k_after_overhead",
        "k_after_compute", "k_after_put",
    )

    def __init__(self, node, in_q, out_q, state, ctx, stats):
        sim = ctx.sim
        self.sim = sim
        self.stats = stats
        self.state = state
        self.in_get = in_q._get
        self.out_put = out_q._put
        self.cores_submit = sim.cores.submit
        self.cpu_seconds = node.udf.cost.cpu_seconds
        self.keep = node.keep_fraction
        self.ov = ctx.overhead_per_element
        self.core_speed = ctx.machine.core_speed
        self.penalty = ctx.penalty
        self.k_on_item = self._on_item
        self.k_after_overhead = self._after_overhead
        self.k_after_compute = self._after_compute
        self.k_after_put = self._after_put
        self.resume = self.start

    def start(self, value=None):
        self.in_get(self.k_on_item)

    def _on_item(self, item):
        if item is EOS:
            self.state.worker_done()
            return
        count = item[0]
        self.stats.elements_consumed += count
        self.item = item
        o = self.ov * count
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_after_overhead, ()))
            return
        self._after_overhead()

    def _after_overhead(self, value=None):
        if self.cpu_seconds > 0:
            svc = self.cpu_seconds * self.item[0] / self.core_speed
            self.svc = svc
            self.cores_submit(self.k_after_compute, svc, 1.0)
            return
        self._emit()

    def _after_compute(self, value=None):
        self.stats.cpu_core_seconds += self.svc * self.penalty
        self._emit()

    def _emit(self):
        item = self.item
        keep = self.keep
        out_count = item[0] * keep
        out_bytes = item[1] * keep
        if out_count > 0:
            out = (out_count, out_bytes)
            self.out = out
            self.out_put(self.k_after_put, out)
            return
        self.in_get(self.k_on_item)

    def _after_put(self, value=None):
        out = self.out
        st = self.stats
        now = self.sim.now
        st.elements_produced += out[0]
        st.bytes_produced += out[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self.in_get(self.k_on_item)


class _BatchTask:
    """Compiled :func:`~repro.runtime.iterators.batch_worker`."""

    __slots__ = (
        "resume", "sim", "stats", "state", "in_get", "out_put",
        "cores_submit", "batch", "cpu_seconds", "ov", "core_speed",
        "penalty", "item", "out_count", "svc", "out", "k_on_item",
        "k_after_overhead", "k_after_compute", "k_after_put",
    )

    def __init__(self, node, in_q, out_q, state, ctx, stats):
        sim = ctx.sim
        self.sim = sim
        self.stats = stats
        self.state = state
        self.in_get = in_q._get
        self.out_put = out_q._put
        self.cores_submit = sim.cores.submit
        self.batch = node.batch_size
        self.cpu_seconds = node.cpu_seconds_per_example
        self.ov = ctx.overhead_per_element
        self.core_speed = ctx.machine.core_speed
        self.penalty = ctx.penalty
        self.k_on_item = self._on_item
        self.k_after_overhead = self._after_overhead
        self.k_after_compute = self._after_compute
        self.k_after_put = self._after_put
        self.resume = self.start

    def start(self, value=None):
        self.in_get(self.k_on_item)

    def _on_item(self, item):
        if item is EOS:
            self.state.worker_done()
            return
        count = item[0]
        self.stats.elements_consumed += count
        self.item = item
        # Overhead is paid per *output* element (one Next per batch).
        out_count = count / self.batch
        self.out_count = out_count
        o = self.ov * out_count
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_after_overhead, ()))
            return
        self._after_overhead()

    def _after_overhead(self, value=None):
        if self.cpu_seconds > 0:
            svc = self.cpu_seconds * self.item[0] / self.core_speed
            self.svc = svc
            self.cores_submit(self.k_after_compute, svc, 1.0)
            return
        self._emit()

    def _after_compute(self, value=None):
        self.stats.cpu_core_seconds += self.svc * self.penalty
        self._emit()

    def _emit(self):
        out = (self.out_count, self.item[1])
        self.out = out
        self.out_put(self.k_after_put, out)

    def _after_put(self, value=None):
        out = self.out
        st = self.stats
        now = self.sim.now
        st.elements_produced += out[0]
        st.bytes_produced += out[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self.in_get(self.k_on_item)


class _ShuffleTask:
    """Compiled :func:`~repro.runtime.iterators.shuffle_worker`."""

    __slots__ = (
        "resume", "sim", "stats", "state", "in_get", "out_put",
        "cores_submit", "cpu_seconds", "ov", "core_speed", "penalty",
        "item", "svc", "k_on_item", "k_after_overhead",
        "k_after_compute", "k_after_put",
    )

    def __init__(self, node, in_q, out_q, state, ctx, stats):
        sim = ctx.sim
        self.sim = sim
        self.stats = stats
        self.state = state
        self.in_get = in_q._get
        self.out_put = out_q._put
        self.cores_submit = sim.cores.submit
        self.cpu_seconds = node.cpu_seconds_per_element
        self.ov = ctx.overhead_per_element
        self.core_speed = ctx.machine.core_speed
        self.penalty = ctx.penalty
        self.k_on_item = self._on_item
        self.k_after_overhead = self._after_overhead
        self.k_after_compute = self._after_compute
        self.k_after_put = self._after_put
        self.resume = self.start

    def start(self, value=None):
        self.in_get(self.k_on_item)

    def _on_item(self, item):
        if item is EOS:
            self.state.worker_done()
            return
        count = item[0]
        self.stats.elements_consumed += count
        self.item = item
        o = self.ov * count
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_after_overhead, ()))
            return
        self._after_overhead()

    def _after_overhead(self, value=None):
        if self.cpu_seconds > 0:
            svc = self.cpu_seconds * self.item[0] / self.core_speed
            self.svc = svc
            self.cores_submit(self.k_after_compute, svc, 1.0)
            return
        self.out_put(self.k_after_put, self.item)

    def _after_compute(self, value=None):
        self.stats.cpu_core_seconds += self.svc * self.penalty
        self.out_put(self.k_after_put, self.item)

    def _after_put(self, value=None):
        item = self.item
        st = self.stats
        now = self.sim.now
        st.elements_produced += item[0]
        st.bytes_produced += item[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self.in_get(self.k_on_item)


class _PassthroughTask:
    """Compiled :func:`~repro.runtime.iterators.passthrough_worker`."""

    __slots__ = (
        "resume", "sim", "stats", "state", "in_get", "out_put", "ov",
        "item", "k_on_item", "k_forward", "k_after_put",
    )

    def __init__(self, node, in_q, out_q, state, ctx, stats):
        self.sim = ctx.sim
        self.stats = stats
        self.state = state
        self.in_get = in_q._get
        self.out_put = out_q._put
        self.ov = ctx.overhead_per_element
        self.k_on_item = self._on_item
        self.k_forward = self._forward
        self.k_after_put = self._after_put
        self.resume = self.start

    def start(self, value=None):
        self.in_get(self.k_on_item)

    def _on_item(self, item):
        if item is EOS:
            self.state.worker_done()
            return
        count = item[0]
        self.stats.elements_consumed += count
        self.item = item
        o = self.ov * count
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_forward, ()))
            return
        self._forward()

    def _forward(self, value=None):
        self.out_put(self.k_after_put, self.item)

    def _after_put(self, value=None):
        item = self.item
        st = self.stats
        now = self.sim.now
        st.elements_produced += item[0]
        st.bytes_produced += item[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self.in_get(self.k_on_item)


class _TakeTask:
    """Compiled :func:`~repro.runtime.iterators.take_worker`."""

    __slots__ = (
        "resume", "sim", "stats", "state", "in_get", "out_put",
        "remaining", "ov", "item", "emit", "out", "k_on_item",
        "k_after_overhead", "k_after_put",
    )

    def __init__(self, node, in_q, out_q, state, ctx, stats):
        self.sim = ctx.sim
        self.stats = stats
        self.state = state
        self.in_get = in_q._get
        self.out_put = out_q._put
        self.remaining = float(node.count)
        self.ov = ctx.overhead_per_element
        self.k_on_item = self._on_item
        self.k_after_overhead = self._after_overhead
        self.k_after_put = self._after_put
        self.resume = self.start

    def start(self, value=None):
        self._next()

    def _next(self):
        if self.remaining > 0:
            self.in_get(self.k_on_item)
            return
        self.state.worker_done()

    def _on_item(self, item):
        if item is EOS:
            self.state.worker_done()
            return
        count = item[0]
        self.stats.elements_consumed += count
        emit = min(count, self.remaining)
        self.remaining -= emit
        self.item = item
        self.emit = emit
        o = self.ov * emit
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_after_overhead, ()))
            return
        self._after_overhead()

    def _after_overhead(self, value=None):
        item = self.item
        emit = self.emit
        frac = emit / item[0] if item[0] > 0 else 0.0
        out = (emit, item[1] * frac)
        self.out = out
        self.out_put(self.k_after_put, out)

    def _after_put(self, value=None):
        out = self.out
        st = self.stats
        now = self.sim.now
        st.elements_produced += out[0]
        st.bytes_produced += out[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self._next()


class _CacheTask:
    """Compiled :func:`~repro.runtime.iterators.cache_worker`.

    The serve phase is where the chunk-replay optimization lives: at
    steady state every pass replays the same chunk pattern, so the
    per-chunk deltas (framework overhead, scaled service time, the CPU
    counter increment) are computed in closed form once per run of
    equal-sized chunks and replayed from cached floats. Multiplication
    of identical operands is deterministic, so the replayed pattern is
    bit-identical to recomputing it chunk by chunk.
    """

    __slots__ = (
        "resume", "sim", "stats", "state", "in_get", "out_put",
        "cores_submit", "cache_bytes_map", "memory_limit", "name",
        "read_cpu", "ov", "core_speed", "penalty", "serve_epochs",
        "stored", "stored_bytes", "item", "epoch", "idx",
        "_rl_count", "_rl_o", "_rl_svc", "_rl_cpu",
        "k_on_populate_item", "k_populate_forward", "k_after_populate_put",
        "k_serve_after_overhead", "k_serve_after_compute",
        "k_serve_after_put",
    )

    def __init__(self, node, in_q, out_q, state, ctx, stats, serve_epochs):
        sim = ctx.sim
        self.sim = sim
        self.stats = stats
        self.state = state
        self.in_get = in_q._get
        self.out_put = out_q._put
        self.cores_submit = sim.cores.submit
        self.cache_bytes_map = ctx.cache_bytes
        self.memory_limit = ctx.memory_limit_bytes
        self.name = node.name
        self.read_cpu = node.read_cpu_seconds_per_element
        self.ov = ctx.overhead_per_element
        self.core_speed = ctx.machine.core_speed
        self.penalty = ctx.penalty
        self.serve_epochs = serve_epochs
        self.stored: list = []
        self.stored_bytes = 0.0
        self._rl_count = -1.0  # sentinel: no chunk size cached yet
        self._rl_o = 0.0
        self._rl_svc = 0.0
        self._rl_cpu = 0.0
        self.k_on_populate_item = self._on_populate_item
        self.k_populate_forward = self._populate_forward
        self.k_after_populate_put = self._after_populate_put
        self.k_serve_after_overhead = self._serve_after_overhead
        self.k_serve_after_compute = self._serve_after_compute
        self.k_serve_after_put = self._serve_after_put
        self.resume = self.start

    # -- populate pass: forward while recording -------------------------
    def start(self, value=None):
        self.in_get(self.k_on_populate_item)

    def _on_populate_item(self, item):
        if item is EOS:
            self._begin_serve()
            return
        count = item[0]
        self.stats.elements_consumed += count
        self.stored.append(item)
        self.stored_bytes += item[1]
        self.cache_bytes_map[self.name] = self.stored_bytes
        if self.stored_bytes > self.memory_limit:
            # The generator's ``finally`` runs worker_done before the
            # error propagates; mirror that side effect.
            self.state.worker_done()
            raise SimulationError(
                f"cache {self.name!r} exceeded memory limit: "
                f"{self.stored_bytes / 1e9:.1f} GB > "
                f"{self.memory_limit / 1e9:.1f} GB"
            )
        self.item = item
        o = self.ov * count
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_populate_forward, ()))
            return
        self._populate_forward()

    def _populate_forward(self, value=None):
        self.out_put(self.k_after_populate_put, self.item)

    def _after_populate_put(self, value=None):
        item = self.item
        st = self.stats
        now = self.sim.now
        st.elements_produced += item[0]
        st.bytes_produced += item[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self.in_get(self.k_on_populate_item)

    # -- serve passes: replay from memory at memory-copy cost -----------
    def _begin_serve(self):
        self.epoch = 0.0
        self._next_pass()

    def _next_pass(self):
        if self.epoch < self.serve_epochs and self.stored:
            self.epoch += 1.0
            self.idx = 0
            self._serve_chunk()
            return
        self.state.worker_done()

    def _serve_chunk(self):
        item = self.stored[self.idx]
        count = item[0]
        if count != self._rl_count:
            # Closed-form per-chunk deltas for this run of chunk sizes.
            self._rl_count = count
            self._rl_o = self.ov * count
            if self.read_cpu > 0:
                svc = self.read_cpu * count / self.core_speed
                self._rl_svc = svc
                self._rl_cpu = svc * self.penalty
        self.item = item
        o = self._rl_o
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_serve_after_overhead, ()))
            return
        self._serve_after_overhead()

    def _serve_after_overhead(self, value=None):
        if self.read_cpu > 0:
            self.cores_submit(self.k_serve_after_compute, self._rl_svc, 1.0)
            return
        self.out_put(self.k_serve_after_put, self.item)

    def _serve_after_compute(self, value=None):
        self.stats.cpu_core_seconds += self._rl_cpu
        self.out_put(self.k_serve_after_put, self.item)

    def _serve_after_put(self, value=None):
        item = self.item
        st = self.stats
        now = self.sim.now
        st.elements_produced += item[0]
        st.bytes_produced += item[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        idx = self.idx + 1
        self.idx = idx
        if idx < len(self.stored):
            self._serve_chunk()
            return
        self._next_pass()


class _ZipTask:
    """Compiled :func:`~repro.runtime.iterators.zip_worker`."""

    __slots__ = (
        "resume", "sim", "stats", "state", "in_gets", "out_put",
        "cores_submit", "k", "cpu_seconds", "ov", "core_speed",
        "penalty", "buf_count", "buf_bytes", "i", "emit", "out_bytes",
        "svc", "out", "k_on_refill", "k_after_overhead",
        "k_after_compute", "k_after_put",
    )

    def __init__(self, node, in_qs, out_q, state, ctx, stats):
        sim = ctx.sim
        self.sim = sim
        self.stats = stats
        self.state = state
        self.in_gets = [q._get for q in in_qs]
        self.out_put = out_q._put
        self.cores_submit = sim.cores.submit
        self.k = len(in_qs)
        self.cpu_seconds = node.cpu_seconds_per_element
        self.ov = ctx.overhead_per_element
        self.core_speed = ctx.machine.core_speed
        self.penalty = ctx.penalty
        self.buf_count = [0.0] * self.k
        self.buf_bytes = [0.0] * self.k
        self.i = 0
        self.k_on_refill = self._on_refill
        self.k_after_overhead = self._after_overhead
        self.k_after_compute = self._after_compute
        self.k_after_put = self._after_put
        self.resume = self.start

    def start(self, value=None):
        self.i = 0
        self._refill_loop()

    def _refill_loop(self):
        # Refill every drained branch; first EOS ends the stream.
        i = self.i
        buf_count = self.buf_count
        while i < self.k:
            if buf_count[i] <= 0:
                self.i = i
                self.in_gets[i](self.k_on_refill)
                return
            i += 1
        self._emit_phase()

    def _on_refill(self, item):
        if item is EOS:
            self.state.worker_done()
            return
        count = item[0]
        self.stats.elements_consumed += count
        i = self.i
        self.buf_count[i] += count
        self.buf_bytes[i] += item[1]
        self._refill_loop()

    def _emit_phase(self):
        buf_count = self.buf_count
        buf_bytes = self.buf_bytes
        emit = min(buf_count)
        out_bytes = 0.0
        for i in range(self.k):
            share = emit / buf_count[i]
            out_bytes += buf_bytes[i] * share
            buf_bytes[i] -= buf_bytes[i] * share
            buf_count[i] -= emit
        self.emit = emit
        self.out_bytes = out_bytes
        o = self.ov * emit
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_after_overhead, ()))
            return
        self._after_overhead()

    def _after_overhead(self, value=None):
        if self.cpu_seconds > 0:
            svc = self.cpu_seconds * self.emit / self.core_speed
            self.svc = svc
            self.cores_submit(self.k_after_compute, svc, 1.0)
            return
        self._emit()

    def _after_compute(self, value=None):
        self.stats.cpu_core_seconds += self.svc * self.penalty
        self._emit()

    def _emit(self):
        out = (self.emit, self.out_bytes)
        self.out = out
        self.out_put(self.k_after_put, out)

    def _after_put(self, value=None):
        out = self.out
        st = self.stats
        now = self.sim.now
        st.elements_produced += out[0]
        st.bytes_produced += out[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self.i = 0
        self._refill_loop()


class _InterleaveTask:
    """Compiled :func:`~repro.runtime.iterators.interleave_worker`."""

    __slots__ = (
        "resume", "sim", "stats", "state", "in_gets", "out_put",
        "cores_submit", "k", "weights", "cpu_seconds", "ov",
        "core_speed", "penalty", "served", "best", "item", "svc",
        "k_on_item", "k_after_overhead", "k_after_compute",
        "k_after_put",
    )

    def __init__(self, node, in_qs, out_q, state, ctx, stats):
        sim = ctx.sim
        self.sim = sim
        self.stats = stats
        self.state = state
        self.in_gets = [q._get for q in in_qs]
        self.out_put = out_q._put
        self.cores_submit = sim.cores.submit
        self.k = len(in_qs)
        self.weights = node.weights
        self.cpu_seconds = node.cpu_seconds_per_element
        self.ov = ctx.overhead_per_element
        self.core_speed = ctx.machine.core_speed
        self.penalty = ctx.penalty
        self.served = [0.0] * self.k
        self.k_on_item = self._on_item
        self.k_after_overhead = self._after_overhead
        self.k_after_compute = self._after_compute
        self.k_after_put = self._after_put
        self.resume = self.start

    def start(self, value=None):
        self._pick()

    def _pick(self):
        served = self.served
        weights = self.weights
        best = min(range(self.k), key=lambda i: served[i] / weights[i])
        self.best = best
        self.in_gets[best](self.k_on_item)

    def _on_item(self, item):
        if item is EOS:
            self.state.worker_done()
            return
        count = item[0]
        self.stats.elements_consumed += count
        self.served[self.best] += count
        self.item = item
        o = self.ov * count
        if o > 0:
            self.stats.overhead_seconds += o
            sim = self.sim
            t = sim.now + o
            if t <= sim.now:
                raise EngineFallback
            sim._seq += 1
            _push(sim._heap, (t, sim._seq, self.k_after_overhead, ()))
            return
        self._after_overhead()

    def _after_overhead(self, value=None):
        if self.cpu_seconds > 0:
            svc = self.cpu_seconds * self.item[0] / self.core_speed
            self.svc = svc
            self.cores_submit(self.k_after_compute, svc, 1.0)
            return
        self.out_put(self.k_after_put, self.item)

    def _after_compute(self, value=None):
        self.stats.cpu_core_seconds += self.svc * self.penalty
        self.out_put(self.k_after_put, self.item)

    def _after_put(self, value=None):
        item = self.item
        st = self.stats
        now = self.sim.now
        st.elements_produced += item[0]
        st.bytes_produced += item[1]
        if st.first_output_time is None:
            st.first_output_time = now
        st.last_output_time = now
        self._pick()


class VectorConsumer:
    """Compiled :class:`repro.runtime.executor._Consumer`."""

    __slots__ = (
        "resume", "sim", "root_get", "step_per_element", "elements",
        "wait_seconds", "done", "t0", "k_on_item", "k_next",
    )

    def __init__(self, sim, root_q, step_per_element: float):
        self.sim = sim
        self.root_get = root_q._get
        self.step_per_element = step_per_element
        self.elements = 0.0
        self.wait_seconds = 0.0
        self.done = False
        self.k_on_item = self._on_item
        self.k_next = self._next
        self.resume = self.start

    def start(self, value=None):
        self._next()

    def _next(self, value=None):
        self.t0 = self.sim.now
        self.root_get(self.k_on_item)

    def _on_item(self, item):
        if item is EOS:
            self.done = True
            return
        sim = self.sim
        now = sim.now
        self.wait_seconds += now - self.t0
        count = item[0]
        self.elements += count
        step = self.step_per_element
        if step > 0:
            d = step * count
            # mirror schedule(): a zero delay joins the ready FIFO
            if d == 0.0:
                sim._ready.append((self.k_next, None))
            else:
                t = now + d
                if t <= now:
                    raise EngineFallback
                sim._seq += 1
                _push(sim._heap, (t, sim._seq, self.k_next, ()))
            return
        self.t0 = now
        self.root_get(self.k_on_item)

    def snapshot(self) -> tuple:
        return (self.elements, self.wait_seconds)


def build_vector_stage(
    node: DatasetNode,
    in_qs: Optional[List[SimQueue]],
    out_q: SimQueue,
    ctx: ExecContext,
    stats: NodeStats,
    *,
    cursor: Optional[FileCursor] = None,
    granularity: int = 1,
    serve_epochs: float = 0.0,
) -> list:
    """Instantiate the compiled tasks for ``node``.

    Mirrors :func:`repro.runtime.iterators.build_stage` exactly — same
    worker counts, same shared :class:`StageState`, same queue fan-in —
    but returns task objects whose ``start`` methods are scheduled
    instead of generators to spawn.
    """
    if isinstance(node, InterleaveSourceNode):
        workers = node.effective_parallelism
        state = StageState(out_q, workers)
        assert cursor is not None
        return [
            _SourceTask(node, cursor, out_q, state, ctx, stats, granularity)
            for _ in range(workers)
        ]
    assert in_qs is not None
    if isinstance(node, ZipNode):
        state = StageState(out_q, 1)
        return [_ZipTask(node, list(in_qs), out_q, state, ctx, stats)]
    if isinstance(node, InterleaveDatasetsNode):
        state = StageState(out_q, 1)
        return [_InterleaveTask(node, list(in_qs), out_q, state, ctx, stats)]
    in_q = in_qs[0]
    if isinstance(node, MapNode):
        workers = node.effective_parallelism
        state = StageState(out_q, workers)
        return [
            _MapTask(node, in_q, out_q, state, ctx, stats)
            for _ in range(workers)
        ]
    if isinstance(node, BatchNode):
        workers = node.effective_parallelism
        state = StageState(out_q, workers)
        return [
            _BatchTask(node, in_q, out_q, state, ctx, stats)
            for _ in range(workers)
        ]
    if isinstance(node, FilterNode):
        state = StageState(out_q, 1)
        return [_FilterTask(node, in_q, out_q, state, ctx, stats)]
    if isinstance(node, ShuffleNode):  # includes ShuffleAndRepeatNode
        state = StageState(out_q, 1)
        return [_ShuffleTask(node, in_q, out_q, state, ctx, stats)]
    if isinstance(node, TakeNode):
        state = StageState(out_q, 1)
        return [_TakeTask(node, in_q, out_q, state, ctx, stats)]
    if isinstance(node, CacheNode):
        state = StageState(out_q, 1)
        return [
            _CacheTask(node, in_q, out_q, state, ctx, stats, serve_epochs)
        ]
    if isinstance(node, (RepeatNode, PrefetchNode)):
        state = StageState(out_q, 1)
        return [_PassthroughTask(node, in_q, out_q, state, ctx, stats)]
    raise TypeError(f"no vectorized implementation for node kind {node.kind!r}")
