"""Top-level simulated execution: build, run, and measure a pipeline.

:func:`run_pipeline` wires the iterator workers together on a simulated
:class:`~repro.host.machine.Machine`, runs for a virtual duration with a
warmup window trimmed, and returns a :class:`RunResult` carrying the
throughput, per-node counter deltas, consumer ``Next``-latency, and
resource utilization — everything Plumber's tracer and the fleet
analysis consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.graph.datasets import (
    CacheNode,
    InterleaveSourceNode,
    Pipeline,
    PrefetchNode,
    RepeatNode,
)
from repro.graph.validate import validate_pipeline
from repro.host.machine import Machine
from repro.obs import global_registry
from repro.runtime.engine import (
    EOS,
    CoreScheduler,
    FairShareDisk,
    Get,
    SimQueue,
    Simulation,
    Timeout,
)
from repro.runtime.iterators import (
    ExecContext,
    FileCursor,
    build_stage,
    expected_elements_per_chunk,
)
from repro.runtime.stats import NodeStats, StatsBoard
from repro.runtime.vector import (
    EngineFallback,
    TurboCores,
    TurboQueue,
    VectorConsumer,
    VectorSimulation,
    build_vector_stage,
)


@dataclass
class BenchmarkConsumer:
    """Pulls as fast as possible (microbenchmark mode, §5.1)."""

    step_seconds_per_element: float = 0.0


@dataclass
class ModelConsumer:
    """Pulls at the model's training-step rate (end-to-end mode, §5.4).

    ``step_seconds_per_element`` is seconds of accelerator time per root
    element (minibatch).
    """

    step_seconds_per_element: float

    def __post_init__(self) -> None:
        if self.step_seconds_per_element < 0:
            raise ValueError("step time must be >= 0")


#: simulation engine implementations selectable via ``RunConfig.engine``
SIM_ENGINES = ("vectorized", "reference")


@dataclass
class RunConfig:
    """Knobs for one simulated run."""

    duration: float = 5.0
    warmup: float = 1.0
    trace: bool = True
    granularity: Optional[int] = None
    consumer: object = field(default_factory=BenchmarkConsumer)
    epochs: Optional[float] = None
    #: cap on simulation events per run when ``granularity`` is unset;
    #: the auto-tuner coarsens chunks until the estimate fits
    event_budget: Optional[int] = None
    #: simulation engine: ``"vectorized"`` (compiled workers, pooled
    #: wakes, serve-phase chunk replay — the default) or ``"reference"``
    #: (the scalar generator engine the golden-trace corpus is captured
    #: from). Both emit byte-identical traces; the reference path is
    #: retained so the fast path is always checkable.
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must be in [0, duration)")
        if self.granularity is not None and self.granularity < 1:
            raise ValueError("granularity must be >= 1")
        if self.event_budget is not None and self.event_budget < 1:
            raise ValueError("event_budget must be >= 1")
        if self.engine not in SIM_ENGINES:
            raise ValueError(
                f"unknown simulation engine {self.engine!r}; "
                f"available: {list(SIM_ENGINES)}"
            )


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    pipeline: Pipeline
    machine: Machine
    config: RunConfig
    stats: Dict[str, NodeStats]            # measurement-window deltas
    cumulative_stats: Dict[str, NodeStats]  # full-run counters
    minibatches: float
    measured_seconds: float
    throughput: float                       # root elements / second
    next_latency: float                     # mean blocked time per element
    cpu_utilization: float
    disk_bytes: float
    cache_bytes: Dict[str, float]
    completed: bool                         # stream drained before time limit
    events_processed: int = 0               # engine callbacks fired
    peak_ready_depth: int = 0               # deepest same-timestamp deque
    #: per-node output-queue telemetry (puts/gets/peak/mean occupancy),
    #: part of the engine-equivalence contract the golden corpus pins
    queue_stats: Dict[str, dict] = field(default_factory=dict)

    @property
    def examples_per_second(self) -> float:
        """Throughput in examples (images/sentences) per second."""
        return self.throughput * self.pipeline.batch_size()


class _Consumer:
    """Root-queue puller that records minibatch counts and Next latency."""

    def __init__(self, sim: Simulation, root_q: SimQueue, step_per_element: float):
        self.sim = sim
        self.root_q = root_q
        self.step_per_element = step_per_element
        self.elements = 0.0
        self.wait_seconds = 0.0
        self.done = False

    def run(self):
        while True:
            t0 = self.sim.now
            item = yield Get(self.root_q)
            if item is EOS:
                self.done = True
                return
            self.wait_seconds += self.sim.now - t0
            self.elements += item.count
            if self.step_per_element > 0:
                yield Timeout(self.step_per_element * item.count)

    def snapshot(self) -> tuple:
        return (self.elements, self.wait_seconds)


def _pipeline_epochs(pipeline: Pipeline) -> float:
    """Total passes over the data implied by repeat nodes."""
    epochs = 1.0
    for node in pipeline.iter_nodes():
        if isinstance(node, RepeatNode):
            epochs *= math.inf if node.count is None else node.count
        elif node.kind == "shuffle_and_repeat":
            epochs *= math.inf
    return epochs


#: default event budget per trace — a few hundred ms of simulator time
DEFAULT_EVENT_BUDGET = 300_000
#: queue/overhead/compute/resume events one chunk costs per stage
_EVENTS_PER_CHUNK = 6.0
#: coarsest chunk the tuner will pick (beyond this, timing resolution
#: degrades with no meaningful event-count win)
_MAX_GRANULARITY = 65_536


def _granularity_floor(pipeline: Pipeline) -> int:
    """The legacy batch-size heuristic, kept as the fine-grained floor."""
    batch = pipeline.batch_size()
    return int(min(64, max(1, batch // 8)))


def _fill_regime_prediction(
    pipeline: Pipeline, machine: Machine, consumer_step_seconds: float
):
    """Steady-state rate prediction for granularity sizing.

    GUARD (regression from the analytic-backend work): chunk sizing MUST
    use the fill/populate regime (``cached=False``). A pipeline that
    gained a cache serves at the cached suffix's (much faster) rate, and
    sizing chunks for that rate makes them so coarse the populate pass
    cannot push a single chunk through the whole chain within the trace
    window — the trace then reports throughput 0 and the optimizer
    concludes the optimized pipeline got *slower*. This helper is the
    single place granularity prediction happens, so the invariant cannot
    be lost to a refactor of one call site.
    """
    from repro.analysis.steady_state import predict_throughput

    return predict_throughput(
        pipeline, machine,
        consumer_step_seconds=consumer_step_seconds,
        cached=False,
    )


def auto_granularity(
    pipeline: Pipeline,
    machine: Machine,
    duration: float = 5.0,
    event_budget: int = DEFAULT_EVENT_BUDGET,
    consumer_step_seconds: float = 0.0,
) -> int:
    """Pick a chunk size so one trace emits a bounded number of events.

    Chunking scales every stage's chunk count together, so the event
    rate of the whole simulation is ``~ stages x events_per_chunk x
    (element rate at the source) / granularity`` — independent of which
    stage a chunk is at. Predicting the element rate with the analytic
    steady-state model therefore lets us solve for the granularity that
    lands the run inside ``event_budget`` regardless of per-op cost:
    µs-cost NLP pipelines (huge element rates) get coarse chunks
    automatically, while low-rate vision pipelines keep the legacy
    batch-size heuristic as a floor (identical behaviour to before).
    """
    floor = _granularity_floor(pipeline)
    try:
        prediction = _fill_regime_prediction(
            pipeline, machine, consumer_step_seconds
        )
    except (ValueError, KeyError):  # unmodellable structure: keep floor
        return floor
    rate = prediction.throughput
    if not math.isfinite(rate) or rate <= 0:
        return floor
    ratios = pipeline.visit_ratios()
    source_elements = sum(
        ratios[s.name] for s in pipeline.sources()
        if math.isfinite(ratios[s.name])
    )
    if source_elements <= 0:
        return floor
    stages = len(ratios) + 1  # +1 for the consumer
    events = duration * rate * source_elements * stages * _EVENTS_PER_CHUNK
    need = math.ceil(events / event_budget)
    # Timing-resolution cap: at least ~8 chunks must reach the root per
    # trace window, or the measurement is one burst and the fill
    # transient swallows the run. The floor wins when the two conflict
    # (very low-rate pipelines).
    resolution_cap = math.floor(duration * rate * source_elements / 8.0)
    need = min(need, max(floor, resolution_cap))
    return int(min(_MAX_GRANULARITY, max(floor, need)))


def resolve_granularity(
    pipeline: Pipeline, machine: Machine, config: RunConfig
) -> int:
    """The chunk size one run configuration resolves to: the explicit
    ``granularity`` if set, else the event-budget auto-tuner. Both trace
    backends use this, so a given :class:`RunConfig` always means the
    same chunking regardless of how the trace is acquired."""
    return config.granularity or auto_granularity(
        pipeline,
        machine,
        duration=config.duration,
        event_budget=config.event_budget or DEFAULT_EVENT_BUDGET,
        consumer_step_seconds=config.consumer.step_seconds_per_element,
    )


def _total_threads(pipeline: Pipeline) -> float:
    """Worker threads the pipeline spawns (for the oversubscription
    penalty): parallelism x UDF-internal threads, +1 per sequential op."""
    total = 0.0
    for node in pipeline.topological_order():
        internal = 1.0
        if node.udf is not None:
            internal = node.udf.cost.internal_parallelism
        total += node.effective_parallelism * internal
    return total


def run_pipeline(
    pipeline: Pipeline,
    machine: Machine,
    config: Optional[RunConfig] = None,
    **config_overrides,
) -> RunResult:
    """Simulate ``pipeline`` on ``machine`` and measure it.

    Any :class:`RunConfig` field can be passed as a keyword override,
    e.g. ``run_pipeline(pipe, machine, duration=3.0, trace=False)``.
    """
    if config is None:
        config = RunConfig(**config_overrides)
    elif config_overrides:
        raise TypeError("pass either a RunConfig or keyword overrides, not both")
    validate_pipeline(pipeline)

    # Both engines share the resource models (queue/cores/disk float
    # math is inherited, not reimplemented), so their traces are
    # byte-identical; the vectorized engine swaps the generator workers
    # and dispatch machinery for compiled tasks and direct wakes.
    if config.engine == "vectorized":
        try:
            return _execute(pipeline, machine, config, vectorized=True)
        except EngineFallback:
            # A timer delay vanished below one ulp of the clock — the one
            # regime whose mid-cohort interleaving the vectorized drain
            # does not reproduce. The partial run is discarded wholesale
            # (all engine state is local to _execute) and the pipeline is
            # replayed on the scalar path, which handles it natively.
            return _execute(pipeline, machine, config, vectorized=False)
    return _execute(pipeline, machine, config, vectorized=False)


def _execute(
    pipeline: Pipeline,
    machine: Machine,
    config: RunConfig,
    vectorized: bool,
) -> RunResult:
    """One simulated run on the selected engine (see :func:`run_pipeline`)."""
    sim = VectorSimulation() if vectorized else Simulation()
    threads = _total_threads(pipeline)
    cores_cls = TurboCores if vectorized else CoreScheduler
    sim.cores = cores_cls(
        sim,
        capacity=machine.cores,
        oversubscription_penalty=machine.oversubscription_penalty,
        total_threads=threads,
    )
    sim.disk = FairShareDisk(sim, machine.disk)

    overhead = machine.iterator_overhead + (
        machine.tracer_overhead if config.trace else 0.0
    )
    ctx = ExecContext(
        sim=sim,
        machine=machine,
        penalty=sim.cores.penalty,
        overhead_per_element=overhead,
        memory_limit_bytes=machine.memory_bytes * 0.9,
    )

    granularity = resolve_granularity(pipeline, machine, config)
    epochs = config.epochs if config.epochs is not None else _pipeline_epochs(pipeline)

    order = pipeline.topological_order()
    has_cache = any(isinstance(n, CacheNode) for n in order)
    # Only sources *below* a cache stop after the populate pass; in a
    # multi-branch graph a cache in one branch must not throttle the
    # sources of the others.
    below_cache = pipeline.below_cache_names() if has_cache else set()
    cache_serve_epochs = (epochs - 1.0) if has_cache else 0.0

    board = StatsBoard()
    queues: Dict[str, SimQueue] = {}
    for node in order:
        stats = board.register(
            NodeStats(
                name=node.name,
                kind=node.kind,
                parallelism=node.effective_parallelism,
                sequential=node.sequential,
                udf_internal_parallelism=(
                    node.udf.cost.internal_parallelism if node.udf else 1.0
                ),
            )
        )
        if isinstance(node, PrefetchNode):
            per_chunk = expected_elements_per_chunk(pipeline, node.name, granularity)
            capacity = max(1, int(math.ceil(node.buffer_size / per_chunk)))
        else:
            capacity = max(2, node.effective_parallelism)
        queue_cls = TurboQueue if vectorized else SimQueue
        out_q = queue_cls(sim, capacity, name=node.name)
        queues[node.name] = out_q

        if isinstance(node, InterleaveSourceNode):
            source_epochs = 1.0 if node.name in below_cache else epochs
            cursor = FileCursor(node.catalog.files, epochs=source_epochs)
            in_qs = None
        else:
            cursor = None
            in_qs = [queues[c.name] for c in node.inputs]
        if vectorized:
            tasks = build_vector_stage(
                node, in_qs, out_q, ctx, stats,
                cursor=cursor, granularity=granularity,
                serve_epochs=cache_serve_epochs,
            )
            for task in tasks:
                sim.schedule(0.0, task.start)
        else:
            workers = build_stage(
                node, in_qs, out_q, ctx, stats,
                cursor=cursor, granularity=granularity,
                serve_epochs=cache_serve_epochs,
            )
            for i, gen in enumerate(workers):
                sim.spawn(gen, name=f"{node.name}[{i}]")

    consumer_spec = config.consumer
    consumer_cls = VectorConsumer if vectorized else _Consumer
    consumer = consumer_cls(
        sim, queues[pipeline.root.name], consumer_spec.step_seconds_per_element
    )
    if vectorized:
        sim.schedule(0.0, consumer.start)
    else:
        sim.spawn(consumer.run(), name="consumer")

    # Warmup snapshot taken mid-run.
    warm: dict = {}

    def take_warm_snapshot() -> None:
        warm["stats"] = board.snapshot()
        warm["consumer"] = consumer.snapshot()
        warm["disk_bytes"] = sim.disk.total_bytes

    if config.warmup > 0:
        sim.schedule(config.warmup, take_warm_snapshot)
    else:
        take_warm_snapshot()

    end_time = sim.run(config.duration)
    completed = consumer.done

    if "stats" not in warm:
        # Drained before warmup ended: measure the whole run instead.
        warm["stats"] = {
            name: NodeStats(name=name, kind=board[name].kind)
            for name in board.names()
        }
        warm["consumer"] = (0.0, 0.0)
        warm["disk_bytes"] = 0.0
        measured = max(end_time, 1e-12)
    else:
        measured = max(end_time - config.warmup, 1e-12)

    deltas = {
        name: board[name].delta(warm["stats"][name]) for name in board.names()
    }
    elements = consumer.elements - warm["consumer"][0]
    wait = consumer.wait_seconds - warm["consumer"][1]

    registry = global_registry()
    registry.counter(
        "repro_sim_events_total",
        "Simulation engine callbacks fired across all runs",
    ).inc(sim.events_processed)
    registry.histogram(
        "repro_sim_ready_depth",
        "Peak same-timestamp ready-deque depth per simulated run",
    ).observe(sim.peak_ready_depth)

    # Queue telemetry is part of the engine-equivalence contract (the
    # golden corpus pins it), so both engines surface it identically.
    queue_stats = {
        name: {
            "total_puts": q.total_puts,
            "total_gets": q.total_gets,
            "peak_occupancy": q.peak_occupancy,
            "mean_occupancy": q.mean_occupancy(),
        }
        for name, q in queues.items()
    }

    return RunResult(
        pipeline=pipeline,
        machine=machine,
        config=config,
        stats=deltas,
        cumulative_stats=board.snapshot(),
        minibatches=elements,
        measured_seconds=measured,
        throughput=elements / measured,
        next_latency=(wait / elements) if elements > 0 else float("inf"),
        cpu_utilization=sim.cores.utilization(end_time),
        disk_bytes=sim.disk.total_bytes - warm["disk_bytes"],
        cache_bytes=dict(ctx.cache_bytes),
        completed=completed,
        events_processed=sim.events_processed,
        peak_ready_depth=sim.peak_ready_depth,
        queue_stats=queue_stats,
    )
