"""Top-level simulated execution: build, run, and measure a pipeline.

:func:`run_pipeline` wires the iterator workers together on a simulated
:class:`~repro.host.machine.Machine`, runs for a virtual duration with a
warmup window trimmed, and returns a :class:`RunResult` carrying the
throughput, per-node counter deltas, consumer ``Next``-latency, and
resource utilization — everything Plumber's tracer and the fleet
analysis consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.graph.datasets import (
    CacheNode,
    InterleaveSourceNode,
    Pipeline,
    PrefetchNode,
    RepeatNode,
)
from repro.graph.validate import validate_pipeline
from repro.host.machine import Machine
from repro.runtime.engine import (
    EOS,
    CoreScheduler,
    FairShareDisk,
    Get,
    SimQueue,
    Simulation,
    Timeout,
)
from repro.runtime.iterators import (
    ExecContext,
    FileCursor,
    build_stage,
    expected_elements_per_chunk,
)
from repro.runtime.stats import NodeStats, StatsBoard


@dataclass
class BenchmarkConsumer:
    """Pulls as fast as possible (microbenchmark mode, §5.1)."""

    step_seconds_per_element: float = 0.0


@dataclass
class ModelConsumer:
    """Pulls at the model's training-step rate (end-to-end mode, §5.4).

    ``step_seconds_per_element`` is seconds of accelerator time per root
    element (minibatch).
    """

    step_seconds_per_element: float

    def __post_init__(self) -> None:
        if self.step_seconds_per_element < 0:
            raise ValueError("step time must be >= 0")


@dataclass
class RunConfig:
    """Knobs for one simulated run."""

    duration: float = 5.0
    warmup: float = 1.0
    trace: bool = True
    granularity: Optional[int] = None
    consumer: object = field(default_factory=BenchmarkConsumer)
    epochs: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must be in [0, duration)")
        if self.granularity is not None and self.granularity < 1:
            raise ValueError("granularity must be >= 1")


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    pipeline: Pipeline
    machine: Machine
    config: RunConfig
    stats: Dict[str, NodeStats]            # measurement-window deltas
    cumulative_stats: Dict[str, NodeStats]  # full-run counters
    minibatches: float
    measured_seconds: float
    throughput: float                       # root elements / second
    next_latency: float                     # mean blocked time per element
    cpu_utilization: float
    disk_bytes: float
    cache_bytes: Dict[str, float]
    completed: bool                         # stream drained before time limit

    @property
    def examples_per_second(self) -> float:
        """Throughput in examples (images/sentences) per second."""
        return self.throughput * self.pipeline.batch_size()


class _Consumer:
    """Root-queue puller that records minibatch counts and Next latency."""

    def __init__(self, sim: Simulation, root_q: SimQueue, step_per_element: float):
        self.sim = sim
        self.root_q = root_q
        self.step_per_element = step_per_element
        self.elements = 0.0
        self.wait_seconds = 0.0
        self.done = False

    def run(self):
        while True:
            t0 = self.sim.now
            item = yield Get(self.root_q)
            if item is EOS:
                self.done = True
                return
            self.wait_seconds += self.sim.now - t0
            self.elements += item.count
            if self.step_per_element > 0:
                yield Timeout(self.step_per_element * item.count)

    def snapshot(self) -> tuple:
        return (self.elements, self.wait_seconds)


def _pipeline_epochs(pipeline: Pipeline) -> float:
    """Total passes over the data implied by repeat nodes."""
    epochs = 1.0
    for node in pipeline.iter_nodes():
        if isinstance(node, RepeatNode):
            epochs *= math.inf if node.count is None else node.count
        elif node.kind == "shuffle_and_repeat":
            epochs *= math.inf
    return epochs


def _auto_granularity(pipeline: Pipeline) -> int:
    batch = pipeline.batch_size()
    return int(min(64, max(1, batch // 8)))


def _total_threads(pipeline: Pipeline) -> float:
    """Worker threads the pipeline spawns (for the oversubscription
    penalty): parallelism x UDF-internal threads, +1 per sequential op."""
    total = 0.0
    for node in pipeline.topological_order():
        internal = 1.0
        if node.udf is not None:
            internal = node.udf.cost.internal_parallelism
        total += node.effective_parallelism * internal
    return total


def run_pipeline(
    pipeline: Pipeline,
    machine: Machine,
    config: Optional[RunConfig] = None,
    **config_overrides,
) -> RunResult:
    """Simulate ``pipeline`` on ``machine`` and measure it.

    Any :class:`RunConfig` field can be passed as a keyword override,
    e.g. ``run_pipeline(pipe, machine, duration=3.0, trace=False)``.
    """
    if config is None:
        config = RunConfig(**config_overrides)
    elif config_overrides:
        raise TypeError("pass either a RunConfig or keyword overrides, not both")
    validate_pipeline(pipeline)

    sim = Simulation()
    threads = _total_threads(pipeline)
    sim.cores = CoreScheduler(
        sim,
        capacity=machine.cores,
        oversubscription_penalty=machine.oversubscription_penalty,
        total_threads=threads,
    )
    sim.disk = FairShareDisk(sim, machine.disk)

    overhead = machine.iterator_overhead + (
        machine.tracer_overhead if config.trace else 0.0
    )
    ctx = ExecContext(
        sim=sim,
        machine=machine,
        penalty=sim.cores.penalty,
        overhead_per_element=overhead,
        memory_limit_bytes=machine.memory_bytes * 0.9,
    )

    granularity = config.granularity or _auto_granularity(pipeline)
    epochs = config.epochs if config.epochs is not None else _pipeline_epochs(pipeline)

    order = pipeline.topological_order()
    has_cache = any(isinstance(n, CacheNode) for n in order)
    source_epochs = 1.0 if has_cache else epochs
    cache_serve_epochs = (epochs - 1.0) if has_cache else 0.0

    board = StatsBoard()
    queues: Dict[str, SimQueue] = {}
    for node in order:
        stats = board.register(
            NodeStats(
                name=node.name,
                kind=node.kind,
                parallelism=node.effective_parallelism,
                sequential=node.sequential,
                udf_internal_parallelism=(
                    node.udf.cost.internal_parallelism if node.udf else 1.0
                ),
            )
        )
        if isinstance(node, PrefetchNode):
            per_chunk = expected_elements_per_chunk(pipeline, node.name, granularity)
            capacity = max(1, int(math.ceil(node.buffer_size / per_chunk)))
        else:
            capacity = max(2, node.effective_parallelism)
        out_q = SimQueue(sim, capacity, name=node.name)
        queues[node.name] = out_q

        if isinstance(node, InterleaveSourceNode):
            cursor = FileCursor(node.catalog.files, epochs=source_epochs)
            workers = build_stage(
                node, None, out_q, ctx, stats,
                cursor=cursor, granularity=granularity,
            )
        else:
            in_q = queues[node.inputs[0].name]
            workers = build_stage(
                node, in_q, out_q, ctx, stats,
                serve_epochs=cache_serve_epochs,
            )
        for i, gen in enumerate(workers):
            sim.spawn(gen, name=f"{node.name}[{i}]")

    consumer_spec = config.consumer
    consumer = _Consumer(
        sim, queues[pipeline.root.name], consumer_spec.step_seconds_per_element
    )
    sim.spawn(consumer.run(), name="consumer")

    # Warmup snapshot taken mid-run.
    warm: dict = {}

    def take_warm_snapshot() -> None:
        warm["stats"] = board.snapshot()
        warm["consumer"] = consumer.snapshot()
        warm["disk_bytes"] = sim.disk.total_bytes

    if config.warmup > 0:
        sim.schedule(config.warmup, take_warm_snapshot)
    else:
        take_warm_snapshot()

    end_time = sim.run(config.duration)
    completed = consumer.done

    if "stats" not in warm:
        # Drained before warmup ended: measure the whole run instead.
        warm["stats"] = {
            name: NodeStats(name=name, kind=board[name].kind)
            for name in board.names()
        }
        warm["consumer"] = (0.0, 0.0)
        warm["disk_bytes"] = 0.0
        measured = max(end_time, 1e-12)
    else:
        measured = max(end_time - config.warmup, 1e-12)

    deltas = {
        name: board[name].delta(warm["stats"][name]) for name in board.names()
    }
    elements = consumer.elements - warm["consumer"][0]
    wait = consumer.wait_seconds - warm["consumer"][1]

    return RunResult(
        pipeline=pipeline,
        machine=machine,
        config=config,
        stats=deltas,
        cumulative_stats=board.snapshot(),
        minibatches=elements,
        measured_seconds=measured,
        throughput=elements / measured,
        next_latency=(wait / elements) if elements > 0 else float("inf"),
        cpu_utilization=sim.cores.utilization(end_time),
        disk_bytes=sim.disk.total_bytes - warm["disk_bytes"],
        cache_bytes=dict(ctx.cache_bytes),
        completed=completed,
    )
