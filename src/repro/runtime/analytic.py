"""Analytic fast-path trace backend.

Plumber's whole premise (§4.1) is that a trace is nothing but per-node
counters plus the serialized program — the optimizer never looks at an
individual event. This module produces that artifact *without running
the discrete-event simulator*: every counter the tracer would record is
computed in closed form from structural ratios, UDF cost models, the
disk bandwidth curve, and the same operational-analysis rate math the
fleet study uses (:mod:`repro.analysis.steady_state`).

The steady-state equilibrium is the minimum of

* per-stage capacities ``p_i / (V_i x worker-occupancy per element)``
  (occupancy = framework overhead + penalty-inflated compute + storage
  wait, exactly what one simulated worker pays per element),
* the aggregate CPU bound ``cores / Σ V_i x core-seconds_i``,
* the disk bound at the sources' stream parallelism, and
* the consumer's own step rate.

Two transients are corrected explicitly rather than simulated away:

* **pipeline fill** — the first element must traverse every stage, so
  production starts after a fill latency (one chunk's service time per
  stage, summed). Deep, slow pipelines therefore do not need long
  warmups to yield non-degenerate traces; the correction is exact where
  the simulator needs ``trace_duration >= 3s`` to wash the transient
  out.
* **cache fill** — with a :class:`~repro.graph.datasets.CacheNode`
  under a repeat, the run has two regimes: a populate epoch at the
  rate of the *whole* chain, then serving at the rate of the cached
  suffix. The trace window is split across both, so counters (and the
  sub-cache nodes' one-epoch production) match what a simulated trace
  of the same window observes.

Wallclock cost is O(nodes) per trace, independent of element rate —
this is what makes µs-cost NLP jobs and whole-fleet optimization cheap
(ROADMAP items 2 and 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.trace import PipelineTrace

from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    FilterNode,
    InterleaveDatasetsNode,
    InterleaveSourceNode,
    MapNode,
    Pipeline,
    ShuffleNode,
    TakeNode,
    ZipNode,
)
from repro.graph.serialize import pipeline_to_dict
from repro.graph.validate import validate_pipeline
from repro.host.machine import Machine
from repro.runtime.executor import (
    RunConfig,
    _pipeline_epochs,
    _total_threads,
    resolve_granularity,
)
from repro.runtime.iterators import READ_BLOCK_BYTES
from repro.runtime.stats import NodeStats

#: clamp for structurally unbounded rates (a pipeline with zero cost and
#: zero overhead); keeps synthesized counters finite
_RATE_CLAMP = 1e12


@dataclass
class _NodeModel:
    """Closed-form per-node quantities, all per *output* element."""

    node: DatasetNode
    visit: float                 # V_i: node completions per root element
    workers: int                 # worker pool width p_i
    wall_seconds: float          # worker occupancy (overhead+compute+io)
    core_seconds: float          # what on_cpu would record
    overhead_seconds: float      # what on_overhead would record
    bytes_per_element: float     # b_i, propagated source -> root
    io_seconds: float = 0.0      # storage wait (sources only)
    bytes_read: float = 0.0      # storage bytes (sources only)
    below_cache: bool = False    # produces only during the fill epoch
    serve_core_seconds: float = 0.0   # cache node: extra serve-side CPU
    serve_wall_seconds: float = 0.0   # cache node: serve-side occupancy


def _penalty_factor(machine: Machine, threads: float) -> float:
    """Mirror of :class:`CoreScheduler`'s oversubscription inflation."""
    slope = machine.oversubscription_penalty
    if threads <= machine.cores or slope <= 0:
        return 1.0
    return 1.0 + slope * (threads / machine.cores - 1.0)


def _build_node_models(
    pipeline: Pipeline,
    machine: Machine,
    overhead: float,
    granularity: int,
) -> List[_NodeModel]:
    """Per-node closed-form costs, mirroring the worker generators in
    :mod:`repro.runtime.iterators` (same accounting, no events)."""
    ratios = pipeline.visit_ratios()
    below = pipeline.below_cache_names()
    penalty = _penalty_factor(machine, _total_threads(pipeline))
    speed = machine.core_speed

    streams = sum(s.effective_parallelism for s in pipeline.sources())
    if streams > 0:
        per_stream_bw = machine.disk.bandwidth(streams) / streams
    else:
        per_stream_bw = math.inf

    models: List[_NodeModel] = []
    bytes_at: Dict[str, float] = {}
    for node in pipeline.topological_order():
        v = ratios[node.name]
        workers = node.effective_parallelism
        io = 0.0
        read = 0.0
        serve_core = 0.0
        serve_wall = 0.0
        if isinstance(node, InterleaveSourceNode):
            bpr = node.catalog.mean_bytes_per_record
            # Block-buffered reads: per-request latency is amortized over
            # the larger of the chunk and the read-ahead block.
            block = max(granularity * bpr, READ_BLOCK_BYTES)
            io = bpr / per_stream_bw + machine.disk.read_latency * bpr / block
            read = bpr
            compute = node.read_cpu_seconds_per_record / speed * penalty
            core = compute
            ovh = overhead
            b = bpr
        elif isinstance(node, MapNode):
            udf = node.udf
            er = max(udf.examples_ratio, 1e-12)
            compute_in = udf.cost.cpu_seconds / speed * penalty
            compute = compute_in / er
            core = compute_in * udf.cost.internal_parallelism / er
            ovh = overhead / er
            b = udf.output_size(bytes_at[node.inputs[0].name])
        elif isinstance(node, FilterNode):
            keep = max(node.keep_fraction, 1e-12)
            compute_in = node.udf.cost.cpu_seconds / speed * penalty
            compute = compute_in / keep
            core = compute_in / keep
            ovh = overhead / keep
            b = bytes_at[node.inputs[0].name]
        elif isinstance(node, BatchNode):
            per_example = node.cpu_seconds_per_example / speed * penalty
            compute = per_example * node.batch_size
            core = compute
            ovh = overhead  # paid per *output* element (one Next/batch)
            b = bytes_at[node.inputs[0].name] * node.batch_size
        elif isinstance(node, ShuffleNode):  # includes shuffle_and_repeat
            compute = node.cpu_seconds_per_element / speed * penalty
            core = compute
            ovh = overhead
            b = bytes_at[node.inputs[0].name]
        elif isinstance(node, CacheNode):
            # Populate pass forwards at overhead-only cost; serving adds
            # the memory-copy read cost.
            compute = 0.0
            core = 0.0
            ovh = overhead
            serve_core = node.read_cpu_seconds_per_element / speed * penalty
            serve_wall = ovh + serve_core
            b = bytes_at[node.inputs[0].name]
        elif isinstance(node, ZipNode):
            # One output pairs one element from every branch: bytes add.
            compute = node.cpu_seconds_per_element / speed * penalty
            core = compute
            ovh = overhead
            b = sum(bytes_at[c.name] for c in node.inputs)
        elif isinstance(node, InterleaveDatasetsNode):
            # Weighted mix: expected output bytes are the weighted mean
            # of the branch element sizes.
            compute = node.cpu_seconds_per_element / speed * penalty
            core = compute
            ovh = overhead
            b = sum(
                w * bytes_at[c.name]
                for w, c in zip(node.weights, node.inputs)
            )
        else:  # repeat / prefetch / take: pure forwarding
            compute = 0.0
            core = 0.0
            ovh = overhead
            b = bytes_at[node.inputs[0].name]
        bytes_at[node.name] = b
        models.append(
            _NodeModel(
                node=node,
                visit=v,
                workers=workers,
                wall_seconds=ovh + compute + io,
                core_seconds=core,
                overhead_seconds=ovh,
                bytes_per_element=b,
                io_seconds=io,
                bytes_read=read,
                below_cache=node.name in below,
                serve_core_seconds=serve_core,
                serve_wall_seconds=serve_wall,
            )
        )
    return models


def _cache_subtrees(models: List[_NodeModel]) -> Dict[str, set]:
    """Per-cache name set of the nodes strictly below it."""
    subtrees: Dict[str, set] = {}
    for m in models:
        if not isinstance(m.node, CacheNode):
            continue
        names: set = set()
        stack = list(m.node.inputs)
        while stack:
            n = stack.pop()
            names.add(n.name)
            stack.extend(n.inputs)
        subtrees[m.node.name] = names
    return subtrees


def _equilibrium_caps(
    models: List[_NodeModel],
    machine: Machine,
    consumer_step: float,
    serving: bool,
    served_caches: Optional[set] = None,
) -> Dict[str, float]:
    """Labelled root-throughput bounds: stage, CPU, disk, consumer caps.

    ``serving=True`` models the post-populate regime of a cached
    pipeline: sub-cache nodes are free and the cache pays its serve-side
    cost; ``serving=False`` is the whole-chain (fill or cache-free)
    regime. ``served_caches`` overrides the boolean with a *partial*
    regime — exactly the named caches serve while the rest still
    populate — which is how multi-source graphs behave while their
    branch caches finish filling at different times. Labels are
    ``stage:<node>``, ``cpu``, ``disk``, and ``consumer`` — the same
    vocabulary as :func:`repro.analysis.steady_state.predict_throughput`.
    """
    subtrees = _cache_subtrees(models)
    if served_caches is None:
        served_caches = set(subtrees) if serving else set()
    free: set = set()
    for cache_name in served_caches:
        free |= subtrees.get(cache_name, set())
    caps: Dict[str, float] = {}
    cpu_demand = 0.0
    disk_bytes = 0.0
    streams = 0
    for m in models:
        if m.node.name in free:
            continue
        wall = m.wall_seconds
        core = m.core_seconds
        if m.node.name in served_caches:
            wall = m.serve_wall_seconds
            core = m.serve_core_seconds
        if wall > 0 and m.visit > 0:
            caps[f"stage:{m.node.name}"] = m.workers / (m.visit * wall)
        cpu_demand += m.visit * core
        if isinstance(m.node, InterleaveSourceNode):
            disk_bytes += m.visit * m.bytes_read
            streams += m.workers
    if cpu_demand > 0:
        caps["cpu"] = machine.cores / cpu_demand
    if disk_bytes > 0 and streams > 0:
        caps["disk"] = machine.disk.bandwidth(streams) / disk_bytes
    if consumer_step > 0:
        caps["consumer"] = 1.0 / consumer_step
    return caps


def _equilibrium_rate(
    models: List[_NodeModel],
    machine: Machine,
    consumer_step: float,
    serving: bool,
    served_caches: Optional[set] = None,
) -> float:
    """Root throughput bound: the min over :func:`_equilibrium_caps`."""
    caps = _equilibrium_caps(
        models, machine, consumer_step, serving, served_caches
    )
    rate = min(caps.values()) if caps else math.inf
    return min(rate, _RATE_CLAMP)


@dataclass(frozen=True)
class EquilibriumDiagnostics:
    """How decisive the analytic steady-state model is for one run.

    ``margin`` is the relative headroom between the binding cap and the
    runner-up (``runner_up/binding - 1``): a large margin means the
    bottleneck identification is structurally unambiguous, a margin near
    zero means two constraints are nearly tied and a discrete-event
    simulation may attribute the bottleneck differently. The adaptive
    backend (:mod:`repro.runtime.adaptive`) uses this as its confidence
    signal.
    """

    rate: float                  # equilibrium root throughput
    binding: str                 # label of the binding cap
    runner_up: str               # label of the second-smallest cap
    margin: float                # runner_up/binding - 1 (inf if only one)
    caps: Dict[str, float]       # every labelled cap
    #: per merge node, the relative headroom between its slowest and
    #: second-slowest branch delivery caps (in root units). A thin
    #: branch margin means a small modelling error flips *which branch*
    #: throttles the merge — the multi-source analogue of ``margin``;
    #: chain pipelines have no merges and an empty mapping.
    branch_margins: Dict[str, float] = field(default_factory=dict)

    @property
    def min_branch_margin(self) -> float:
        """Smallest branch margin across merges (``inf`` when none)."""
        return min(self.branch_margins.values(), default=math.inf)


@dataclass(frozen=True)
class _Prepared:
    """Shared setup for one analytic run: validated pipeline, resolved
    granularity, node models, and regime facts. Built once per run and
    reused by the trace synthesis and the diagnostics, so callers that
    need both (the adaptive backend) pay for the model build — and the
    granularity auto-tune it includes — exactly once."""

    config: RunConfig
    models: List[_NodeModel]
    granularity: int
    consumer_step: float
    epochs: float
    has_cache: bool

    @property
    def serving(self) -> bool:
        """Steady-state regime: serve-side iff a cache repeats."""
        return self.has_cache and self.epochs > 1


def _prepare(
    pipeline: Pipeline,
    machine: Machine,
    config: Optional[RunConfig],
    config_overrides: dict,
) -> _Prepared:
    if config is None:
        config = RunConfig(**config_overrides)
    elif config_overrides:
        raise TypeError("pass either a RunConfig or keyword overrides, not both")
    validate_pipeline(pipeline)
    overhead = machine.iterator_overhead + (
        machine.tracer_overhead if config.trace else 0.0
    )
    granularity = resolve_granularity(pipeline, machine, config)
    models = _build_node_models(pipeline, machine, overhead, granularity)
    epochs = (
        config.epochs if config.epochs is not None
        else _pipeline_epochs(pipeline)
    )
    return _Prepared(
        config=config,
        models=models,
        granularity=granularity,
        consumer_step=config.consumer.step_seconds_per_element,
        epochs=epochs,
        has_cache=any(isinstance(m.node, CacheNode) for m in models),
    )


def _branch_margins(
    models: List[_NodeModel], caps: Dict[str, float]
) -> Dict[str, float]:
    """Per-merge headroom between the slowest two branch delivery caps.

    Stage caps are already in root units, so a branch's delivery
    capability through the merge is the min stage cap over its subtree;
    the merge's effective constraint is the slowest branch. When two
    branches are nearly tied, which one throttles the merge is within
    modelling error — the adaptive backend treats a thin branch margin
    like a thin global margin and lets the simulator arbitrate.
    """

    def subtree_caps(node: DatasetNode) -> List[float]:
        vals = []
        stack = [node]
        while stack:
            n = stack.pop()
            cap = caps.get(f"stage:{n.name}")
            if cap is not None:
                vals.append(cap)
            stack.extend(n.inputs)
        return vals

    margins: Dict[str, float] = {}
    for m in models:
        if not m.node.merges:
            continue
        branch_caps = sorted(
            min(subtree_caps(child), default=math.inf)
            for child in m.node.inputs
        )
        slowest = branch_caps[0]
        if (
            len(branch_caps) > 1
            and slowest > 0
            and math.isfinite(slowest)
            and math.isfinite(branch_caps[1])
        ):
            margins[m.node.name] = branch_caps[1] / slowest - 1.0
        else:
            margins[m.node.name] = math.inf
    return margins


def _diagnostics_from(prepared: _Prepared,
                      machine: Machine) -> EquilibriumDiagnostics:
    caps = _equilibrium_caps(
        prepared.models, machine, prepared.consumer_step, prepared.serving
    )
    branch_margins = _branch_margins(prepared.models, caps)
    if not caps:
        return EquilibriumDiagnostics(
            rate=math.inf, binding="unbounded", runner_up="unbounded",
            margin=math.inf, caps={}, branch_margins=branch_margins,
        )
    ordered = sorted(caps.items(), key=lambda kv: kv[1])
    binding, rate = ordered[0]
    if len(ordered) > 1 and rate > 0:
        runner_up, second = ordered[1]
        margin = second / rate - 1.0
    else:
        runner_up, margin = binding, math.inf
    return EquilibriumDiagnostics(
        rate=min(rate, _RATE_CLAMP),
        binding=binding,
        runner_up=runner_up,
        margin=margin,
        caps=caps,
        branch_margins=branch_margins,
    )


def equilibrium_diagnostics(
    pipeline: Pipeline,
    machine: Machine,
    config: Optional[RunConfig] = None,
    **config_overrides,
) -> EquilibriumDiagnostics:
    """Closed-form bottleneck attribution + confidence for one run.

    Uses the same node models and regime selection as
    :func:`analytic_trace` (the serve regime when a cache repeats past
    its populate epoch, the whole-chain regime otherwise), so the
    diagnostics describe exactly the trace the analytic backend would
    emit.
    """
    prepared = _prepare(pipeline, machine, config, config_overrides)
    return _diagnostics_from(prepared, machine)


def _fill_latency(models: List[_NodeModel], granularity: int) -> float:
    """Time for the first chunk to traverse the pipeline (queue fill).

    Chunk sizes follow the structural ratios (the chunk entering node i
    carries ``granularity x V_i / V_src`` of its elements), so the
    latency is the sum over stages of one chunk's single-worker service
    time. This is the transient the simulator has to warm through; here
    it is an explicit correction term.
    """
    v_src = max(
        (m.visit for m in models if isinstance(m.node, InterleaveSourceNode)),
        default=0.0,
    )
    if v_src <= 0:
        return 0.0
    latency = 0.0
    for m in models:
        chunk = granularity * m.visit / v_src
        latency += chunk * m.wall_seconds
    return latency


def _epoch_root_elements(pipeline: Pipeline, models: List[_NodeModel]) -> float:
    """Root elements produced by one full pass over the sources."""
    ratios = {m.node.name: m.visit for m in models}
    per_epoch = math.inf
    for source in pipeline.sources():
        records = sum(f.num_records for f in source.catalog.files)
        v = ratios[source.name]
        if v > 0:
            per_epoch = min(per_epoch, records / v)
    for m in models:
        if isinstance(m.node, TakeNode) and m.visit > 0:
            per_epoch = min(per_epoch, m.node.count / m.visit)
    return per_epoch


def analytic_trace(
    pipeline: Pipeline,
    machine: Machine,
    config: Optional[RunConfig] = None,
    **config_overrides,
) -> "PipelineTrace":
    """Produce a :class:`PipelineTrace` analytically (no simulation).

    Accepts the same configuration surface as
    :func:`repro.runtime.executor.run_pipeline`; the trace window
    ``[warmup, duration]`` and the consumer model are honoured so that
    analytic and simulated traces of the same run are comparable
    artifacts.
    """
    return _trace_from(
        _prepare(pipeline, machine, config, config_overrides),
        pipeline, machine,
    )


def analytic_trace_with_diagnostics(
    pipeline: Pipeline,
    machine: Machine,
    config: Optional[RunConfig] = None,
    **config_overrides,
) -> tuple:
    """One analytic run's trace *and* its equilibrium diagnostics.

    The shared setup (validation, granularity auto-tune, node models)
    runs once — this is the entry point for callers that need both,
    like the adaptive backend's accept-or-simulate decision.
    """
    prepared = _prepare(pipeline, machine, config, config_overrides)
    return (
        _trace_from(prepared, pipeline, machine),
        _diagnostics_from(prepared, machine),
    )


def _trace_from(
    prepared: _Prepared, pipeline: Pipeline, machine: Machine
) -> "PipelineTrace":
    """Synthesize the trace artifact from prepared node models."""
    # Imported here: repro.core.trace itself imports the runtime package,
    # so a module-level import would be circular.
    from repro.core.trace import HostInfo, PipelineTrace

    config = prepared.config
    models = prepared.models
    granularity = prepared.granularity
    consumer_step = prepared.consumer_step
    epochs = prepared.epochs

    per_epoch = _epoch_root_elements(pipeline, models)
    total_root = epochs * per_epoch if math.isfinite(per_epoch) else math.inf
    pipe_fill = _fill_latency(models, granularity)

    # Per-cache populate completion, in cumulative root elements: cache
    # ``c`` finishes materializing once the sources below it are
    # exhausted, and their consumption per root element is their visit
    # ratio. On a chain this is the familiar single fill→serve boundary;
    # on a multi-source DAG each branch cache completes at its own root
    # count and flips only *its* subtree to the serve regime while the
    # other branches keep populating. With ``epochs <= 1`` nothing ever
    # serves — the whole run is the fill regime.
    subtrees = _cache_subtrees(models)
    visits = {m.node.name: m.visit for m in models}
    source_records = {
        s.name: sum(f.num_records for f in s.catalog.files)
        for s in pipeline.sources()
    }
    populate_at: Dict[str, float] = {}
    for cache_name, below in subtrees.items():
        if epochs <= 1:
            populate_at[cache_name] = math.inf
            continue
        need = math.inf
        for src, records in source_records.items():
            if src in below and visits.get(src, 0.0) > 0:
                need = min(need, records / visits[src])
        populate_at[cache_name] = need

    # Piecewise regimes over cumulative root elements: phase ``k`` begins
    # when the ``k``-th cache (ordered by completion) starts serving.
    boundaries = sorted(
        {n for n in populate_at.values() if math.isfinite(n) and n > 0}
    )
    phase_starts = [0.0] + boundaries
    phase_rates = []
    for start in phase_starts:
        served = {c for c, n in populate_at.items() if n <= start}
        phase_rates.append(
            _equilibrium_rate(models, machine, consumer_step,
                              serving=False, served_caches=served)
        )
    phase_times = [pipe_fill]
    for k in range(len(boundaries)):
        span = phase_starts[k + 1] - phase_starts[k]
        phase_times.append(
            phase_times[-1] + span / max(phase_rates[k], 1e-12)
        )

    def _root_produced(t: float) -> float:
        """Cumulative root elements by virtual time ``t``."""
        made = 0.0
        for k, rate in enumerate(phase_rates):
            lo = phase_times[k]
            hi = phase_times[k + 1] if k + 1 < len(phase_times) else math.inf
            made += rate * max(0.0, min(t, hi) - lo)
        return min(made, total_root) if math.isfinite(total_root) else made

    def _time_of_root(n: float) -> float:
        """Virtual time at which ``n`` cumulative root elements exist."""
        remaining = n
        t = phase_times[0]
        for k, rate in enumerate(phase_rates):
            lo = phase_starts[k]
            hi = (
                phase_starts[k + 1]
                if k + 1 < len(phase_starts)
                else math.inf
            )
            span = hi - lo
            if remaining <= span or not math.isfinite(span):
                return t + remaining / max(rate, 1e-12)
            remaining -= span
            t = phase_times[k + 1]
        return t

    # End of the run: the configured duration, or stream exhaustion.
    end = config.duration
    if math.isfinite(total_root):
        drain = _time_of_root(total_root)
        if math.isfinite(drain):
            end = min(end, max(drain, pipe_fill))

    warmup = config.warmup
    root_total_end = _root_produced(end)
    root_at_warmup = _root_produced(warmup)
    root_in_window = root_total_end - root_at_warmup
    if root_in_window > 0:
        measured = max(end - warmup, 1e-12)
    else:
        # Drained before warmup ended (or produced nothing): mirror the
        # simulator and measure the whole run.
        measured = max(end, 1e-12)
        root_in_window = root_total_end
        root_at_warmup = 0.0
        warmup = 0.0

    def _windowed(cut: float) -> tuple:
        """(window, total) root elements produced before the ``cut``
        boundary — production under a cache stops once that cache
        completes its populate pass. Sub-populate residues of ~1e-13
        root elements are snapped to the boundary: a residue times a
        serve-side CPU cost would otherwise give the cache node a
        ~1e-19 core-second charge and a finite ~1e20 rate-per-core —
        where the simulator records exactly zero and an infinite rate —
        feeding the LP a coefficient scale that HiGHS rejects outright.
        """
        window = min(root_total_end, cut) - min(root_at_warmup, cut)
        total = min(root_total_end, cut)
        eps = 1e-9 * max(root_in_window, 1.0)
        if root_in_window - window <= eps:
            window = root_in_window
        if root_total_end - total <= eps:
            total = root_total_end
        return window, total

    # The populate boundary governing each node: the earliest-completing
    # cache above it (first-EOS semantics — a cache's input stream ends
    # with its shortest source).
    cut_for: Dict[str, float] = {}
    for cache_name, below in subtrees.items():
        n_c = populate_at[cache_name]
        for name in below:
            cut_for[name] = min(cut_for.get(name, math.inf), n_c)

    stats: Dict[str, NodeStats] = {}
    produced_by_name: Dict[str, float] = {}
    busy_core_seconds = 0.0
    for m in models:
        node = m.node
        cut = cut_for.get(node.name, math.inf)
        fill_window, fill_total = _windowed(cut)
        produced = m.visit * fill_window
        produced_total = m.visit * fill_total
        core = m.core_seconds * produced
        if isinstance(node, CacheNode):
            own_fill, _ = _windowed(populate_at[node.name])
            serve_window = max(0.0, fill_window - own_fill)
            core = (
                m.core_seconds * m.visit * own_fill
                + m.serve_core_seconds * m.visit * serve_window
            )
        st = NodeStats(
            name=node.name,
            kind=node.kind,
            parallelism=node.effective_parallelism,
            sequential=node.sequential,
            udf_internal_parallelism=(
                node.udf.cost.internal_parallelism if node.udf else 1.0
            ),
        )
        st.elements_produced = produced
        st.bytes_produced = produced * m.bytes_per_element
        st.cpu_core_seconds = core
        st.overhead_seconds = produced * m.overhead_seconds
        st.io_seconds = produced * m.io_seconds
        st.bytes_read = produced * m.bytes_read
        if node.inputs:
            # Merge nodes consume from every branch; chains reduce to
            # the single input's production.
            st.elements_consumed = sum(
                produced_by_name.get(c.name, 0.0) for c in node.inputs
            )
        else:
            st.elements_consumed = produced
        if isinstance(node, InterleaveSourceNode):
            # File observations are cumulative over the whole run (the
            # tracer's size estimator wants every file seen, §A); one
            # "observation" is one mean-sized file, so the rescaled
            # estimate recovers the catalog size.
            catalog = node.catalog
            mean_file = catalog.total_bytes / max(catalog.num_files, 1)
            files = produced_total / max(catalog.records_per_file, 1e-12)
            count = int(round(files)) if files > 0 else 0
            if produced_total > 0:
                count = max(count, 1)
            st.files_seen_count = count
            st.files_seen_bytes = count * mean_file
        stats[node.name] = st
        produced_by_name[node.name] = produced
        busy_core_seconds += core

    throughput = root_in_window / measured
    cpu_utilization = busy_core_seconds / (machine.cores * measured)

    return PipelineTrace(
        program=pipeline_to_dict(pipeline),
        stats=stats,
        host=HostInfo.from_machine(machine),
        measured_seconds=measured,
        root_throughput=throughput,
        cpu_utilization=min(1.0, cpu_utilization),
        backend="analytic",
    )
