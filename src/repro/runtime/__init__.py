"""Discrete-event simulated executor for dataset pipelines.

This is the ``tf.data`` runtime substitute: a virtual-clock simulation of
worker threads, bounded inter-stage queues, an FCFS core scheduler with
an oversubscription penalty, and a fair-share disk. It exposes exactly
the per-iterator counters Plumber's tracer reads (§4.1: counts, active
CPU-time, bytes — "less than 144 bytes per Dataset").
"""

from repro.runtime.engine import Compute, Get, Processes, Put, Read, Simulation, Timeout
from repro.runtime.executor import (
    DEFAULT_EVENT_BUDGET,
    BenchmarkConsumer,
    ModelConsumer,
    RunConfig,
    RunResult,
    auto_granularity,
    run_pipeline,
)
from repro.runtime.stats import NodeStats, StatsBoard

# Backends import core.trace (which imports the executor above), so they
# must come after the executor to keep package initialization acyclic.
from repro.runtime.adaptive import AdaptiveBackend, AdaptiveDecision
from repro.runtime.analytic import (
    EquilibriumDiagnostics,
    analytic_trace,
    equilibrium_diagnostics,
)
from repro.runtime.backends import (
    AnalyticBackend,
    SimulateBackend,
    TraceBackend,
    available_backends,
    register_backend,
    resolve_backend,
)

__all__ = [
    "AdaptiveBackend",
    "AdaptiveDecision",
    "AnalyticBackend",
    "EquilibriumDiagnostics",
    "BenchmarkConsumer",
    "Compute",
    "DEFAULT_EVENT_BUDGET",
    "Get",
    "ModelConsumer",
    "NodeStats",
    "Processes",
    "Put",
    "Read",
    "RunConfig",
    "RunResult",
    "SimulateBackend",
    "Simulation",
    "StatsBoard",
    "Timeout",
    "TraceBackend",
    "analytic_trace",
    "auto_granularity",
    "available_backends",
    "equilibrium_diagnostics",
    "register_backend",
    "resolve_backend",
    "run_pipeline",
]
