"""Discrete-event simulated executor for dataset pipelines.

This is the ``tf.data`` runtime substitute: a virtual-clock simulation of
worker threads, bounded inter-stage queues, an FCFS core scheduler with
an oversubscription penalty, and a fair-share disk. It exposes exactly
the per-iterator counters Plumber's tracer reads (§4.1: counts, active
CPU-time, bytes — "less than 144 bytes per Dataset").
"""

from repro.runtime.engine import Compute, Get, Processes, Put, Read, Simulation, Timeout
from repro.runtime.executor import (
    BenchmarkConsumer,
    ModelConsumer,
    RunConfig,
    RunResult,
    run_pipeline,
)
from repro.runtime.stats import NodeStats, StatsBoard

__all__ = [
    "BenchmarkConsumer",
    "Compute",
    "Get",
    "ModelConsumer",
    "NodeStats",
    "Processes",
    "Put",
    "Read",
    "RunConfig",
    "RunResult",
    "Simulation",
    "StatsBoard",
    "Timeout",
    "run_pipeline",
]
