"""Worker generators implementing each dataset operator.

Elements flow between stages as :class:`Item` chunks carrying a float
``count`` (elements, in the producing node's own units — minibatches
after a batch node) and total ``nbytes``. Chunking (the ``granularity``
knob) trades simulation event count for timing resolution without
changing any rate: all costs, overheads, and counters scale with
``count``.

Every worker follows the same shape per chunk:

1. ``Get`` from the input queue (blocked time = upstream starvation),
2. pay framework overhead (``Timeout`` — occupies the worker thread but
   no core, and is invisible to CPU-time tracing; see Fig. 9 / §C.3),
3. pay CPU cost (``Compute`` — occupies cores, visible to tracing),
4. ``Put`` downstream (blocked time = downstream backpressure).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    FilterNode,
    InterleaveDatasetsNode,
    InterleaveSourceNode,
    MapNode,
    PrefetchNode,
    RepeatNode,
    ShuffleNode,
    TakeNode,
    ZipNode,
)
from repro.runtime.engine import (
    EOS,
    Compute,
    Get,
    Put,
    Read,
    SimQueue,
    SimulationError,
    Timeout,
)
from repro.runtime.stats import NodeStats


@dataclass(frozen=True)
class Item:
    """A chunk of ``count`` elements totalling ``nbytes`` bytes."""

    count: float
    nbytes: float

    @property
    def bytes_per_element(self) -> float:
        """Mean element size within the chunk."""
        return self.nbytes / self.count if self.count > 0 else 0.0


class ExecContext:
    """Per-run constants shared by all workers."""

    def __init__(
        self,
        sim,
        machine,
        penalty: float,
        overhead_per_element: float,
        memory_limit_bytes: float,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.penalty = penalty
        self.overhead_per_element = overhead_per_element
        self.memory_limit_bytes = memory_limit_bytes
        self.cache_bytes: dict = {}

    def cpu_cost(self, reference_seconds: float) -> float:
        """Reference-core seconds scaled to this machine's core speed."""
        return reference_seconds / self.machine.core_speed


class StageState:
    """Shared bookkeeping for one stage's worker pool: closes the output
    queue when the last worker finishes."""

    def __init__(self, out_q: SimQueue, workers: int) -> None:
        self.out_q = out_q
        self.live = workers

    def worker_done(self) -> None:
        self.live -= 1
        if self.live == 0:
            self.out_q.close()


class FileCursor:
    """Shared file iterator for interleave source workers.

    Hands out files round-robin across ``epochs`` passes (``inf`` for an
    unbounded repeat).
    """

    def __init__(self, files, epochs: float) -> None:
        self.files = list(files)
        self.epochs = epochs
        self._index = 0
        self._epoch = 0

    def next_file(self):
        """The next file to read, or ``None`` when all epochs are done."""
        if not self.files:
            return None
        if self._index >= len(self.files):
            self._index = 0
            self._epoch += 1
        if self._epoch >= self.epochs:
            return None
        f = self.files[self._index]
        self._index += 1
        return f


# ----------------------------------------------------------------------
# Worker generators.
# ----------------------------------------------------------------------
def _overhead(ctx: ExecContext, stats: NodeStats, count: float):
    """Yield the framework-overhead timeout for ``count`` elements."""
    o = ctx.overhead_per_element * count
    if o > 0:
        stats.on_overhead(o)
        return Timeout(o)
    return None


#: buffered readers fetch at least this much per storage request, so
#: per-request latency is amortized for tiny-record (text) datasets
READ_BLOCK_BYTES = 1e6


def source_worker(
    node: InterleaveSourceNode,
    cursor: FileCursor,
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
    granularity: int,
) -> Generator:
    """One interleave stream: block-buffered reads, chunked record emit."""
    try:
        while True:
            f = cursor.next_file()
            if f is None:
                return
            # File size is known at open (a filesystem stat), which is
            # how Plumber's tracer sees "bytes read until end of file".
            stats.on_file_done(f.size_bytes)
            remaining = f.num_records
            per_record = f.bytes_per_record
            unread = f.size_bytes
            buffered = 0.0
            while remaining > 0:
                n = min(granularity, remaining)
                remaining -= n
                nbytes = n * per_record
                if buffered < nbytes and unread > 0:
                    block = min(max(nbytes, READ_BLOCK_BYTES), unread)
                    t_read = ctx.sim.now
                    yield Read(block)
                    stats.on_io(ctx.sim.now - t_read)
                    stats.on_read(block)
                    unread -= block
                    buffered += block
                buffered -= nbytes
                req = _overhead(ctx, stats, n)
                if req is not None:
                    yield req
                if node.read_cpu_seconds_per_record > 0:
                    svc = ctx.cpu_cost(node.read_cpu_seconds_per_record * n)
                    yield Compute(svc)
                    stats.on_cpu(svc * ctx.penalty)
                stats.on_consume(n)
                item = Item(count=float(n), nbytes=nbytes)
                yield Put(out_q, item)
                stats.on_produce(item.count, item.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def map_worker(
    node: MapNode,
    in_q: SimQueue,
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
) -> Generator:
    """Apply a UDF chunk-wise: cost, size, and count transforms."""
    udf = node.udf
    width = udf.cost.internal_parallelism
    try:
        while True:
            item = yield Get(in_q)
            if item is EOS:
                return
            stats.on_consume(item.count)
            req = _overhead(ctx, stats, item.count)
            if req is not None:
                yield req
            if udf.cost.cpu_seconds > 0:
                svc = ctx.cpu_cost(udf.cost.cpu_seconds * item.count)
                yield Compute(svc, width=width)
                stats.on_cpu(svc * width * ctx.penalty)
            out_count = item.count * udf.examples_ratio
            out_bytes = udf.output_size(item.bytes_per_element) * out_count
            if out_count > 0:
                out = Item(count=out_count, nbytes=out_bytes)
                yield Put(out_q, out)
                stats.on_produce(out.count, out.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def filter_worker(
    node: FilterNode,
    in_q: SimQueue,
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
) -> Generator:
    """Sequential predicate: pays CPU on every input, keeps a fraction."""
    udf = node.udf
    try:
        while True:
            item = yield Get(in_q)
            if item is EOS:
                return
            stats.on_consume(item.count)
            req = _overhead(ctx, stats, item.count)
            if req is not None:
                yield req
            if udf.cost.cpu_seconds > 0:
                svc = ctx.cpu_cost(udf.cost.cpu_seconds * item.count)
                yield Compute(svc)
                stats.on_cpu(svc * ctx.penalty)
            out_count = item.count * node.keep_fraction
            out_bytes = item.nbytes * node.keep_fraction
            if out_count > 0:
                out = Item(count=out_count, nbytes=out_bytes)
                yield Put(out_q, out)
                stats.on_produce(out.count, out.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def batch_worker(
    node: BatchNode,
    in_q: SimQueue,
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
) -> Generator:
    """Grouping: converts counts into minibatch units (count / B)."""
    batch = node.batch_size
    try:
        while True:
            item = yield Get(in_q)
            if item is EOS:
                return
            stats.on_consume(item.count)
            # Overhead is paid per *output* element (one Next per batch).
            out_count = item.count / batch
            req = _overhead(ctx, stats, out_count)
            if req is not None:
                yield req
            if node.cpu_seconds_per_example > 0:
                svc = ctx.cpu_cost(node.cpu_seconds_per_example * item.count)
                yield Compute(svc)
                stats.on_cpu(svc * ctx.penalty)
            out = Item(count=out_count, nbytes=item.nbytes)
            yield Put(out_q, out)
            stats.on_produce(out.count, out.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def shuffle_worker(
    node: ShuffleNode,
    in_q: SimQueue,
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
) -> Generator:
    """Buffered shuffle: throughput-wise a sequential pass-through with a
    per-element CPU cost (order is irrelevant to the simulation)."""
    try:
        while True:
            item = yield Get(in_q)
            if item is EOS:
                return
            stats.on_consume(item.count)
            req = _overhead(ctx, stats, item.count)
            if req is not None:
                yield req
            if node.cpu_seconds_per_element > 0:
                svc = ctx.cpu_cost(node.cpu_seconds_per_element * item.count)
                yield Compute(svc)
                stats.on_cpu(svc * ctx.penalty)
            yield Put(out_q, item)
            stats.on_produce(item.count, item.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def passthrough_worker(
    node: DatasetNode,
    in_q: SimQueue,
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
) -> Generator:
    """Repeat / prefetch: forwards chunks, paying only overhead."""
    try:
        while True:
            item = yield Get(in_q)
            if item is EOS:
                return
            stats.on_consume(item.count)
            req = _overhead(ctx, stats, item.count)
            if req is not None:
                yield req
            yield Put(out_q, item)
            stats.on_produce(item.count, item.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def take_worker(
    node: TakeNode,
    in_q: SimQueue,
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
) -> Generator:
    """Forward until ``count`` elements have been emitted, then end the
    stream early (splitting the final chunk if needed)."""
    remaining = float(node.count)
    try:
        while remaining > 0:
            item = yield Get(in_q)
            if item is EOS:
                return
            stats.on_consume(item.count)
            emit = min(item.count, remaining)
            remaining -= emit
            req = _overhead(ctx, stats, emit)
            if req is not None:
                yield req
            frac = emit / item.count if item.count > 0 else 0.0
            out = Item(count=emit, nbytes=item.nbytes * frac)
            yield Put(out_q, out)
            stats.on_produce(out.count, out.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def cache_worker(
    node: CacheNode,
    in_q: SimQueue,
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
    serve_epochs: float,
) -> Generator:
    """Materialize the first pass, then serve ``serve_epochs`` more passes
    from memory (``inf`` under an unbounded repeat).

    Raises :class:`SimulationError` if materialization exceeds the host
    memory limit — the failure Plumber's planner exists to avoid.
    """
    stored: List[Item] = []
    stored_bytes = 0.0
    try:
        # Populate pass: forward while recording.
        while True:
            item = yield Get(in_q)
            if item is EOS:
                break
            stats.on_consume(item.count)
            stored.append(item)
            stored_bytes += item.nbytes
            ctx.cache_bytes[node.name] = stored_bytes
            if stored_bytes > ctx.memory_limit_bytes:
                raise SimulationError(
                    f"cache {node.name!r} exceeded memory limit: "
                    f"{stored_bytes / 1e9:.1f} GB > "
                    f"{ctx.memory_limit_bytes / 1e9:.1f} GB"
                )
            req = _overhead(ctx, stats, item.count)
            if req is not None:
                yield req
            yield Put(out_q, item)
            stats.on_produce(item.count, item.nbytes, ctx.sim.now)
        # Serve passes: replay from memory at memory-copy cost.
        epoch = 0.0
        while epoch < serve_epochs and stored:
            epoch += 1.0
            for item in stored:
                req = _overhead(ctx, stats, item.count)
                if req is not None:
                    yield req
                if node.read_cpu_seconds_per_element > 0:
                    svc = ctx.cpu_cost(
                        node.read_cpu_seconds_per_element * item.count
                    )
                    yield Compute(svc)
                    stats.on_cpu(svc * ctx.penalty)
                yield Put(out_q, item)
                stats.on_produce(item.count, item.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def zip_worker(
    node: ZipNode,
    in_qs: List[SimQueue],
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
) -> Generator:
    """Lockstep merge: buffer each input, emit min-across-branches.

    Chunks from different branches rarely align, so per-input carry
    buffers track leftover counts/bytes; each emitted chunk pairs
    ``emit`` elements from *every* branch (output bytes = sum of the
    branches' proportional shares). The stream ends the moment any
    input is exhausted — leftover elements on longer branches are
    dropped, exactly tf.data's zip truncation.
    """
    k = len(in_qs)
    buf_count = [0.0] * k
    buf_bytes = [0.0] * k
    try:
        while True:
            # Refill every drained branch; first EOS ends the stream.
            for i in range(k):
                while buf_count[i] <= 0:
                    item = yield Get(in_qs[i])
                    if item is EOS:
                        return
                    stats.on_consume(item.count)
                    buf_count[i] += item.count
                    buf_bytes[i] += item.nbytes
            emit = min(buf_count)
            out_bytes = 0.0
            for i in range(k):
                share = emit / buf_count[i]
                out_bytes += buf_bytes[i] * share
                buf_bytes[i] -= buf_bytes[i] * share
                buf_count[i] -= emit
            req = _overhead(ctx, stats, emit)
            if req is not None:
                yield req
            if node.cpu_seconds_per_element > 0:
                svc = ctx.cpu_cost(node.cpu_seconds_per_element * emit)
                yield Compute(svc)
                stats.on_cpu(svc * ctx.penalty)
            out = Item(count=emit, nbytes=out_bytes)
            yield Put(out_q, out)
            stats.on_produce(out.count, out.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def interleave_worker(
    node: InterleaveDatasetsNode,
    in_qs: List[SimQueue],
    out_q: SimQueue,
    state: StageState,
    ctx: ExecContext,
    stats: NodeStats,
) -> Generator:
    """Weighted round-robin mix: forward whole chunks, branch picked by
    smooth weighted scheduling (least served-per-weight first), so the
    emitted mix tracks the declared weights at chunk granularity. The
    stream ends when the first branch is exhausted, keeping the mix
    exact for the whole run."""
    k = len(in_qs)
    served = [0.0] * k
    try:
        while True:
            best = min(range(k), key=lambda i: served[i] / node.weights[i])
            item = yield Get(in_qs[best])
            if item is EOS:
                return
            stats.on_consume(item.count)
            served[best] += item.count
            req = _overhead(ctx, stats, item.count)
            if req is not None:
                yield req
            if node.cpu_seconds_per_element > 0:
                svc = ctx.cpu_cost(node.cpu_seconds_per_element * item.count)
                yield Compute(svc)
                stats.on_cpu(svc * ctx.penalty)
            yield Put(out_q, item)
            stats.on_produce(item.count, item.nbytes, ctx.sim.now)
    finally:
        state.worker_done()


def build_stage(
    node: DatasetNode,
    in_qs: Optional[List[SimQueue]],
    out_q: SimQueue,
    ctx: ExecContext,
    stats: NodeStats,
    *,
    cursor: Optional[FileCursor] = None,
    granularity: int = 1,
    serve_epochs: float = 0.0,
) -> List[Generator]:
    """Instantiate the worker generators for ``node``.

    ``in_qs`` carries one input queue per graph edge, in ``node.inputs``
    order (``None`` for sources); single-input workers read from
    ``in_qs[0]``.
    """
    if isinstance(node, InterleaveSourceNode):
        workers = node.effective_parallelism
        state = StageState(out_q, workers)
        assert cursor is not None
        return [
            source_worker(node, cursor, out_q, state, ctx, stats, granularity)
            for _ in range(workers)
        ]
    assert in_qs is not None
    if isinstance(node, ZipNode):
        state = StageState(out_q, 1)
        return [zip_worker(node, list(in_qs), out_q, state, ctx, stats)]
    if isinstance(node, InterleaveDatasetsNode):
        state = StageState(out_q, 1)
        return [interleave_worker(node, list(in_qs), out_q, state, ctx, stats)]
    in_q = in_qs[0]
    if isinstance(node, MapNode):
        workers = node.effective_parallelism
        state = StageState(out_q, workers)
        return [
            map_worker(node, in_q, out_q, state, ctx, stats)
            for _ in range(workers)
        ]
    if isinstance(node, BatchNode):
        workers = node.effective_parallelism
        state = StageState(out_q, workers)
        return [
            batch_worker(node, in_q, out_q, state, ctx, stats)
            for _ in range(workers)
        ]
    if isinstance(node, FilterNode):
        state = StageState(out_q, 1)
        return [filter_worker(node, in_q, out_q, state, ctx, stats)]
    if isinstance(node, ShuffleNode):  # includes ShuffleAndRepeatNode
        state = StageState(out_q, 1)
        return [shuffle_worker(node, in_q, out_q, state, ctx, stats)]
    if isinstance(node, TakeNode):
        state = StageState(out_q, 1)
        return [take_worker(node, in_q, out_q, state, ctx, stats)]
    if isinstance(node, CacheNode):
        state = StageState(out_q, 1)
        return [
            cache_worker(node, in_q, out_q, state, ctx, stats, serve_epochs)
        ]
    if isinstance(node, (RepeatNode, PrefetchNode)):
        state = StageState(out_q, 1)
        return [passthrough_worker(node, in_q, out_q, state, ctx, stats)]
    raise TypeError(f"no runtime implementation for node kind {node.kind!r}")


def expected_elements_per_chunk(pipeline, node_name: str, granularity: int) -> float:
    """Expected chunk ``count`` at a node's output, from structural
    ratios — used to size prefetch buffers given in elements."""
    order = pipeline.topological_order()
    ratios = {}
    for node in order:
        if isinstance(node, InterleaveSourceNode):
            ratios[node.name] = float(granularity)
        elif isinstance(node, ZipNode):
            # Emitted chunks are min-across-branches of the buffers.
            ratios[node.name] = min(ratios[c.name] for c in node.inputs)
        elif isinstance(node, InterleaveDatasetsNode):
            # Whole chunks are forwarded; expect the weighted mean size.
            ratios[node.name] = sum(
                w * ratios[c.name]
                for w, c in zip(node.weights, node.inputs)
            )
        else:
            child = ratios[node.inputs[0].name]
            ratios[node.name] = child * node.elements_ratio()
        if node.name == node_name:
            return max(ratios[node.name], 1e-12)
    raise KeyError(f"node {node_name!r} not in pipeline")
