"""Pluggable trace backends.

A *trace backend* turns ``(pipeline, machine, config)`` into a
:class:`~repro.core.trace.PipelineTrace`. Everything downstream of a
trace — :func:`repro.core.rates.build_model`, the LP, the planners, the
batch service — is backend-agnostic, which is the point: the trace file
format is the interface (§4.1), and how the counters were acquired is a
quality/latency tradeoff the caller picks per job:

* ``"simulate"`` — the discrete-event simulator
  (:func:`repro.runtime.executor.run_pipeline`). Highest fidelity;
  wallclock scales with the pipeline's element rate.
* ``"analytic"`` — the closed-form steady-state model
  (:func:`repro.runtime.analytic.analytic_trace`). O(nodes) per trace
  regardless of element rate; exact for steady-state rate accounting,
  approximate for queueing transients.
* ``"adaptive"`` — a *policy* backend
  (:class:`repro.runtime.adaptive.AdaptiveBackend`): analytic first,
  discrete-event simulation when the analytic bottleneck attribution is
  ambiguous or degenerate. Each emitted trace records which underlying
  backend produced it.

``resolve_backend`` accepts a name or any object implementing the
:class:`TraceBackend` protocol, and :func:`register_backend` adds new
named backends, so callers can inject custom acquisition methods (e.g.
replaying recorded traces) without touching this module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Protocol, Union, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.trace import PipelineTrace

import dataclasses
import time

from repro.graph.datasets import Pipeline
from repro.host.machine import Machine
from repro.obs import global_registry
from repro.runtime.adaptive import AdaptiveBackend
from repro.runtime.analytic import analytic_trace
from repro.runtime.executor import RunConfig, run_pipeline


def record_trace_wallclock(backend_name: str, seconds: float) -> None:
    """Account one trace acquisition in the process-global registry.

    Every backend (including custom registered ones that opt in) funnels
    through here so ``repro_trace_seconds{backend=...}`` is comparable
    across acquisition methods — the simulate-vs-analytic wallclock gap
    the ROADMAP tracks becomes a quantile read instead of a benchmark
    run.
    """
    registry = global_registry()
    registry.counter(
        "repro_trace_total", "Traces acquired, by backend",
    ).labels(backend=backend_name).inc()
    registry.histogram(
        "repro_trace_seconds", "Trace acquisition wallclock, by backend",
    ).labels(backend=backend_name).observe(seconds)


@runtime_checkable
class TraceBackend(Protocol):
    """Anything that can acquire a trace for ``(pipeline, machine)``."""

    name: str

    def trace(
        self, pipeline: Pipeline, machine: Machine, config: RunConfig
    ) -> PipelineTrace:
        """Produce a trace for one run configuration."""
        ...  # pragma: no cover - protocol body


class SimulateBackend:
    """Discrete-event simulation (the original tracer).

    ``engine`` pins every trace this backend acquires to one simulation
    engine (``"vectorized"``/``"reference"``) regardless of what the
    :class:`RunConfig` asks for; ``None`` (the default instance) honors
    the config. Both engines emit byte-identical traces — the pinned
    variants exist so audits can force the scalar path end-to-end, e.g.
    ``register_backend(SimulateBackend(engine="reference"))``.
    """

    name = "simulate"

    def __init__(self, engine: Union[str, None] = None) -> None:
        self.engine = engine
        if engine is not None:
            self.name = f"simulate-{engine}"

    def trace(
        self, pipeline: Pipeline, machine: Machine, config: RunConfig
    ) -> PipelineTrace:
        from repro.core.trace import PipelineTrace

        if self.engine is not None and config.engine != self.engine:
            config = dataclasses.replace(config, engine=self.engine)
        start = time.monotonic()
        result = run_pipeline(pipeline, machine, config)
        record_trace_wallclock(self.name, time.monotonic() - start)
        return PipelineTrace.from_run(result)


class AnalyticBackend:
    """Closed-form steady-state counters (the fast path)."""

    name = "analytic"

    def trace(
        self, pipeline: Pipeline, machine: Machine, config: RunConfig
    ) -> PipelineTrace:
        start = time.monotonic()
        trace = analytic_trace(pipeline, machine, config)
        record_trace_wallclock(self.name, time.monotonic() - start)
        return trace


_BACKENDS: Dict[str, TraceBackend] = {
    "simulate": SimulateBackend(),
    "analytic": AnalyticBackend(),
    "adaptive": AdaptiveBackend(),
}

#: the spec types ``resolve_backend`` accepts
BackendSpec = Union[str, TraceBackend, None]


def available_backends() -> tuple:
    """Registered backend names."""
    return tuple(sorted(_BACKENDS))


def register_backend(backend: TraceBackend, replace: bool = False) -> None:
    """Register a backend under its ``name`` for lookup by string.

    Named registration is what lets a backend travel to worker
    processes in the batch service's serialized job payloads.
    Re-registering an existing name raises unless ``replace=True``.
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise TypeError(
            "a trace backend must expose a non-empty string `name`"
        )
    if not isinstance(backend, TraceBackend):
        raise TypeError(f"backend {name!r} must implement trace(...)")
    if name in _BACKENDS and not replace:
        raise ValueError(
            f"trace backend {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _BACKENDS[name] = backend


def resolve_backend(spec: BackendSpec) -> TraceBackend:
    """Turn a backend name (or backend object, or ``None``) into a
    :class:`TraceBackend`. ``None`` means the default simulator."""
    if spec is None:
        return _BACKENDS["simulate"]
    if isinstance(spec, str):
        try:
            return _BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown trace backend {spec!r}; "
                f"available: {list(available_backends())}"
            ) from None
    if isinstance(spec, TraceBackend):
        return spec
    raise TypeError(
        f"backend must be a name or TraceBackend, got {type(spec).__name__}"
    )
