"""The discrete-event simulation core.

Processes are Python generators that ``yield`` request objects:

* :class:`Timeout` — advance the virtual clock for this process,
* :class:`Compute` — occupy CPU cores via the core scheduler,
* :class:`Read` — pull bytes through the fair-share disk server,
* :class:`Put` / :class:`Get` — blocking bounded-queue operations.

The engine is single-threaded and deterministic: events at equal times
are ordered by insertion sequence. ``Get`` returns either an item or the
:data:`EOS` sentinel once the queue is closed and drained — that is the
end-of-stream protocol between pipeline stages.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Generator, List, Optional


class SimulationError(RuntimeError):
    """Raised for engine protocol violations (put-after-close, etc.)."""


class _EndOfStream:
    """Singleton sentinel signalling a closed, drained queue."""

    _instance: Optional["_EndOfStream"] = None

    def __new__(cls) -> "_EndOfStream":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "EOS"


#: End-of-stream sentinel returned by ``Get`` on a closed, empty queue.
EOS = _EndOfStream()


# ----------------------------------------------------------------------
# Request objects yielded by processes.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Timeout:
    """Sleep for ``delay`` virtual seconds (does not occupy a core)."""

    delay: float


@dataclass(frozen=True)
class Compute:
    """Occupy ``width`` cores for ``seconds`` of service time."""

    seconds: float
    width: float = 1.0


@dataclass(frozen=True)
class Read:
    """Read ``nbytes`` through the disk server."""

    nbytes: float


@dataclass(frozen=True)
class Put:
    """Put ``item`` into ``queue``, blocking while full."""

    queue: "SimQueue"
    item: Any


@dataclass(frozen=True)
class Get:
    """Take one item from ``queue``, blocking while empty.

    Resumes with the item, or :data:`EOS` if the queue is closed and
    drained.
    """

    queue: "SimQueue"


class Process:
    """A running generator inside the simulation."""

    __slots__ = ("sim", "gen", "name", "finished")

    def __init__(self, sim: "Simulation", gen: Generator, name: str) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False

    def resume(self, value: Any = None) -> None:
        """Advance the generator with ``value`` and dispatch its next
        request. Called only by the engine."""
        try:
            request = self.gen.send(value)
        except StopIteration:
            self.finished = True
            return
        self.sim._dispatch(self, request)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.finished else "live"
        return f"Process({self.name!r}, {state})"


class Simulation:
    """Event loop with a virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List = []
        #: same-timestamp resumes, drained FIFO without touching the heap
        self._ready: Deque = deque()
        self._seq = 0
        self._handlers = {
            Timeout: self._handle_timeout,
            Put: self._handle_put,
            Get: self._handle_get,
        }
        #: set by the executor; handles Compute requests
        self.cores: Optional["CoreScheduler"] = None
        #: set by the executor; handles Read requests
        self.disk: Optional[Any] = None
        #: telemetry, updated once per ``run()``: total callbacks fired
        #: and the deepest the same-timestamp ready deque ever got
        self.events_processed = 0
        self.peak_ready_depth = 0

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` virtual seconds.

        Zero-delay events — the overwhelming majority (every queue
        handoff and core grant resumes a process "now") — bypass the
        heap entirely and join a FIFO ready list. Ordering stays
        identical to the all-heap implementation: a heap entry due at
        the current timestamp was necessarily pushed *before* the clock
        reached it, so it precedes every ready entry created *at* the
        timestamp, and the FIFO preserves insertion order among ready
        entries themselves.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if delay == 0.0:
            self._ready.append((callback, args))
            return
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, args))

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a new process and start it at the current time."""
        proc = Process(self, gen, name)
        self.schedule(0.0, proc.resume, None)
        return proc

    def run(self, until: float) -> float:
        """Run events until the clock reaches ``until`` or the event heap
        drains (e.g. a single-epoch pipeline finished early). Returns the
        final clock value.

        The loop is the simulator's hottest path (batch optimization runs
        millions of events per trace). Two structural optimizations:

        * **batched resume scheduling** — all processes ready at the
          current timestamp live in a FIFO deque and are drained in one
          pass, so the common put→get→resume chains never pay
          ``heappush``/``heappop``;
        * timed entries are popped exactly once — an entry beyond
          ``until`` is pushed back rather than peeked-then-popped.

        Event ordering is deterministic and identical to a pure-heap
        loop: timed entries due at the current instant run first (they
        carry earlier insertion sequence numbers by construction), then
        ready entries in insertion order. A ready callback can only
        append to the ready deque or schedule strictly-future heap
        entries, so the drain terminates per timestamp.
        """
        heap = self._heap
        ready = self._ready
        pop = heapq.heappop
        # Telemetry stays in locals inside the hot loop (one add / one
        # compare per event) and is flushed to the instance on exit.
        events = 0
        peak_ready = self.peak_ready_depth
        try:
            while heap or ready:
                # Timed events due exactly now (scheduled before the clock
                # reached this instant) precede any same-timestamp resume.
                while heap and heap[0][0] <= self.now:
                    entry = pop(heap)
                    events += 1
                    entry[2](*entry[3])
                if ready:
                    depth = len(ready)
                    if depth > peak_ready:
                        peak_ready = depth
                    callback, args = ready.popleft()
                    events += 1
                    callback(*args)
                    continue
                if not heap:
                    break
                time = heap[0][0]
                if time > until:
                    self.now = until
                    return self.now
                self.now = time
                entry = pop(heap)
                events += 1
                entry[2](*entry[3])
            return self.now
        finally:
            self.events_processed += events
            self.peak_ready_depth = peak_ready

    # ------------------------------------------------------------------
    def _dispatch(self, proc: Process, request: Any) -> None:
        handler = self._handlers.get(type(request))
        if handler is not None:
            handler(proc, request)
        elif isinstance(request, Compute):
            if self.cores is None:
                raise SimulationError("Compute yielded but no CoreScheduler set")
            self.cores.submit(proc, request.seconds, request.width)
        elif isinstance(request, Read):
            if self.disk is None:
                raise SimulationError("Read yielded but no disk server set")
            self.disk.submit(proc, request.nbytes)
        else:
            raise SimulationError(f"unknown request {request!r} from {proc!r}")

    def _handle_timeout(self, proc: Process, request: Timeout) -> None:
        self.schedule(request.delay, proc.resume, None)

    def _handle_put(self, proc: Process, request: Put) -> None:
        request.queue._put(proc, request.item)

    def _handle_get(self, proc: Process, request: Get) -> None:
        request.queue._get(proc)


class SimQueue:
    """Bounded FIFO queue with blocking put/get and a close protocol.

    Closing wakes all blocked getters with :data:`EOS`, and wakes blocked
    *putters* by resuming their ``Put`` with :data:`EOS` (the pending item
    is discarded — the stream has ended, so nothing will consume it); once
    closed and drained, every ``Get`` resumes immediately with
    :data:`EOS`.
    """

    __slots__ = (
        "sim", "capacity", "name", "items", "_putters", "_getters",
        "closed", "_occ_integral", "_occ_last_t", "_created_t",
        "total_puts", "total_gets", "peak_occupancy",
    )

    def __init__(self, sim: Simulation, capacity: int, name: str = "queue") -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._putters: Deque = deque()  # (proc, item)
        self._getters: Deque[Process] = deque()
        self.closed = False
        # Telemetry for the prefetch planner and the batch service's
        # queue report: time-integrated occupancy plus cheap counters.
        self._occ_integral = 0.0
        self._occ_last_t = sim.now
        self._created_t = sim.now
        self.total_puts = 0
        self.total_gets = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    def _track(self) -> None:
        now = self.sim.now
        last = self._occ_last_t
        if now == last:  # bursts at one timestamp dominate; skip the math
            return
        self._occ_integral += len(self.items) * (now - last)
        self._occ_last_t = now

    def mean_occupancy(self) -> float:
        """Time-averaged queue length since the queue was created.

        The occupancy integral is divided by *elapsed* time
        (``now - created``), not the absolute clock — a queue created
        mid-run would otherwise under-report occupancy to the prefetch
        planner.

        ``_track`` folds the window up to the current clock into the
        integral first, so a ``run(until=)`` that stops mid-window (the
        engine advances the clock to ``until`` before returning) yields
        the same answer as one stopping on an event boundary at the
        same instant.
        """
        self._track()
        elapsed = self.sim.now - self._created_t
        if elapsed <= 0:
            return 0.0
        return self._occ_integral / elapsed

    # ------------------------------------------------------------------
    def _put(self, proc: Process, item: Any) -> None:
        if self.closed:
            raise SimulationError(f"put on closed queue {self.name!r}")
        self._track()
        self.total_puts += 1
        if self._getters:
            getter = self._getters.popleft()
            self.sim.schedule(0.0, getter.resume, item)
            self.sim.schedule(0.0, proc.resume, None)
        elif len(self.items) < self.capacity:
            self.items.append(item)
            if len(self.items) > self.peak_occupancy:
                self.peak_occupancy = len(self.items)
            self.sim.schedule(0.0, proc.resume, None)
        else:
            self._putters.append((proc, item))

    def _get(self, proc: Process) -> None:
        self._track()
        self.total_gets += 1
        if self.items:
            item = self.items.popleft()
            if self._putters:
                putter, pending = self._putters.popleft()
                self.items.append(pending)
                self.sim.schedule(0.0, putter.resume, None)
            self.sim.schedule(0.0, proc.resume, item)
        elif self._putters:
            # capacity reached with direct handoff pending
            putter, pending = self._putters.popleft()
            self.sim.schedule(0.0, putter.resume, None)
            self.sim.schedule(0.0, proc.resume, pending)
        elif self.closed:
            self.sim.schedule(0.0, proc.resume, EOS)
        else:
            self._getters.append(proc)

    def close(self) -> None:
        """Mark the stream ended; wake blocked getters *and putters*.

        Getters resume with :data:`EOS` as usual. A producer parked in
        ``_putters`` when the queue closes must not be leaked: it is
        resumed with :data:`EOS` (instead of the usual ``None``) so it can
        observe the closure, and its pending item is discarded. A producer
        that ignores the sentinel and puts again hits the explicit
        put-after-close :class:`SimulationError` rather than hanging.
        """
        if self.closed:
            return
        self.closed = True
        while self._getters:
            getter = self._getters.popleft()
            self.sim.schedule(0.0, getter.resume, EOS)
        while self._putters:
            putter, _pending = self._putters.popleft()
            self.sim.schedule(0.0, putter.resume, EOS)

    def __len__(self) -> int:
        return len(self.items)


class CoreScheduler:
    """FCFS core allocation with an oversubscription penalty.

    A :class:`Compute` request of width ``w`` (UDF-internal threads)
    waits for ``w`` free cores, then holds them for the service time
    inflated by the static oversubscription factor — the mechanism behind
    the paper's RCNN over-allocation cliff (Obs. 5).
    """

    __slots__ = (
        "sim", "capacity", "free", "_waiting", "penalty",
        "_busy_integral", "_busy_last_t", "_created_t",
    )

    def __init__(
        self,
        sim: Simulation,
        capacity: float,
        oversubscription_penalty: float = 0.0,
        total_threads: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"core capacity must be > 0, got {capacity}")
        self.sim = sim
        self.capacity = float(capacity)
        self.free = float(capacity)
        self._waiting: Deque = deque()  # (proc, seconds, width)
        self.penalty = self._penalty_factor(oversubscription_penalty, total_threads)
        # Telemetry: integral of busy cores over time (CPU utilization).
        self._busy_integral = 0.0
        self._busy_last_t = sim.now
        self._created_t = sim.now

    def _penalty_factor(self, slope: float, threads: float) -> float:
        if threads <= self.capacity or slope <= 0:
            return 1.0
        return 1.0 + slope * (threads / self.capacity - 1.0)

    def _track(self) -> None:
        now = self.sim.now
        last = self._busy_last_t
        if now == last:
            return
        self._busy_integral += (self.capacity - self.free) * (now - last)
        self._busy_last_t = now

    def utilization(self, duration: Optional[float] = None) -> float:
        """Mean fraction of cores busy over ``duration``.

        With ``duration=None`` the busy integral is divided by elapsed
        time since the scheduler was created (``sim.now - created``) —
        the same convention :meth:`SimQueue.mean_occupancy` uses, so the
        two telemetry surfaces agree whether ``run(until=)`` stopped at
        an event boundary or mid-window (``run`` advances the clock to
        ``until`` on a mid-window stop, and ``_track`` folds the partial
        window into the integral at the current busy level).

        Passing an explicit ``duration`` keeps the historical behavior
        of normalizing against a caller-chosen window (the executor
        passes the run's final clock value).
        """
        self._track()
        if duration is None:
            duration = self.sim.now - self._created_t
        if duration <= 0:
            return 0.0
        return self._busy_integral / (self.capacity * duration)

    # ------------------------------------------------------------------
    def submit(self, proc: Process, seconds: float, width: float) -> None:
        width = min(width, self.capacity)
        if seconds < 0:
            raise SimulationError(f"negative compute time {seconds}")
        if seconds == 0:
            self.sim.schedule(0.0, proc.resume, None)
            return
        if self.free >= width and not self._waiting:
            self._start(proc, seconds, width)
        else:
            self._waiting.append((proc, seconds, width))

    def _start(self, proc: Process, seconds: float, width: float) -> None:
        self._track()
        self.free -= width
        self.sim.schedule(seconds * self.penalty, self._finish, proc, width)

    def _finish(self, proc: Process, width: float) -> None:
        self._track()
        self.free += width
        self.sim.schedule(0.0, proc.resume, None)
        while self._waiting and self.free >= self._waiting[0][2]:
            waiting_proc, seconds, w = self._waiting.popleft()
            self._start(waiting_proc, seconds, w)


class FairShareDisk:
    """Fair-share disk server driven by a :class:`~repro.host.disk.DiskSpec`.

    Active reads share aggregate bandwidth ``B(k)`` equally, where ``k``
    is the number of concurrent streams; the aggregate follows the
    spec's parallelism curve. Per-read fixed latency models seek/request
    setup.
    """

    #: reads with fewer remaining bytes than this are considered done
    #: (guards against float underflow livelock at a single timestamp)
    _EPS_BYTES = 1e-3

    __slots__ = ("sim", "spec", "_active", "_last_t", "_version", "total_bytes")

    def __init__(self, sim: Simulation, spec) -> None:
        self.sim = sim
        self.spec = spec
        self._active: dict = {}  # proc -> remaining bytes
        self._last_t = sim.now
        self._version = 0
        self.total_bytes = 0.0

    # ------------------------------------------------------------------
    def submit(self, proc: Process, nbytes: float) -> None:
        if nbytes < 0:
            raise SimulationError(f"negative read size {nbytes}")
        if nbytes == 0:
            self.sim.schedule(0.0, proc.resume, None)
            return
        self.total_bytes += nbytes
        if self.spec.read_latency > 0:
            self.sim.schedule(self.spec.read_latency, self._admit, proc, nbytes)
        else:
            self._admit(proc, nbytes)

    def _admit(self, proc: Process, nbytes: float) -> None:
        self._advance()
        self._active[proc] = nbytes
        self._reschedule()

    def _per_stream_rate(self) -> float:
        k = len(self._active)
        if k == 0:
            return 0.0
        return self.spec.bandwidth(k) / k

    def _advance(self) -> None:
        """Account progress since the last disk event."""
        now = self.sim.now
        dt = now - self._last_t
        self._last_t = now
        if dt <= 0 or not self._active:
            return
        rate = self._per_stream_rate()
        done = dt * rate
        for proc in list(self._active):
            self._active[proc] = max(0.0, self._active[proc] - done)

    def _reschedule(self) -> None:
        self._version += 1
        if not self._active:
            return
        rate = self._per_stream_rate()
        if rate <= 0:
            raise SimulationError("disk has active reads but zero bandwidth")
        min_remaining = min(self._active.values())
        delay = 0.0 if min_remaining <= self._EPS_BYTES else min_remaining / rate
        self.sim.schedule(delay, self._complete, self._version)

    def _complete(self, version: int) -> None:
        if version != self._version:
            return  # stale completion event
        self._advance()
        finished = [
            p for p, rem in self._active.items() if rem <= self._EPS_BYTES
        ]
        if not finished and self._active:
            # Float rounding left the soonest read marginally above the
            # epsilon at the scheduled completion time; force it done.
            soonest = min(self._active, key=self._active.get)
            finished = [soonest]
        for proc in finished:
            del self._active[proc]
            self.sim.schedule(0.0, proc.resume, None)
        self._reschedule()


class Processes:
    """Small helpers for writing worker generators."""

    @staticmethod
    def drain(queue: SimQueue) -> Generator:
        """Consume and discard everything until EOS."""
        while True:
            item = yield Get(queue)
            if item is EOS:
                return
