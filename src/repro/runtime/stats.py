"""Per-iterator statistics — the paper's ≤144-byte AUTOTUNE-style struct.

For every dataset node the runtime maintains counters for elements
consumed/produced, active CPU core-seconds, bytes produced, bytes read
from storage, and wallclock busy time. Plumber's offline analysis
(:mod:`repro.core.rates`) is computed purely from a snapshot of these
counters plus the serialized program, exactly as in §4.1.

Source nodes additionally record the sizes of files they finished
reading — the input to the subsampled dataset-size estimator (§A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(slots=True)
class NodeStats:
    """Counters for one dataset node."""

    name: str
    kind: str
    parallelism: int = 1
    sequential: bool = False
    udf_internal_parallelism: float = 1.0

    elements_produced: float = 0.0
    elements_consumed: float = 0.0
    cpu_core_seconds: float = 0.0
    io_seconds: float = 0.0
    overhead_seconds: float = 0.0
    bytes_produced: float = 0.0
    bytes_read: float = 0.0
    first_output_time: Optional[float] = None
    last_output_time: Optional[float] = None

    # Source-only: observed finished files (name excluded to stay small).
    files_seen_sizes: List[float] = field(default_factory=list)
    files_seen_count: int = 0
    files_seen_bytes: float = 0.0
    #: cap on the per-file size list (reservoir prefix); counters above
    #: keep exact totals beyond the cap.
    files_seen_cap: int = 65536

    # ------------------------------------------------------------------
    def on_produce(self, count: float, nbytes: float, now: float) -> None:
        """Record ``count`` elements (``nbytes`` total) leaving the node."""
        self.elements_produced += count
        self.bytes_produced += nbytes
        if self.first_output_time is None:
            self.first_output_time = now
        self.last_output_time = now

    def on_consume(self, count: float) -> None:
        """Record ``count`` elements entering the node."""
        self.elements_consumed += count

    def on_cpu(self, core_seconds: float) -> None:
        """Record active CPU core-seconds."""
        self.cpu_core_seconds += core_seconds

    def on_overhead(self, seconds: float) -> None:
        """Record framework overhead (not CPU-accounted)."""
        self.overhead_seconds += seconds

    def on_io(self, seconds: float) -> None:
        """Record wallclock spent waiting on storage reads."""
        self.io_seconds += seconds

    def on_read(self, nbytes: float) -> None:
        """Record bytes read from storage."""
        self.bytes_read += nbytes

    def on_file_done(self, size_bytes: float) -> None:
        """Record one observed file's size (a filesystem stat at open —
        the "bytes read until end of file" of §A)."""
        if self.files_seen_count < self.files_seen_cap:
            self.files_seen_sizes.append(size_bytes)
        self.files_seen_count += 1
        self.files_seen_bytes += size_bytes

    # ------------------------------------------------------------------
    @property
    def bytes_per_element(self) -> float:
        """Mean output element size (b_i in §A)."""
        if self.elements_produced <= 0:
            return 0.0
        return self.bytes_produced / self.elements_produced

    @property
    def elements_per_cpu_second(self) -> float:
        """Local per-core completion rate (r_i in §4.4)."""
        if self.cpu_core_seconds <= 0:
            return float("inf") if self.elements_produced > 0 else 0.0
        return self.elements_produced / self.cpu_core_seconds

    def snapshot(self) -> "NodeStats":
        """A frozen copy of the current counters."""
        clone = NodeStats(
            name=self.name,
            kind=self.kind,
            parallelism=self.parallelism,
            sequential=self.sequential,
            udf_internal_parallelism=self.udf_internal_parallelism,
            elements_produced=self.elements_produced,
            elements_consumed=self.elements_consumed,
            cpu_core_seconds=self.cpu_core_seconds,
            io_seconds=self.io_seconds,
            overhead_seconds=self.overhead_seconds,
            bytes_produced=self.bytes_produced,
            bytes_read=self.bytes_read,
            first_output_time=self.first_output_time,
            last_output_time=self.last_output_time,
            files_seen_count=self.files_seen_count,
            files_seen_bytes=self.files_seen_bytes,
        )
        clone.files_seen_sizes = list(self.files_seen_sizes)
        return clone

    def delta(self, earlier: "NodeStats") -> "NodeStats":
        """Counters accumulated since ``earlier`` (for warmup trimming).

        File observations are kept cumulative: size estimation wants all
        files seen, not just post-warmup ones.
        """
        out = self.snapshot()
        out.elements_produced -= earlier.elements_produced
        out.elements_consumed -= earlier.elements_consumed
        out.cpu_core_seconds -= earlier.cpu_core_seconds
        out.io_seconds -= earlier.io_seconds
        out.overhead_seconds -= earlier.overhead_seconds
        out.bytes_produced -= earlier.bytes_produced
        out.bytes_read -= earlier.bytes_read
        return out

    def to_dict(self) -> dict:
        """JSON-compatible representation (trace file format)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "parallelism": self.parallelism,
            "sequential": self.sequential,
            "udf_internal_parallelism": self.udf_internal_parallelism,
            "elements_produced": self.elements_produced,
            "elements_consumed": self.elements_consumed,
            "cpu_core_seconds": self.cpu_core_seconds,
            "io_seconds": self.io_seconds,
            "overhead_seconds": self.overhead_seconds,
            "bytes_produced": self.bytes_produced,
            "bytes_read": self.bytes_read,
            "files_seen_sizes": list(self.files_seen_sizes),
            "files_seen_count": self.files_seen_count,
            "files_seen_bytes": self.files_seen_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeStats":
        """Inverse of :meth:`to_dict`."""
        stats = cls(
            name=data["name"],
            kind=data["kind"],
            parallelism=data.get("parallelism", 1),
            sequential=data.get("sequential", False),
            udf_internal_parallelism=data.get("udf_internal_parallelism", 1.0),
            elements_produced=data.get("elements_produced", 0.0),
            elements_consumed=data.get("elements_consumed", 0.0),
            cpu_core_seconds=data.get("cpu_core_seconds", 0.0),
            io_seconds=data.get("io_seconds", 0.0),
            overhead_seconds=data.get("overhead_seconds", 0.0),
            bytes_produced=data.get("bytes_produced", 0.0),
            bytes_read=data.get("bytes_read", 0.0),
            files_seen_count=data.get("files_seen_count", 0),
            files_seen_bytes=data.get("files_seen_bytes", 0.0),
        )
        stats.files_seen_sizes = list(data.get("files_seen_sizes", ()))
        return stats


class StatsBoard:
    """All node stats for one run, keyed by node name."""

    def __init__(self) -> None:
        self._stats: Dict[str, NodeStats] = {}

    def register(self, stats: NodeStats) -> NodeStats:
        """Add a node's stats object, enforcing unique names."""
        if stats.name in self._stats:
            raise ValueError(f"stats already registered for {stats.name!r}")
        self._stats[stats.name] = stats
        return stats

    def __getitem__(self, name: str) -> NodeStats:
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def names(self) -> List[str]:
        """Registered node names."""
        return list(self._stats)

    def snapshot(self) -> Dict[str, NodeStats]:
        """Frozen copies of all stats."""
        return {name: s.snapshot() for name, s in self._stats.items()}

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {name: s.to_dict() for name, s in self._stats.items()}
