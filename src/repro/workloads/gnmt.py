"""GNMT/WMT16 input pipeline (Wu et al. 2016).

"According to Plumber, GNMT is bottlenecked by
ShuffleAndRepeatDataset; this Dataset is performing minimal work and
thus the result is unexpected" (§5.1) — the fused sequential
shuffle+repeat caps throughput no matter how much map parallelism is
added, and because it repeats unboundedly, nothing above it can be
cached. "Introducing inner-parallelism for Batching" is the paper's
partial fix, which is why the batch node here is tunable.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.builder import from_tfrecords
from repro.graph.datasets import Pipeline
from repro.graph.udf import CostModel, UserFunction
from repro.io.catalogs import wmt16_catalog
from repro.io.filesystem import FileCatalog

BATCH_SIZE = 64
PARSE_CPU_SECONDS = 8.0e-6
TOKENIZE_CPU_SECONDS = 20.0e-6
PAD_CPU_SECONDS = 12.0e-6
SHUFFLE_REPEAT_CPU_SECONDS = 10.0e-6
READ_CPU_SECONDS_PER_RECORD = 1.0e-6
BATCH_CPU_SECONDS_PER_EXAMPLE = 1.0e-7


def build_gnmt(
    catalog: Optional[FileCatalog] = None,
    parallelism: int = 1,
    prefetch: int = 10,
    batch_size: int = BATCH_SIZE,
    name: Optional[str] = None,
) -> Pipeline:
    """The GNMT pipeline with its fused ShuffleAndRepeat."""
    catalog = catalog or wmt16_catalog()
    parse = UserFunction("parse_text", cost=CostModel(cpu_seconds=PARSE_CPU_SECONDS))
    tokenize = UserFunction(
        "tokenize", cost=CostModel(cpu_seconds=TOKENIZE_CPU_SECONDS)
    )
    pad = UserFunction("pad_to_bucket", cost=CostModel(cpu_seconds=PAD_CPU_SECONDS))
    ds = from_tfrecords(
        catalog,
        parallelism=parallelism,
        read_cpu_seconds_per_record=READ_CPU_SECONDS_PER_RECORD,
        name="interleave_tfrecord",
    )
    ds = ds.map(parse, parallelism=parallelism, name="map_parse")
    ds = ds.map(tokenize, parallelism=parallelism, name="map_tokenize")
    ds = ds.shuffle_and_repeat(
        1024,
        cpu_seconds_per_element=SHUFFLE_REPEAT_CPU_SECONDS,
        name="shuffle_and_repeat",
    )
    ds = ds.map(pad, parallelism=parallelism, name="map_pad")
    ds = ds.batch(
        batch_size,
        parallelism=parallelism,
        cpu_seconds_per_example=BATCH_CPU_SECONDS_PER_EXAMPLE,
        name="batch",
    )
    if prefetch > 0:
        ds = ds.prefetch(prefetch, name="prefetch_root")
    return ds.build(name or "gnmt")
