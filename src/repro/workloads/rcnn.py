"""Mask-RCNN/COCO input pipeline (Ren et al. 2016; Lin et al. 2014).

The UDF-parallelism stress case (Figure 8, Obs. 5): the heavy
augmentation UDF is transparently parallelized by the runtime, so "1
parallelism uses nearly 3 cores" and over-allocation compounds into
thread oversubscription. Calibration from §5:

* heavy map ≈ 0.5 minibatches/s/core, cheap map ≈ two orders of
  magnitude cheaper (§5.4);
* the UDF following the source is randomized, so RCNN "can only be
  cached at the disk-level" (§5.3);
* COCO is 20 GB; RCNN and MultiBoxSSD share dataset and batch size
  (§5.2 infers ~145 minibatches/s per 100 MB/s → batch 4 x ~170 KB).
"""

from __future__ import annotations

from typing import Optional

from repro.graph.builder import from_tfrecords
from repro.graph.datasets import Pipeline
from repro.graph.udf import CostModel, UserFunction
from repro.io.catalogs import coco_catalog
from repro.io.filesystem import FileCatalog

BATCH_SIZE = 4
PARSE_CPU_SECONDS = 2.0e-4
#: heavy augmentation: 0.125 s/image at width 3 → 0.5 core-s/image
#: → 2 core-s per minibatch → R = 0.5 minibatch/s/core (§5.4).
HEAVY_CPU_SECONDS = 0.125
HEAVY_INTERNAL_PARALLELISM = 3.0
#: cheap map: ~100x cheaper than the heavy one (§5.4).
CHEAP_CPU_SECONDS = 5.0e-3
READ_CPU_SECONDS_PER_RECORD = 5.0e-5
BATCH_CPU_SECONDS_PER_EXAMPLE = 4.0e-6


def build_rcnn(
    catalog: Optional[FileCatalog] = None,
    parallelism: int = 1,
    prefetch: int = 8,
    batch_size: int = BATCH_SIZE,
    name: Optional[str] = None,
) -> Pipeline:
    """The Mask-RCNN pipeline with its transparently-parallel heavy UDF."""
    catalog = catalog or coco_catalog()
    parse = UserFunction(
        "parse_coco", cost=CostModel(cpu_seconds=PARSE_CPU_SECONDS)
    )
    heavy = UserFunction(
        "decode_and_augment",
        cost=CostModel(
            cpu_seconds=HEAVY_CPU_SECONDS,
            internal_parallelism=HEAVY_INTERNAL_PARALLELISM,
        ),
        size_ratio=6.0,
        accesses_seed=True,  # randomized: uncacheable past the source
    )
    cheap = UserFunction(
        "normalize_and_pad", cost=CostModel(cpu_seconds=CHEAP_CPU_SECONDS)
    )
    ds = from_tfrecords(
        catalog,
        parallelism=parallelism,
        read_cpu_seconds_per_record=READ_CPU_SECONDS_PER_RECORD,
        name="interleave_tfrecord",
    )
    ds = ds.map(parse, parallelism=parallelism, name="map_parse")
    ds = ds.map(heavy, parallelism=parallelism, name="map_heavy")
    ds = ds.map(cheap, parallelism=parallelism, name="map_cheap")
    ds = ds.batch(
        batch_size,
        parallelism=parallelism,
        cpu_seconds_per_example=BATCH_CPU_SECONDS_PER_EXAMPLE,
        name="batch",
    )
    if prefetch > 0:
        ds = ds.prefetch(prefetch, name="prefetch_root")
    ds = ds.repeat(None, name="repeat")
    return ds.build(name or "rcnn")
