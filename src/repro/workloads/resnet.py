"""ResNet/ImageNet input pipeline (He et al. 2016; Deng et al. 2009).

The paper's most I/O-intensive pipeline. Calibration, all from §5:

* JPEG decode services ~2.5 minibatches/s/core on Setup A with batch 128
  → 3.125 ms/image; a transpose is the second bottleneck (§5.1).
* decode amplifies the dataset ~5.7x (842 GB decoded from 148 GB, §5.3).
* random crop follows decode — fused decode+crop is faster but kills
  cacheability past the source (Figure 11 / §5.3).
* I/O load is 128 x ~110 KB per minibatch → ~6.9 minibatches per
  100 MB/s (§5.2).
"""

from __future__ import annotations

from typing import Optional

from repro.graph.builder import from_tfrecords
from repro.graph.datasets import Pipeline
from repro.graph.udf import CostModel, UserFunction
from repro.io.catalogs import imagenet_catalog
from repro.io.filesystem import FileCatalog

BATCH_SIZE = 128
#: 1 / (2.5 minibatch/s/core x 128 images) — Setup A reference core.
DECODE_CPU_SECONDS = 3.125e-3
DECODE_SIZE_RATIO = 5.7
PARSE_CPU_SECONDS = 1.0e-4
CROP_CPU_SECONDS = 3.0e-4
CROP_OUTPUT_BYTES = 224 * 224 * 3.0
TRANSPOSE_CPU_SECONDS = 6.5e-4
READ_CPU_SECONDS_PER_RECORD = 5.0e-5
SHUFFLE_CPU_SECONDS = 5.0e-6
BATCH_CPU_SECONDS_PER_EXAMPLE = 2.0e-6
#: fused decode+crop: cheaper than decode followed by crop, but random.
FUSED_DECODE_CROP_CPU_SECONDS = 2.9e-3


def _udfs(fused: bool) -> dict:
    seeded_crop = UserFunction(
        "random_crop",
        cost=CostModel(cpu_seconds=CROP_CPU_SECONDS),
        output_bytes=CROP_OUTPUT_BYTES,
        accesses_seed=True,
    )
    udfs = {
        "parse": UserFunction(
            "parse_example", cost=CostModel(cpu_seconds=PARSE_CPU_SECONDS)
        ),
        "transpose": UserFunction(
            "transpose", cost=CostModel(cpu_seconds=TRANSPOSE_CPU_SECONDS)
        ),
    }
    if fused:
        udfs["decode"] = UserFunction(
            "fused_decode_crop",
            cost=CostModel(cpu_seconds=FUSED_DECODE_CROP_CPU_SECONDS),
            output_bytes=CROP_OUTPUT_BYTES,
            # Fusion pulls the seeded crop into the decode body: the whole
            # op is transitively random (§B.1).
            calls=(seeded_crop,),
        )
    else:
        udfs["decode"] = UserFunction(
            "decode_jpeg",
            cost=CostModel(cpu_seconds=DECODE_CPU_SECONDS),
            size_ratio=DECODE_SIZE_RATIO,
        )
        udfs["crop"] = seeded_crop
    return udfs


def build_resnet(
    catalog: Optional[FileCatalog] = None,
    parallelism: int = 1,
    prefetch: int = 10,
    fused: bool = False,
    batch_size: int = BATCH_SIZE,
    name: Optional[str] = None,
) -> Pipeline:
    """The ImageNet pipeline of Figures 1/5.

    ``parallelism`` seeds every tunable (1 = the naive configuration);
    ``fused=True`` builds the fused decode+crop variant of Figure 11.
    """
    catalog = catalog or imagenet_catalog()
    udfs = _udfs(fused)
    ds = from_tfrecords(
        catalog,
        parallelism=parallelism,
        read_cpu_seconds_per_record=READ_CPU_SECONDS_PER_RECORD,
        name="interleave_tfrecord",
    )
    ds = ds.map(udfs["parse"], parallelism=parallelism, name="map_parse")
    ds = ds.map(udfs["decode"], parallelism=parallelism, name="map_decode")
    if not fused:
        ds = ds.map(udfs["crop"], parallelism=parallelism, name="map_crop")
    ds = ds.map(udfs["transpose"], parallelism=parallelism, name="map_transpose")
    ds = ds.shuffle(1024, cpu_seconds_per_element=SHUFFLE_CPU_SECONDS, name="shuffle")
    ds = ds.batch(
        batch_size,
        parallelism=parallelism,
        cpu_seconds_per_example=BATCH_CPU_SECONDS_PER_EXAMPLE,
        name="batch",
    )
    if prefetch > 0:
        ds = ds.prefetch(prefetch, name="prefetch_root")
    ds = ds.repeat(None, name="repeat")
    suffix = "_fused" if fused else ""
    return ds.build(name or f"resnet{suffix}")


def build_resnet_fused(**kwargs) -> Pipeline:
    """Shorthand for the fused decode+crop variant."""
    kwargs.setdefault("name", "resnet_fused")
    return build_resnet(fused=True, **kwargs)
