"""Transformer/WMT17 input pipelines (Vaswani et al. 2017).

Two variants:

* :func:`build_transformer` — the MLPerf pipeline: three cheap maps plus
  a Filter. "Nearly all operations in NLP are very small... so small
  that they are significant compared to the Iterator abstraction's
  overhead, causing idle bubbles" (§5.1). Plumber reports the sequential
  FilterDataset as the bottleneck, "operating at about half of its max
  rate (explaining the 2x difference)" — the Figure 9a prediction gap.
* :func:`build_transformer_small` — the Flax variant (§5.4): on-the-fly
  text processing and *sequential packing*; with a single-layer model the
  packing stage dominates, and only aggressive caching reaches peak
  throughput (the 2.5x TransformerSmall gap in Figures 10/12).
"""

from __future__ import annotations

from typing import Optional

from repro.graph.builder import from_tfrecords
from repro.graph.datasets import Pipeline
from repro.graph.udf import CostModel, UserFunction
from repro.io.catalogs import wmt17_catalog
from repro.io.filesystem import FileCatalog

BATCH_SIZE = 64
PARSE_CPU_SECONDS = 8.0e-6
TOKENIZE_CPU_SECONDS = 25.0e-6
ENCODE_CPU_SECONDS = 15.0e-6
GROUP_CPU_SECONDS = 15.0e-6
FILTER_KEEP_FRACTION = 0.98
FILTER_CPU_SECONDS = 10.0e-6
READ_CPU_SECONDS_PER_RECORD = 1.0e-6
BATCH_CPU_SECONDS_PER_EXAMPLE = 1.0e-7

#: Flax variant: heavier on-the-fly processing (§5.4).
SMALL_TOKENIZE_CPU_SECONDS = 3.5e-3
SMALL_PACK_CPU_SECONDS = 1.0e-3
SMALL_BATCH_SIZE = 32


def build_transformer(
    catalog: Optional[FileCatalog] = None,
    parallelism: int = 1,
    prefetch: int = 10,
    batch_size: int = BATCH_SIZE,
    name: Optional[str] = None,
) -> Pipeline:
    """The MLPerf Transformer pipeline: 3 maps + a sequential filter."""
    catalog = catalog or wmt17_catalog()
    parse = UserFunction("parse_text", cost=CostModel(cpu_seconds=PARSE_CPU_SECONDS))
    tokenize = UserFunction(
        "tokenize", cost=CostModel(cpu_seconds=TOKENIZE_CPU_SECONDS)
    )
    encode = UserFunction(
        "encode_subwords", cost=CostModel(cpu_seconds=ENCODE_CPU_SECONDS)
    )
    group = UserFunction(
        "group_lengths", cost=CostModel(cpu_seconds=GROUP_CPU_SECONDS)
    )
    length_filter = UserFunction(
        "length_filter", cost=CostModel(cpu_seconds=FILTER_CPU_SECONDS)
    )
    ds = from_tfrecords(
        catalog,
        parallelism=parallelism,
        read_cpu_seconds_per_record=READ_CPU_SECONDS_PER_RECORD,
        name="interleave_tfrecord",
    )
    ds = ds.map(parse, parallelism=parallelism, name="map_parse")
    ds = ds.map(tokenize, parallelism=parallelism, name="map_tokenize")
    ds = ds.map(encode, parallelism=parallelism, name="map_encode")
    ds = ds.filter(
        length_filter, keep_fraction=FILTER_KEEP_FRACTION, name="filter_length"
    )
    ds = ds.map(group, parallelism=parallelism, name="map_group")
    ds = ds.batch(
        batch_size,
        parallelism=parallelism,
        cpu_seconds_per_example=BATCH_CPU_SECONDS_PER_EXAMPLE,
        name="batch",
    )
    if prefetch > 0:
        ds = ds.prefetch(prefetch, name="prefetch_root")
    ds = ds.repeat(None, name="repeat")
    return ds.build(name or "transformer")


def build_transformer_small(
    catalog: Optional[FileCatalog] = None,
    parallelism: int = 1,
    prefetch: int = 10,
    batch_size: int = SMALL_BATCH_SIZE,
    name: Optional[str] = None,
) -> Pipeline:
    """The Flax TransformerSmall pipeline: on-the-fly tokenize + pack.

    Packing is stateful and sequential; it becomes the bottleneck once
    tokenization is parallelized, and only caching the packed stream
    removes it (§5.4).
    """
    catalog = catalog or wmt17_catalog()
    tokenize = UserFunction(
        "flax_tokenize", cost=CostModel(cpu_seconds=SMALL_TOKENIZE_CPU_SECONDS)
    )
    pack = UserFunction(
        "pack_sequences", cost=CostModel(cpu_seconds=SMALL_PACK_CPU_SECONDS)
    )
    ds = from_tfrecords(
        catalog,
        parallelism=parallelism,
        read_cpu_seconds_per_record=READ_CPU_SECONDS_PER_RECORD,
        name="interleave_tfrecord",
    )
    ds = ds.map(tokenize, parallelism=parallelism, name="map_tokenize")
    ds = ds.map(pack, sequential=True, name="map_pack")
    ds = ds.batch(
        batch_size,
        parallelism=parallelism,
        cpu_seconds_per_example=BATCH_CPU_SECONDS_PER_EXAMPLE,
        name="batch",
    )
    if prefetch > 0:
        ds = ds.prefetch(prefetch, name="prefetch_root")
    ds = ds.repeat(None, name="repeat")
    return ds.build(name or "transformer_small")
