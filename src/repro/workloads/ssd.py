"""MultiBoxSSD/COCO input pipeline (Liu et al. 2016).

The cache-after-filter showcase: "For MultiBoxSSD, Plumber is able to
materialize the data after filtering is performed, which makes the cache
smaller and increases throughput by removing load from the CPU" (§5.4).
Calibration from §5.3:

* materializing after image decoding takes ~97 GB (4.85x of COCO's
  20 GB) — too big for Setups A/B, fits Setup C's 300 GB;
* the filter "reduces the dataset by less than 1%";
* the random augmentation comes *after* the filter, so the filter output
  is the highest cacheable point.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.builder import from_tfrecords
from repro.graph.datasets import Pipeline
from repro.graph.udf import CostModel, UserFunction
from repro.io.catalogs import coco_catalog
from repro.io.filesystem import FileCatalog

BATCH_SIZE = 4
PARSE_CPU_SECONDS = 2.0e-4
DECODE_CPU_SECONDS = 2.0e-3
#: decoded COCO is ~97 GB of a 20 GB source (§5.3).
DECODE_SIZE_RATIO = 4.85
RESIZE_CPU_SECONDS = 6.6e-3
FILTER_KEEP_FRACTION = 0.995
FILTER_CPU_SECONDS = 5.0e-5
#: the random augmentation tail: crop, flip, box matching, normalize —
#: several similarly-priced stages, which is what makes MultiBoxSSD's
#: bottleneck alternate during tuning (Fig. 13).
CROP_CPU_SECONDS = 6.6e-3
FLIP_CPU_SECONDS = 6.6e-3
BOX_MATCH_CPU_SECONDS = 6.6e-3
NORMALIZE_CPU_SECONDS = 6.6e-3
READ_CPU_SECONDS_PER_RECORD = 5.0e-5
BATCH_CPU_SECONDS_PER_EXAMPLE = 4.0e-6


def build_ssd(
    catalog: Optional[FileCatalog] = None,
    parallelism: int = 1,
    prefetch: int = 8,
    batch_size: int = BATCH_SIZE,
    name: Optional[str] = None,
) -> Pipeline:
    """The MultiBoxSSD pipeline: decode/resize → filter → random tail."""
    catalog = catalog or coco_catalog()
    parse = UserFunction(
        "parse_coco", cost=CostModel(cpu_seconds=PARSE_CPU_SECONDS)
    )
    decode = UserFunction(
        "decode_jpeg",
        cost=CostModel(cpu_seconds=DECODE_CPU_SECONDS),
        size_ratio=DECODE_SIZE_RATIO,
    )
    resize = UserFunction(
        "resize_300", cost=CostModel(cpu_seconds=RESIZE_CPU_SECONDS)
    )
    box_filter = UserFunction(
        "valid_boxes", cost=CostModel(cpu_seconds=FILTER_CPU_SECONDS)
    )
    crop = UserFunction(
        "ssd_random_crop",
        cost=CostModel(cpu_seconds=CROP_CPU_SECONDS),
        accesses_seed=True,
    )
    flip = UserFunction(
        "random_flip",
        cost=CostModel(cpu_seconds=FLIP_CPU_SECONDS),
        accesses_seed=True,
    )
    box_match = UserFunction(
        "box_matching", cost=CostModel(cpu_seconds=BOX_MATCH_CPU_SECONDS)
    )
    normalize = UserFunction(
        "normalize", cost=CostModel(cpu_seconds=NORMALIZE_CPU_SECONDS)
    )
    ds = from_tfrecords(
        catalog,
        parallelism=parallelism,
        read_cpu_seconds_per_record=READ_CPU_SECONDS_PER_RECORD,
        name="interleave_tfrecord",
    )
    ds = ds.map(parse, parallelism=parallelism, name="map_parse")
    ds = ds.map(decode, parallelism=parallelism, name="map_decode")
    ds = ds.map(resize, parallelism=parallelism, name="map_resize")
    ds = ds.filter(box_filter, keep_fraction=FILTER_KEEP_FRACTION, name="filter_boxes")
    ds = ds.map(crop, parallelism=parallelism, name="map_crop")
    ds = ds.map(flip, parallelism=parallelism, name="map_flip")
    ds = ds.map(box_match, parallelism=parallelism, name="map_box_match")
    ds = ds.map(normalize, parallelism=parallelism, name="map_normalize")
    ds = ds.batch(
        batch_size,
        parallelism=parallelism,
        cpu_seconds_per_example=BATCH_CPU_SECONDS_PER_EXAMPLE,
        name="batch",
    )
    if prefetch > 0:
        ds = ds.prefetch(prefetch, name="prefetch_root")
    ds = ds.repeat(None, name="repeat")
    return ds.build(name or "multibox_ssd")
