"""Workload registry: descriptors binding a pipeline builder to the
dataset, batch size, and the Setup-C model-consumer rate used in the
end-to-end experiments (Figures 10/12).

Model-rate caps (samples/second the accelerator can absorb) come from
the paper's absolute throughputs in Figure 12 — Plumber's or the
fastest configuration saturates them:

* ResNet18 ≈ 12.7k img/s, ResNetLinear ≈ 14.7k img/s, ResNet-50 8k;
* Transformer ≈ 860 and GNMT ≈ 5.6k samples/s (model-bound for every
  tuner); TransformerSmall ≈ 2.7k;
* MultiBoxSSD ≈ 3.3k, RCNN ≈ 82 samples/s equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.graph.datasets import Pipeline
from repro.io.catalogs import (
    coco_catalog,
    imagenet_catalog,
    imagenet_validation_catalog,
    wmt16_catalog,
    wmt17_catalog,
)
from repro.io.filesystem import FileCatalog
from repro.workloads.gnmt import build_gnmt
from repro.workloads.rcnn import build_rcnn
from repro.workloads.resnet import build_resnet
from repro.workloads.ssd import build_ssd
from repro.workloads.transformer import build_transformer, build_transformer_small


@dataclass(frozen=True)
class Workload:
    """One evaluation workload."""

    name: str
    description: str
    builder: Callable[..., Pipeline]
    catalog_factory: Callable[[], FileCatalog]
    batch_size: int
    #: accelerator samples/second cap for end-to-end runs (None = no model)
    model_samples_per_second: Optional[float] = None

    def build(self, scale: float = 1.0, **kwargs) -> Pipeline:
        """Build the pipeline, optionally scaling the dataset."""
        catalog = self.catalog_factory()
        if scale != 1.0:
            catalog = catalog.scaled(scale)
        kwargs.setdefault("catalog", catalog)
        return self.builder(**kwargs)

    @property
    def model_step_seconds(self) -> float:
        """Seconds of accelerator time per minibatch (0 = benchmark)."""
        if not self.model_samples_per_second:
            return 0.0
        return self.batch_size / self.model_samples_per_second


#: Workloads used in the §5.1–§5.3 microbenchmarks (no model attached).
MICROBENCH_WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            "resnet",
            "ResNet-50/ImageNet image classification",
            build_resnet,
            imagenet_catalog,
            batch_size=128,
        ),
        Workload(
            "rcnn",
            "Mask-RCNN/COCO detection (heavy UDF parallelism)",
            build_rcnn,
            coco_catalog,
            batch_size=4,
        ),
        Workload(
            "ssd",
            "MultiBoxSSD/COCO real-time detection",
            build_ssd,
            coco_catalog,
            batch_size=4,
        ),
        Workload(
            "transformer",
            "Transformer/WMT17 translation (tiny ops)",
            build_transformer,
            wmt17_catalog,
            batch_size=64,
        ),
        Workload(
            "gnmt",
            "GNMT/WMT16 translation (ShuffleAndRepeat bottleneck)",
            build_gnmt,
            wmt16_catalog,
            batch_size=64,
        ),
    )
}

#: Workloads + model rates for the §5.4 end-to-end experiments.
END_TO_END_WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            "resnet18",
            "ResNet-18/ImageNet on TPUv3-8",
            build_resnet,
            imagenet_catalog,
            batch_size=128,
            model_samples_per_second=12_740.0,
        ),
        Workload(
            "resnet_linear",
            "Linear model over ImageNet validation (cacheable decode)",
            build_resnet,
            imagenet_validation_catalog,
            batch_size=128,
            model_samples_per_second=14_730.0,
        ),
        Workload(
            "resnet50",
            "ResNet-50/ImageNet on TPUv3-8 (model-bound at ~8k img/s)",
            build_resnet,
            imagenet_catalog,
            batch_size=128,
            model_samples_per_second=8_000.0,
        ),
        Workload(
            "ssd",
            "MultiBoxSSD/COCO on TPUv3-8",
            build_ssd,
            coco_catalog,
            batch_size=4,
            model_samples_per_second=3_300.0,
        ),
        Workload(
            "rcnn",
            "Mask-RCNN/COCO on TPUv3-8",
            build_rcnn,
            coco_catalog,
            batch_size=4,
            model_samples_per_second=82.0,
        ),
        Workload(
            "transformer",
            "Transformer/WMT17 on TPUv3-8 (model-bound)",
            build_transformer,
            wmt17_catalog,
            batch_size=64,
            model_samples_per_second=860.0,
        ),
        Workload(
            "transformer_small",
            "Single-layer Flax Transformer (pipeline-bound)",
            build_transformer_small,
            wmt17_catalog,
            batch_size=32,
            model_samples_per_second=2_700.0,
        ),
        Workload(
            "gnmt",
            "GNMT/WMT16 on TPUv3-8 (model-bound)",
            build_gnmt,
            wmt16_catalog,
            batch_size=64,
            model_samples_per_second=5_600.0,
        ),
    )
}


def get_workload(name: str, end_to_end: bool = False) -> Workload:
    """Look up a workload by name."""
    table = END_TO_END_WORKLOADS if end_to_end else MICROBENCH_WORKLOADS
    if name not in table:
        raise KeyError(f"unknown workload {name!r}; have {sorted(table)}")
    return table[name]
