"""The paper's evaluation workloads (§5, §D): MLPerf v0.6 input pipelines.

Each module builds the pipeline with per-op cost constants calibrated to
the measurements the paper itself reports (decode rates, dataset sizes,
UDF parallelism). :mod:`repro.workloads.registry` maps names to
:class:`~repro.workloads.registry.Workload` descriptors used by the
benchmark harnesses.
"""

from repro.workloads.gnmt import build_gnmt
from repro.workloads.rcnn import build_rcnn
from repro.workloads.registry import (
    END_TO_END_WORKLOADS,
    MICROBENCH_WORKLOADS,
    Workload,
    get_workload,
)
from repro.workloads.resnet import build_resnet, build_resnet_fused
from repro.workloads.ssd import build_ssd
from repro.workloads.transformer import build_transformer, build_transformer_small

__all__ = [
    "END_TO_END_WORKLOADS",
    "MICROBENCH_WORKLOADS",
    "Workload",
    "build_gnmt",
    "build_rcnn",
    "build_resnet",
    "build_resnet_fused",
    "build_ssd",
    "build_transformer",
    "build_transformer_small",
    "get_workload",
]
