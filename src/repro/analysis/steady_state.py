"""Analytic steady-state throughput model.

A closed-form version of what the simulator computes by event replay:
operational analysis (Denning & Buzen 1978) over the declared pipeline.
Every node contributes

* a *stage capacity* ``p_i / (V_i * (overhead + service_i))`` — it cannot
  complete elements faster than its workers turn them around, and
* a *CPU demand* ``V_i * core_seconds_i`` per root element.

Root throughput is the minimum of stage capacities, the aggregate CPU
capacity, the disk bound at the source's stream parallelism, and the
consumer's own rate. Used by the fleet analysis (§3) where simulating
two million jobs event-by-event would be wasteful, and as an oracle the
simulator is tested against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.graph.datasets import (
    BatchNode,
    CacheNode,
    DatasetNode,
    FilterNode,
    InterleaveDatasetsNode,
    InterleaveSourceNode,
    MapNode,
    Pipeline,
    ShuffleNode,
    ZipNode,
)
from repro.host.machine import Machine


@dataclass(frozen=True)
class SteadyStatePrediction:
    """Predicted equilibrium for one pipeline on one machine."""

    throughput: float                 # root elements / second
    bottleneck: str                   # binding constraint description
    stage_caps: Dict[str, float]      # per-node capacity in root units
    cpu_cap: float
    disk_cap: float
    consumer_cap: float
    cpu_demand_per_element: float     # core-seconds per root element

    @property
    def cpu_utilization(self) -> float:
        """Fraction of the CPU bound actually consumed at equilibrium."""
        if self.cpu_cap <= 0 or not math.isfinite(self.cpu_cap):
            return 0.0
        return min(1.0, self.throughput / self.cpu_cap)


def node_service(node: DatasetNode, machine: Machine) -> tuple:
    """Per-element (wallclock service seconds, core-seconds) for a node.

    Wallclock service is the time one worker is occupied by one element
    (CPU duration at the machine's core speed); core-seconds additionally
    multiply by UDF internal width.
    """
    if isinstance(node, InterleaveSourceNode):
        cpu = node.read_cpu_seconds_per_record / machine.core_speed
        return cpu, cpu
    if isinstance(node, MapNode):
        udf = node.udf
        duration = udf.cost.cpu_seconds / machine.core_speed
        return duration, duration * udf.cost.internal_parallelism
    if isinstance(node, FilterNode):
        duration = node.udf.cost.cpu_seconds / machine.core_speed
        return duration, duration
    if isinstance(node, BatchNode):
        # Cost is per consumed example; one output element consumes
        # ``batch_size`` examples.
        duration = node.cpu_seconds_per_example * node.batch_size
        duration /= machine.core_speed
        return duration, duration
    if isinstance(node, ShuffleNode):
        duration = node.cpu_seconds_per_element / machine.core_speed
        return duration, duration
    if isinstance(node, CacheNode):
        duration = node.read_cpu_seconds_per_element / machine.core_speed
        return duration, duration
    if isinstance(node, (ZipNode, InterleaveDatasetsNode)):
        duration = node.cpu_seconds_per_element / machine.core_speed
        return duration, duration
    return 0.0, 0.0


def _consumption_ratios(pipeline: Pipeline) -> Dict[str, float]:
    """Elements each node *consumes* per root element (for batch nodes the
    stage-capacity unit is outputs; see caller)."""
    return pipeline.visit_ratios()


def predict_throughput(
    pipeline: Pipeline,
    machine: Machine,
    consumer_step_seconds: float = 0.0,
    cached: bool = True,
) -> SteadyStatePrediction:
    """Predict equilibrium root throughput.

    Parameters
    ----------
    cached:
        If True (default), nodes strictly below a :class:`CacheNode` are
        treated as having no steady-state cost (the paper's post-first-
        epoch regime); the disk bound is likewise waived.
    """
    ratios = pipeline.visit_ratios()
    overhead = machine.iterator_overhead + machine.tracer_overhead

    # Nodes upstream of a cache have no steady-state cost.
    free_nodes: set = pipeline.below_cache_names() if cached else set()

    stage_caps: Dict[str, float] = {}
    cpu_demand = 0.0
    disk_bytes_per_root = 0.0

    for node in pipeline.topological_order():
        v = ratios[node.name]
        if node.name in free_nodes:
            stage_caps[node.name] = math.inf
            continue
        duration, core_seconds = node_service(node, machine)
        per_element = overhead + duration
        p = node.effective_parallelism
        if per_element > 0 and v > 0:
            stage_caps[node.name] = p / (v * per_element)
        else:
            stage_caps[node.name] = math.inf
        cpu_demand += v * core_seconds
        if isinstance(node, InterleaveSourceNode):
            disk_bytes_per_root += v * node.catalog.mean_bytes_per_record

    cpu_cap = machine.cores / cpu_demand if cpu_demand > 0 else math.inf

    if disk_bytes_per_root > 0:
        streams = sum(
            s.effective_parallelism
            for s in pipeline.sources()
            if s.name not in free_nodes
        )
        disk_cap = (
            machine.disk.bandwidth(streams) / disk_bytes_per_root
            if streams > 0
            else math.inf
        )
    else:
        disk_cap = math.inf

    consumer_cap = (
        1.0 / consumer_step_seconds if consumer_step_seconds > 0 else math.inf
    )

    candidates = {
        "cpu": cpu_cap,
        "disk": disk_cap,
        "consumer": consumer_cap,
    }
    for name, cap in stage_caps.items():
        candidates[f"stage:{name}"] = cap

    bottleneck = min(candidates, key=candidates.get)
    throughput = candidates[bottleneck]

    return SteadyStatePrediction(
        throughput=throughput,
        bottleneck=bottleneck,
        stage_caps=stage_caps,
        cpu_cap=cpu_cap,
        disk_cap=disk_cap,
        consumer_cap=consumer_cap,
        cpu_demand_per_element=cpu_demand,
    )
