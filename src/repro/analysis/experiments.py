"""Experiment drivers shared by the benchmark harnesses.

Each function reproduces one of the paper's evaluation protocols and
returns structured results; the ``benchmarks/`` files render them as the
same rows/series the paper reports and assert the qualitative claims.

Scaling note: end-to-end experiments run on datasets scaled down by
``scale`` with host memory scaled by the same factor, so cache
*placement decisions* (what fits) are preserved while epochs stay
simulable in seconds of virtual time. Rates, core counts, and disk
bandwidths are never scaled.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.autotune import AutotuneTuner
from repro.baselines.heuristic import heuristic_config
from repro.baselines.naive import naive_config
from repro.baselines.random_walk import RandomWalkTuner
from repro.core.bottleneck import SequentialTuner, throughput_estimates
from repro.core.plumber import Plumber
from repro.graph.datasets import Pipeline
from repro.host.machine import Machine
from repro.runtime.executor import ModelConsumer, run_pipeline
from repro.workloads.registry import Workload


# ----------------------------------------------------------------------
# §5.1 sequential tuning (Figures 6/7/8/9/13).
# ----------------------------------------------------------------------
@dataclass
class TuningStep:
    """One optimization step's measurements and estimates."""

    step: int
    target: str
    observed: float
    local_estimate: float
    lp_estimate: float
    autotune_estimate: float


@dataclass
class TuningRun:
    """A full sequential-tuning session."""

    label: str
    steps: List[TuningStep] = field(default_factory=list)

    @property
    def observed_series(self) -> List[float]:
        return [s.observed for s in self.steps]

    @property
    def final_observed(self) -> float:
        return self.steps[-1].observed if self.steps else 0.0

    def steps_to_reach(self, target: float) -> Optional[int]:
        """First step whose observed throughput reaches ``target``."""
        for s in self.steps:
            if s.observed >= target:
                return s.step
        return None


def sequential_tuning(
    pipeline: Pipeline,
    machine: Machine,
    steps: int = 20,
    trace_duration: float = 2.0,
    trace_warmup: float = 0.8,
    tuner: str = "plumber",
    seed: int = 0,
) -> TuningRun:
    """Run the §5.1 protocol: start naive, bump one node per step.

    ``tuner`` is ``"plumber"`` (rank by parallelism-scaled rates) or
    ``"random"`` (the uninformed-debugging baseline).
    """
    plumber = Plumber(machine, trace_duration, trace_warmup)
    autotune = AutotuneTuner(machine)
    current = naive_config(pipeline)
    run = TuningRun(label=tuner)
    random_walk = RandomWalkTuner(seed=seed)
    # The paper's protocol keeps stepping well past the core count (its
    # Figure 6 runs 40 steps on a 16-core host); cap generously.
    budget = int(machine.cores * 2.5)

    for step in range(steps):
        model = plumber.model(current)
        report = throughput_estimates(model)
        run.steps.append(
            TuningStep(
                step=step,
                target="",
                observed=model.observed_throughput,
                local_estimate=report.local_estimate,
                lp_estimate=report.lp_estimate,
                autotune_estimate=autotune.predict_throughput(model),
            )
        )
        if tuner == "plumber":
            ranked = report.ranked
            total = sum(n.effective_parallelism for n in current.tunables())
            if ranked and total < budget:
                target = ranked[0]
                run.steps[-1] = dataclasses.replace(
                    run.steps[-1], target=target.name
                )
                from repro.core.rewriter import set_parallelism

                current = set_parallelism(
                    current, {target.name: target.parallelism + 1}
                )
        elif tuner == "random":
            current = random_walk.step(current, core_budget=budget)
            if random_walk.history:
                run.steps[-1] = dataclasses.replace(
                    run.steps[-1], target=random_walk.history[-1]
                )
        else:
            raise ValueError(f"unknown tuner {tuner!r}")
    return run


def baseline_throughput(
    pipeline: Pipeline,
    machine: Machine,
    which: str,
    duration: float = 3.0,
    warmup: float = 1.2,
    io_parallelism: Optional[int] = None,
) -> float:
    """Observed throughput of AUTOTUNE or HEURISTIC on a workload."""
    if which == "heuristic":
        tuned = heuristic_config(naive_config(pipeline), machine)
    elif which == "autotune":
        plumber = Plumber(machine, duration, warmup)
        model = plumber.model(naive_config(pipeline))
        tuned = AutotuneTuner(machine, io_parallelism=io_parallelism).tune(
            model
        ).pipeline
    else:
        raise ValueError(f"unknown baseline {which!r}")
    result = run_pipeline(tuned, machine, duration=duration, warmup=warmup)
    return result.throughput


# ----------------------------------------------------------------------
# §5.4 end-to-end (Figures 10/12).
# ----------------------------------------------------------------------
@dataclass
class EndToEndRow:
    """One workload's four configurations."""

    workload: str
    naive: float
    autotune: float
    heuristic: float
    plumber: float

    def relative(self) -> "EndToEndRow":
        """Speedups over naive (Figure 10's presentation)."""
        base = self.naive if self.naive > 0 else 1.0
        return EndToEndRow(
            self.workload,
            1.0,
            self.autotune / base,
            self.heuristic / base,
            self.plumber / base,
        )


#: per-workload dataset scales: text datasets must shrink further so the
#: cache-populate epoch completes within the warmup window.
E2E_SCALES: Dict[str, float] = {
    "transformer": 0.001,
    "transformer_small": 0.0003,
    "gnmt": 0.001,
}


def end_to_end(
    workload: Workload,
    machine: Machine,
    scale: Optional[float] = None,
    duration: float = 8.0,
    warmup: float = 3.0,
    autotune_io_parallelism: Optional[int] = 10,
    granularity: Optional[int] = None,
) -> EndToEndRow:
    """Run one workload under all four configurations (§5.4 protocol).

    The dataset and host memory are scaled together (see module note);
    measurement happens after ``warmup`` so caches reach steady state,
    mirroring multi-epoch training.
    """
    if scale is None:
        scale = E2E_SCALES.get(workload.name, 0.004)
    scaled_machine = machine.with_memory(machine.memory_bytes * scale)
    base = workload.build(scale=scale)
    consumer = ModelConsumer(workload.model_step_seconds)

    def measure(pipe: Pipeline) -> float:
        result = run_pipeline(
            pipe,
            scaled_machine,
            duration=duration,
            warmup=warmup,
            trace=False,
            consumer=consumer,
            granularity=granularity,
        )
        return result.examples_per_second

    naive = measure(naive_config(base, keep_prefetch=False))

    plumber = Plumber(scaled_machine, trace_duration=1.5, trace_warmup=0.4)
    model = plumber.model(naive_config(base))
    autotune_pipe = AutotuneTuner(
        scaled_machine, io_parallelism=autotune_io_parallelism
    ).tune(model).pipeline
    autotune = measure(autotune_pipe)

    heuristic = measure(heuristic_config(naive_config(base), scaled_machine))

    optimized = plumber.optimize(naive_config(base)).pipeline
    plumber_rate = measure(optimized)

    return EndToEndRow(
        workload=workload.name,
        naive=naive,
        autotune=autotune,
        heuristic=heuristic,
        plumber=plumber_rate,
    )
