"""Analysis utilities: analytic steady-state model, experiment drivers,
and text tables shared by the benchmark harnesses."""

from repro.analysis.steady_state import SteadyStatePrediction, predict_throughput
from repro.analysis.tables import format_table

__all__ = ["SteadyStatePrediction", "format_table", "predict_throughput"]
