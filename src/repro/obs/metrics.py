"""Typed metric instruments and their registry.

The paper's whole argument is that pipeline performance must be
*legible* — Plumber wins because it surfaces the rates and occupancies
tf.data hides. This module is that idea applied to the repro's own
service stack: a dependency-free metrics core every layer (engine,
optimizer driver, batch service, daemon, shard fabric) writes into and
one endpoint (the daemon's ``GET /metrics``) reads out of.

Three instrument kinds:

* :class:`Counter` — monotonically increasing total (requests served,
  cache hits, jobs re-homed).
* :class:`Gauge` — a value that goes both ways (lane occupancy, queue
  depth, draining flag).
* :class:`Histogram` — a **streaming quantile sketch** (DDSketch-style
  logarithmic buckets): p50/p90/p99 with *relative* value-error at most
  ``relative_error``, without storing samples. Memory is bounded
  (``max_buckets`` per sign), and two sketches with the same error
  budget :meth:`~Histogram.merge` exactly — per-shard snapshots can be
  aggregated into one fleet-wide latency distribution, which is what
  makes a sharded ``stats()`` report honest instead of averaging
  averages.

All three support Prometheus-style **labels** (``hist.labels(
route="/stats").observe(dt)``); a :class:`MetricsRegistry` names them,
takes **atomic snapshots** (:meth:`~MetricsRegistry.as_dict`), and
renders Prometheus text exposition (:func:`render_text`). Snapshots are
plain JSON-compatible dicts: they travel through ``GET /stats`` bodies
and merge across processes with :func:`merge_snapshots`.

The registry's clock is injectable (``MetricsRegistry(clock=...)``) so
latency instrumentation is testable without wall-clock waits — the same
convention as the service layer's ``clock=``/``monotonic=`` parameters.
"""

from __future__ import annotations

import json
import math
import threading
import time

_MONOTONIC = time.monotonic
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "render_text",
    "summarize_snapshot",
]

#: quantiles every histogram snapshot/exposition reports
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labelvalues: Mapping[str, str]) -> LabelKey:
    """Canonical (sorted) tuple form of one label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labelvalues.items()))


class _Instrument:
    """Shared labeled-instrument machinery.

    The instrument object itself is the *unlabeled* cell; ``labels()``
    children share the parent's lock (one lock per family keeps
    snapshots internally consistent) and its configuration.
    """

    kind = "untyped"

    def __init__(self, name: str = "", help: str = "",
                 clock: Callable[[], float] = _MONOTONIC) -> None:
        self.name = name
        self.help = help
        self._clock = clock
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, "_Instrument"] = {}
        self._touched = False

    def _make_child(self) -> "_Instrument":
        raise NotImplementedError

    def labels(self, **labelvalues: str) -> "_Instrument":
        """The child cell for one label set (created on first use)."""
        if not labelvalues:
            return self
        key = _label_key(labelvalues)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                child._lock = self._lock  # family-wide lock
                self._children[key] = child
            return child

    # -- snapshot plumbing ---------------------------------------------
    def _sample_value(self) -> object:
        raise NotImplementedError

    def samples(self) -> List[dict]:
        """Every live cell of this family as ``{"labels", "value"}``.

        The unlabeled cell appears when it was ever written to, or when
        the family has no labeled children at all (so a registered but
        untouched counter still shows up as 0 — absence of traffic is a
        signal too).
        """
        with self._lock:
            out = []
            if self._touched or not self._children:
                out.append({"labels": {}, "value": self._sample_value()})
            for key, child in sorted(self._children.items()):
                out.append({
                    "labels": dict(key),
                    "value": child._sample_value(),
                })
            return out


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str = "", help: str = "",
                 clock: Callable[[], float] = _MONOTONIC) -> None:
        super().__init__(name, help, clock)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help, self._clock)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount
            self._touched = True

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _sample_value(self) -> float:
        return self._value


class Gauge(_Instrument):
    """A value that can rise and fall."""

    kind = "gauge"

    def __init__(self, name: str = "", help: str = "",
                 clock: Callable[[], float] = _MONOTONIC) -> None:
        super().__init__(name, help, clock)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help, self._clock)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._touched = True

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._touched = True

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _sample_value(self) -> float:
        return self._value


class _Timer:
    """Context manager observing its elapsed time into a histogram."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: "Histogram") -> None:
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._hist._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(max(0.0, self._hist._clock() - self._start))


class Histogram(_Instrument):
    """Streaming quantile sketch over logarithmic buckets (DDSketch).

    A value ``v > 0`` lands in bucket ``i = ceil(log_base(v))`` where
    ``base = (1 + e) / (1 - e)`` for relative error budget ``e``; the
    bucket's representative value ``2 * base**i / (base + 1)`` is then
    within ``e`` *relative* error of every value in the bucket. Negative
    values mirror into a second bucket map, zeros count separately —
    so :meth:`quantile` answers for any finite stream while storing
    only bucket counts.

    Guarantees (the properties ``tests/test_obs_metrics.py`` pins):

    * ``quantile(q)`` is within ``relative_error`` of the rank
      ``floor(q * (n - 1))`` element of the sorted observations, as
      long as no bucket collapse occurred (see ``max_buckets``);
    * :meth:`merge` of two sketches equals observing the pooled stream
      (bucket-exact; the running sum matches up to float associativity);
    * ``from_dict(to_dict())`` round-trips exactly, including through
      JSON text.

    Memory is bounded: beyond ``max_buckets`` per sign, the two
    lowest-magnitude buckets collapse (DDSketch's policy — accuracy is
    sacrificed at the *small* end, keeping p90/p99 on latencies exact).
    """

    kind = "histogram"

    def __init__(self, name: str = "", help: str = "",
                 clock: Callable[[], float] = _MONOTONIC,
                 relative_error: float = 0.01,
                 max_buckets: int = 2048) -> None:
        if not 0 < relative_error < 1:
            raise ValueError("relative_error must be in (0, 1)")
        if max_buckets < 2:
            raise ValueError("max_buckets must be >= 2")
        super().__init__(name, help, clock)
        self.relative_error = relative_error
        self.max_buckets = max_buckets
        self._base = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_base = math.log(self._base)
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, self._clock,
                         relative_error=self.relative_error,
                         max_buckets=self.max_buckets)

    # -- write side ----------------------------------------------------
    def _bucket_index(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_base))

    @staticmethod
    def _collapse(buckets: Dict[int, int]) -> None:
        """Fold the lowest-magnitude bucket into its neighbour above."""
        low, second = sorted(buckets)[:2]
        buckets[second] += buckets.pop(low)

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"cannot observe non-finite value {value!r}")
        with self._lock:
            self._observe_locked(value)

    def _observe_locked(self, value: float) -> None:
        self._touched = True
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value == 0.0:
            self._zero += 1
            return
        store = self._pos if value > 0 else self._neg
        index = self._bucket_index(abs(value))
        store[index] = store.get(index, 0) + 1
        if len(store) > self.max_buckets:
            self._collapse(store)

    def time(self) -> _Timer:
        """``with hist.time(): ...`` — observe the block's duration."""
        return _Timer(self)

    # -- read side -----------------------------------------------------
    def _representative(self, index: int, sign: int) -> float:
        return sign * 2.0 * self._base ** index / (self._base + 1.0)

    def _quantile_locked(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return math.nan
        rank = math.floor(q * (self._count - 1))
        # Value order: most-negative first (descending mirrored index),
        # then zeros, then positives ascending.
        seen = 0
        for index in sorted(self._neg, reverse=True):
            seen += self._neg[index]
            if seen > rank:
                estimate = self._representative(index, -1)
                return min(max(estimate, self._min), self._max)
        seen += self._zero
        if seen > rank:
            return min(max(0.0, self._min), self._max)
        for index in sorted(self._pos):
            seen += self._pos[index]
            if seen > rank:
                estimate = self._representative(index, 1)
                return min(max(estimate, self._min), self._max)
        return self._max  # float slack fallback; unreachable in theory

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile of everything observed so far."""
        with self._lock:
            return self._quantile_locked(q)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    # -- merge / serialization ----------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this sketch (in place).

        Requires an identical ``relative_error`` — bucket boundaries
        must line up for the merged counts to mean anything.
        """
        if not isinstance(other, Histogram):
            raise TypeError(f"can only merge Histogram, got {type(other)!r}")
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge sketches with different relative_error "
                f"({self.relative_error} vs {other.relative_error})"
            )
        if other is self:
            raise ValueError("cannot merge a histogram into itself")
        with other._lock:
            state = (dict(other._pos), dict(other._neg), other._zero,
                     other._count, other._sum, other._min, other._max)
        pos, neg, zero, count, total, vmin, vmax = state
        with self._lock:
            if count:
                self._touched = True
            for index, n in pos.items():
                self._pos[index] = self._pos.get(index, 0) + n
            for index, n in neg.items():
                self._neg[index] = self._neg.get(index, 0) + n
            while len(self._pos) > self.max_buckets:
                self._collapse(self._pos)
            while len(self._neg) > self.max_buckets:
                self._collapse(self._neg)
            self._zero += zero
            self._count += count
            self._sum += total
            self._min = min(self._min, vmin)
            self._max = max(self._max, vmax)
        return self

    def to_dict(self) -> dict:
        """JSON-compatible full state (buckets included, so snapshots
        from different processes can be merged with :func:`merge_snapshots`)."""
        with self._lock:
            return self._to_dict_locked()

    def _to_dict_locked(self) -> dict:
        out = {
            "relative_error": self.relative_error,
            "count": self._count,
            "sum": self._sum,
            "zero": self._zero,
            "pos": {str(i): n for i, n in sorted(self._pos.items())},
            "neg": {str(i): n for i, n in sorted(self._neg.items())},
        }
        if self._count:
            out["min"] = self._min
            out["max"] = self._max
            for q in SNAPSHOT_QUANTILES:
                out[f"p{int(q * 100)}"] = self._quantile_locked(q)
        return out

    @classmethod
    def from_dict(cls, data: Mapping,
                  clock: Callable[[], float] = _MONOTONIC,
                  max_buckets: int = 2048) -> "Histogram":
        """Rebuild a sketch from :meth:`to_dict` output."""
        hist = cls(relative_error=data["relative_error"], clock=clock,
                   max_buckets=max_buckets)
        hist._count = int(data["count"])
        hist._sum = float(data["sum"])
        hist._zero = int(data.get("zero", 0))
        hist._pos = {int(i): int(n) for i, n in data.get("pos", {}).items()}
        hist._neg = {int(i): int(n) for i, n in data.get("neg", {}).items()}
        hist._min = float(data.get("min", math.inf))
        hist._max = float(data.get("max", -math.inf))
        hist._touched = hist._count > 0
        return hist

    def _sample_value(self) -> dict:
        return self._to_dict_locked()


class MetricsRegistry:
    """Named instruments with atomic snapshots.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: asking
    for an existing name returns the live instrument (so call sites
    never coordinate), and asking for it with a different kind raises.
    ``clock`` is the monotonic source every ``Histogram.time()`` context
    uses — inject a fake for deterministic latency tests.
    """

    def __init__(self, clock: Callable[[], float] = _MONOTONIC) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}

    def _get_or_create(self, name: str, kind: type, **kwargs) -> _Instrument:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} is a {existing.kind}, "
                        f"not a {kind.kind}"
                    )
                return existing
            instrument = kind(name=name, clock=self.clock, **kwargs)
            self._metrics[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  relative_error: float = 0.01,
                  max_buckets: int = 2048) -> Histogram:
        return self._get_or_create(
            name, Histogram, help=help,
            relative_error=relative_error, max_buckets=max_buckets,
        )

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    # -- snapshots -----------------------------------------------------
    def as_dict(self) -> dict:
        """One atomic, JSON-compatible snapshot of every instrument.

        Each instrument family is read under its own lock, so a cell is
        never observed mid-update (a histogram's count always equals
        the sum of its bucket counts, a counter never appears to go
        backwards between two snapshots of the same write sequence).
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {
            name: {
                "kind": instrument.kind,
                "help": instrument.help,
                "samples": instrument.samples(),
            }
            for name, instrument in metrics
        }

    def render_text(self) -> str:
        """Prometheus-style text exposition of the current snapshot."""
        return render_text(self.as_dict())

    def summary(self) -> dict:
        """Compact ``{series: scalar-or-quantiles}`` view (no buckets)."""
        return summarize_snapshot(self.as_dict())


# ----------------------------------------------------------------------
# Snapshot-level operations: merging and rendering work on the plain
# dict form, so they apply equally to local registries and to snapshots
# that arrived over HTTP from another process.
# ----------------------------------------------------------------------
def _merge_sample_lists(kind: str, lists: List[List[dict]]) -> List[dict]:
    merged: Dict[LabelKey, object] = {}
    order: List[LabelKey] = []
    for samples in lists:
        for sample in samples:
            key = _label_key(sample.get("labels", {}))
            value = sample["value"]
            if key not in merged:
                merged[key] = (
                    Histogram.from_dict(value) if kind == "histogram"
                    else float(value)
                )
                order.append(key)
            elif kind == "histogram":
                merged[key].merge(Histogram.from_dict(value))
            else:
                merged[key] = merged[key] + float(value)
    return [
        {
            "labels": dict(key),
            "value": (merged[key].to_dict()
                      if isinstance(merged[key], Histogram) else merged[key]),
        }
        for key in order
    ]


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge :meth:`MetricsRegistry.as_dict` snapshots into one.

    Counters and gauges sum per label set; histograms merge through
    their bucket state (quantiles of the merged sketch equal quantiles
    of the pooled observations, which is what makes per-shard latency
    aggregation honest). Kind conflicts on the same name raise.
    """
    merged: Dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, family in snap.items():
            if name not in merged:
                merged[name] = {
                    "kind": family["kind"],
                    "help": family.get("help", ""),
                    "samples": [family["samples"]],
                }
            else:
                if merged[name]["kind"] != family["kind"]:
                    raise TypeError(
                        f"cannot merge metric {name!r}: kind "
                        f"{merged[name]['kind']} vs {family['kind']}"
                    )
                merged[name]["samples"].append(family["samples"])
    return {
        name: {
            "kind": family["kind"],
            "help": family["help"],
            "samples": _merge_sample_lists(
                family["kind"], family["samples"]),
        }
        for name, family in sorted(merged.items())
    }


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_labels(labels: Mapping[str, str],
                   extra: Optional[Mapping[str, str]] = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(items.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and not math.isfinite(value):
        return "NaN" if math.isnan(value) else (
            "+Inf" if value > 0 else "-Inf")
    return repr(float(value))


def render_text(snapshot: Mapping[str, dict]) -> str:
    """Render a snapshot as Prometheus text exposition.

    Counters and gauges render natively; histograms render as the
    ``summary`` type (``{quantile="0.5"}`` series plus ``_sum`` and
    ``_count``) — the sketch stores quantiles, not cumulative bounds.
    """
    lines: List[str] = []
    for name, family in sorted(snapshot.items()):
        kind = family["kind"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(
            f"# TYPE {name} "
            f"{'summary' if kind == 'histogram' else kind}"
        )
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            value = sample["value"]
            if kind != "histogram":
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
                continue
            hist = value
            for q in SNAPSHOT_QUANTILES:
                pkey = f"p{int(q * 100)}"
                if pkey in hist:
                    lines.append(
                        f"{name}{_format_labels(labels, {'quantile': str(q)})}"
                        f" {_format_value(hist[pkey])}"
                    )
            lines.append(
                f"{name}_sum{_format_labels(labels)} "
                f"{_format_value(hist['sum'])}"
            )
            lines.append(
                f"{name}_count{_format_labels(labels)} "
                f"{_format_value(hist['count'])}"
            )
    return "\n".join(lines) + "\n"


def summarize_snapshot(snapshot: Mapping[str, dict]) -> dict:
    """Flatten a snapshot into ``{series: value}`` for humans.

    Scalar instruments become ``name`` / ``name{label="v"}`` keys;
    histograms become ``{count, sum, min, max, p50, p90, p99}`` dicts
    with the bucket state dropped — the compact form ``GET /stats``
    embeds so existing clients see the new numbers without parsing
    exposition text.
    """
    out: Dict[str, object] = {}
    for name, family in sorted(snapshot.items()):
        for sample in family["samples"]:
            series = name + _format_labels(sample.get("labels", {}))
            value = sample["value"]
            if family["kind"] == "histogram":
                out[series] = {
                    k: v for k, v in value.items()
                    if k in ("count", "sum", "min", "max")
                    or k.startswith("p")
                }
            else:
                out[series] = value
    return out


def snapshot_to_json(snapshot: Mapping[str, dict]) -> str:
    """Canonical JSON text of a snapshot (sorted keys)."""
    return json.dumps(snapshot, sort_keys=True)
