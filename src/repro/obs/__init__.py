"""Dependency-free observability core for the repro stack.

``repro.obs`` gives every layer — simulation engine, optimizer pass
driver, batch service, daemon, shard fabric — one vocabulary for
runtime measurement: :class:`Counter`, :class:`Gauge`, and a
streaming-quantile :class:`Histogram`, named and snapshotted by a
:class:`MetricsRegistry`.

Most components own a registry (the daemon, each ``BatchOptimizer``,
each ``ShardedOptimizer``) so their numbers travel with their
``stats()``. Code with no natural owner — trace backends, the
simulation engine — writes to the process-global registry returned by
:func:`global_registry`. Note the scope: "process-global" means exactly
that. Thread-pool executors share it; process-pool workers each have
their own (their metrics stay in the worker and are not merged back).
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_text,
    summarize_snapshot,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "merge_snapshots",
    "render_text",
    "reset_global_registry",
    "summarize_snapshot",
]

_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry for code without a natural owner."""
    return _GLOBAL_REGISTRY


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh global registry and return it (test isolation)."""
    global _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = MetricsRegistry()
    return _GLOBAL_REGISTRY
