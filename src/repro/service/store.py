"""Persistent result stores for the batch optimization service.

The service's signature-keyed result cache (PR 1) lived in a plain dict,
so every process restart re-optimized the whole fleet. A
:class:`ResultStore` abstracts where entries live:

* :class:`InMemoryStore` — the original behaviour: a per-process mapping
  with an optional LRU bound.
* :class:`DiskStore` — one JSON file per entry under a cache directory,
  written atomically (temp file + ``os.replace``) so a crash mid-write
  can never corrupt an existing entry. Loads are corruption-tolerant: a
  truncated file, invalid JSON, or an entry written under a different
  :data:`~repro.core.spec.STORE_SCHEMA_VERSION` reads as a miss, never
  an exception. An optional ``max_entries`` bound evicts
  least-recently-used entries (recency = file mtime, refreshed on every
  hit).

Entries are opaque JSON-compatible mappings; the service stores
``{"result": <worker result>, "provenance": {...}}`` where provenance
records the producing trace backend, the spec's cache token, and a
caller-injected timestamp — durable, shareable result artifacts keyed
by configuration, in the Collective Knowledge sense.

Cache keys are ``canonical_hash`` hex digests (see
:meth:`repro.service.batch.BatchOptimizer._cache_key`), which makes them
safe filenames as-is; :class:`DiskStore` rejects anything else rather
than guessing an escaping scheme.
"""

from __future__ import annotations

import json
import os
import string
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Protocol, Tuple, runtime_checkable
from uuid import uuid4

from repro.core.spec import STORE_SCHEMA_VERSION

#: characters allowed in a store key (canonical_hash emits lowercase hex,
#: but any filename-safe token is accepted so tests can use readable keys)
_SAFE_KEY_CHARS = frozenset(string.ascii_letters + string.digits + "._-")


@runtime_checkable
class ResultStore(Protocol):
    """Anything that can hold the service's keyed result entries."""

    def get(self, key: str) -> Optional[dict]:
        """The entry under ``key``, or ``None`` (miss / unreadable)."""
        ...  # pragma: no cover - protocol body

    def put(self, key: str, entry: dict) -> None:
        """Persist ``entry`` under ``key`` (replacing any prior entry)."""
        ...  # pragma: no cover - protocol body

    def keys(self) -> Tuple[str, ...]:
        """Keys currently readable from the store."""
        ...  # pragma: no cover - protocol body

    def __len__(self) -> int:
        ...  # pragma: no cover - protocol body


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not key:
        raise ValueError("store keys must be non-empty strings")
    if not set(key) <= _SAFE_KEY_CHARS or key.startswith("."):
        raise ValueError(
            f"store key {key!r} is not filename-safe; use canonical_hash "
            "digests (the service's cache keys already are)"
        )
    return key


class InMemoryStore:
    """The original dict-backed cache, optionally LRU-bounded.

    Thread-safe: the daemon's dispatcher threads share one store, and
    the compound LRU update (lookup + move-to-end, insert + evict) must
    not interleave.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[dict]:
        key = _check_key(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: str, entry: dict) -> None:
        key = _check_key(key)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DiskStore:
    """Atomic JSON-per-entry store under a cache directory.

    Layout: ``<root>/<key>.json`` holding
    ``{"schema": STORE_SCHEMA_VERSION, "entry": {...}}``. Writes land in
    a uniquely-named temp file first and are published with
    ``os.replace``, so concurrent writers and crashes leave either the
    old entry or the new one, never a torn file under the final name.
    A process killed mid-write leaves only a ``*.tmp-*`` orphan, which
    no read path ever considers an entry.
    """

    SUFFIX = ".json"

    def __init__(self, root, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries

    def _path(self, key: str) -> Path:
        return self.root / (_check_key(key) + self.SUFFIX)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, ValueError):
            # Missing, unreadable, truncated, or not JSON: a miss.
            return None
        if not isinstance(data, dict):
            return None
        if data.get("schema") != STORE_SCHEMA_VERSION:
            return None
        entry = data.get("entry")
        if not isinstance(entry, dict):
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return entry

    def put(self, key: str, entry: dict) -> None:
        path = self._path(key)
        tmp = path.parent / f"{path.name}.tmp-{os.getpid()}-{uuid4().hex[:8]}"
        payload = {"schema": STORE_SCHEMA_VERSION, "entry": entry}
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(payload, f, sort_keys=True)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # publish failed; don't leave orphans
                tmp.unlink(missing_ok=True)
        self._evict()

    # ------------------------------------------------------------------
    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(
            p.name[: -len(self.SUFFIX)] for p in self.root.glob("*" + self.SUFFIX)
        ))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*" + self.SUFFIX))

    def clear(self) -> None:
        """Delete every entry (temp orphans included)."""
        for p in self.root.glob("*" + self.SUFFIX):
            p.unlink(missing_ok=True)
        for p in self.root.glob("*" + self.SUFFIX + ".tmp-*"):
            p.unlink(missing_ok=True)

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        files = sorted(
            self.root.glob("*" + self.SUFFIX),
            key=lambda p: (_mtime(p), p.name),
        )
        while len(files) > self.max_entries:
            files.pop(0).unlink(missing_ok=True)


def _mtime(path: Path) -> float:
    try:
        return path.stat().st_mtime
    except OSError:  # raced with another evictor
        return 0.0
