"""Persistent result stores for the batch optimization service.

The service's signature-keyed result cache (PR 1) lived in a plain dict,
so every process restart re-optimized the whole fleet. A
:class:`ResultStore` abstracts where entries live:

* :class:`InMemoryStore` — the original behaviour: a per-process mapping
  with an optional LRU bound.
* :class:`DiskStore` — one JSON file per entry under a cache directory,
  written atomically (temp file + ``os.replace``) so a crash mid-write
  can never corrupt an existing entry. Loads are corruption-tolerant: a
  truncated file, invalid JSON, or an entry written under a different
  :data:`~repro.core.spec.STORE_SCHEMA_VERSION` reads as a miss, never
  an exception. An optional ``max_entries`` bound evicts
  least-recently-used entries (recency = file mtime, refreshed on every
  hit).

Entries are opaque JSON-compatible mappings; the service stores
``{"result": <worker result>, "provenance": {...}}`` where provenance
records the producing trace backend, the spec's cache token, and a
caller-injected timestamp — durable, shareable result artifacts keyed
by configuration, in the Collective Knowledge sense. That timestamp is
also the GC horizon: both stores implement ``compact(max_age_seconds,
now=...)``, evicting entries whose ``provenance.created_at`` is at or
over the age horizon so a long-lived service doesn't accumulate stale
results forever. Entries without a numeric ``created_at`` are never
aged out — GC only deletes what it can date.

Cache keys are ``canonical_hash`` hex digests (see
:meth:`repro.service.batch.BatchOptimizer._cache_key`), which makes them
safe filenames as-is; :class:`DiskStore` rejects anything else rather
than guessing an escaping scheme.
"""

from __future__ import annotations

import copy
import json
import os
import string
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Protocol, Tuple, runtime_checkable
from uuid import uuid4

from repro.core.spec import STORE_SCHEMA_VERSION

#: characters allowed in a store key (canonical_hash emits lowercase hex,
#: but any filename-safe token is accepted so tests can use readable keys)
_SAFE_KEY_CHARS = frozenset(string.ascii_letters + string.digits + "._-")


@runtime_checkable
class ResultStore(Protocol):
    """Anything that can hold the service's keyed result entries."""

    def get(self, key: str) -> Optional[dict]:
        """The entry under ``key``, or ``None`` (miss / unreadable)."""
        ...  # pragma: no cover - protocol body

    def put(self, key: str, entry: dict) -> None:
        """Persist ``entry`` under ``key`` (replacing any prior entry)."""
        ...  # pragma: no cover - protocol body

    def keys(self) -> Tuple[str, ...]:
        """Keys currently readable from the store."""
        ...  # pragma: no cover - protocol body

    def __len__(self) -> int:
        ...  # pragma: no cover - protocol body


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not key:
        raise ValueError("store keys must be non-empty strings")
    if not set(key) <= _SAFE_KEY_CHARS or key.startswith("."):
        raise ValueError(
            f"store key {key!r} is not filename-safe; use canonical_hash "
            "digests (the service's cache keys already are)"
        )
    return key


def _check_horizon(max_age_seconds: float) -> float:
    if not max_age_seconds >= 0:  # also rejects NaN
        raise ValueError(
            f"max_age_seconds must be >= 0, got {max_age_seconds!r}"
        )
    return max_age_seconds


def _created_at(entry: dict) -> Optional[float]:
    """The entry's provenance timestamp, or ``None`` when undatable."""
    provenance = entry.get("provenance")
    if not isinstance(provenance, dict):
        return None
    stamp = provenance.get("created_at")
    if isinstance(stamp, bool) or not isinstance(stamp, (int, float)):
        return None
    return stamp


def _expired(entry: dict, max_age_seconds: float, now: float) -> bool:
    """Whether an entry's provenance age is at or over the horizon."""
    stamp = _created_at(entry)
    return stamp is not None and now - stamp >= max_age_seconds


class InMemoryStore:
    """The original dict-backed cache, optionally LRU-bounded.

    Thread-safe: the daemon's dispatcher threads share one store, and
    the compound LRU update (lookup + move-to-end, insert + evict) must
    not interleave.

    Entries are **copied on both sides of the boundary**: ``put``
    snapshots the caller's mapping and ``get`` returns a deep copy, so
    a caller mutating a mapping it handed in or got back can never
    corrupt the shared cache — the same isolation :class:`DiskStore`
    gets for free by re-parsing JSON on every read.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[dict]:
        key = _check_key(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
        # Stored entries are private snapshots (see put), so copying
        # outside the lock races with nothing.
        return copy.deepcopy(entry)

    def put(self, key: str, entry: dict) -> None:
        key = _check_key(key)
        entry = copy.deepcopy(entry)  # snapshot: later caller mutations
        with self._lock:              # must not reach the cache
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def compact(self, max_age_seconds: float,
                now: Optional[float] = None) -> int:
        """Evict entries whose provenance age is >= ``max_age_seconds``.

        ``now`` is injectable for deterministic tests (wall clock by
        default). Returns how many entries were evicted. Idempotent:
        surviving entries only age relative to ``now``, so re-running
        with the same arguments removes nothing further.
        """
        _check_horizon(max_age_seconds)
        now = time.time() if now is None else now
        with self._lock:
            stale = [
                key for key, entry in self._entries.items()
                if _expired(entry, max_age_seconds, now)
            ]
            for key in stale:
                del self._entries[key]
        return len(stale)


class DiskStore:
    """Atomic JSON-per-entry store under a cache directory.

    Layout: ``<root>/<key>.json`` holding
    ``{"schema": STORE_SCHEMA_VERSION, "entry": {...}}``. Writes land in
    a uniquely-named temp file first and are published with
    ``os.replace``, so concurrent writers and crashes leave either the
    old entry or the new one, never a torn file under the final name.
    A process killed mid-write leaves only a ``*.tmp-*`` orphan, which
    no read path ever considers an entry.
    """

    SUFFIX = ".json"

    def __init__(self, root, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries

    def _path(self, key: str) -> Path:
        return self.root / (_check_key(key) + self.SUFFIX)

    @staticmethod
    def _load(path: Path) -> Optional[dict]:
        """Read one entry file tolerantly: anything unreadable, torn,
        non-JSON, or schema-mismatched is ``None``, never an error."""
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        if data.get("schema") != STORE_SCHEMA_VERSION:
            return None
        entry = data.get("entry")
        if not isinstance(entry, dict):
            return None
        return entry

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        path = self._path(key)
        entry = self._load(path)
        if entry is None:
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return entry

    def put(self, key: str, entry: dict) -> None:
        path = self._path(key)
        tmp = path.parent / f"{path.name}.tmp-{os.getpid()}-{uuid4().hex[:8]}"
        payload = {"schema": STORE_SCHEMA_VERSION, "entry": entry}
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(payload, f, sort_keys=True)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # publish failed; don't leave orphans
                tmp.unlink(missing_ok=True)
        self._evict()

    # ------------------------------------------------------------------
    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(
            p.name[: -len(self.SUFFIX)] for p in self.root.glob("*" + self.SUFFIX)
        ))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*" + self.SUFFIX))

    def clear(self) -> None:
        """Delete every entry (temp orphans included)."""
        for p in self.root.glob("*" + self.SUFFIX):
            p.unlink(missing_ok=True)
        for p in self.root.glob("*" + self.SUFFIX + ".tmp-*"):
            p.unlink(missing_ok=True)

    def compact(self, max_age_seconds: float,
                now: Optional[float] = None) -> int:
        """Evict entries whose provenance age is >= ``max_age_seconds``.

        Each entry file is read directly (corruption-tolerantly) *without*
        refreshing its LRU mtime — GC must not make every stale entry
        look freshly used. Undatable entries — corrupt files, foreign
        schemas, or entries with no numeric ``provenance.created_at`` —
        are left alone. ``now`` is injectable for deterministic tests;
        returns how many entries were deleted. Idempotent for a fixed
        ``now``. Safe against concurrent compactors: a raced unlink
        counts once (``missing_ok``).
        """
        _check_horizon(max_age_seconds)
        now = time.time() if now is None else now
        removed = 0
        for path in self.root.glob("*" + self.SUFFIX):
            entry = self._load(path)
            if entry is not None and _expired(entry, max_age_seconds, now):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        files = sorted(
            self.root.glob("*" + self.SUFFIX),
            key=lambda p: (_mtime(p), p.name),
        )
        while len(files) > self.max_entries:
            files.pop(0).unlink(missing_ok=True)


def _mtime(path: Path) -> float:
    try:
        return path.stat().st_mtime
    except OSError:  # raced with another evictor
        return 0.0
