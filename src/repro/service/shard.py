"""Deterministic sharding of fleet job batches across logical hosts.

A fleet batch too large for one service process is split across ``N``
logical hosts by **structural-signature hash**: every job whose pipeline
is structurally identical lands on the same shard, so the per-shard
result caches dedup exactly as well as one global cache would — no two
shards ever optimize the same (pipeline, machine, spec) key. The
assignment depends only on the signature (a canonical sha-256 digest)
and ``num_shards``, so it is stable across processes, hosts, and runs.

A shard is **anything** with ``optimize_fleet(jobs)`` + ``stats()``: an
in-process :class:`~repro.service.batch.BatchOptimizer`, or a
:class:`~repro.service.client.RemoteShard` bound to a daemon URL — the
latter turns :class:`ShardedOptimizer` into a multi-process, multi-host
front-end dispatching over HTTP. Shards are dispatched **concurrently**
(one thread per occupied shard), so fleet wallclock is the slowest
shard, not the sum — with remote shards, N daemon processes genuinely
optimize in parallel.

Per-shard :class:`~repro.service.batch.FleetOptimizationReport`s merge
into one fleet-wide report via
:meth:`~repro.service.batch.FleetOptimizationReport.merge`, whose
hit-rate arithmetic deduplicates by cache key (see
:func:`repro.fleet.analysis.merged_cache_counts`) — robust even to
shard layouts that *do* duplicate a signature across shards, e.g.
hand-partitioned batches or reports collected from independent service
processes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Mapping, Sequence, Union

from repro.graph.signature import structural_signature
from repro.service.batch import FleetOptimizationReport

__all__ = ["shard_index", "shard_fleet", "ShardedOptimizer"]


def shard_index(signature: str, num_shards: int) -> int:
    """The shard owning a structural signature (hex digest)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return int(signature, 16) % num_shards


def _job_pipeline(entry) -> object:
    """The pipeline of one job in any of the batch-service input forms."""
    if isinstance(entry, tuple):
        if len(entry) < 2:
            raise ValueError(
                "job tuples are (name, pipeline[, ...]); "
                f"got {len(entry)} elements"
            )
        return entry[1]
    return entry.pipeline


def shard_fleet(
    jobs: Union[Mapping[str, object], Sequence],
    num_shards: int,
) -> List[List]:
    """Partition a job batch into ``num_shards`` signature-affine shards.

    Accepts the same input forms as
    :meth:`~repro.service.batch.BatchOptimizer.optimize_fleet`
    (``{name: pipeline}`` mappings, job tuples, or objects with a
    ``pipeline`` attribute). Relative job order is preserved within each
    shard; mappings shard as ``(name, pipeline)`` tuples. Empty shards
    are returned as empty lists so shard ``i`` always maps to logical
    host ``i``.
    """
    if isinstance(jobs, Mapping):
        entries: Sequence = list(jobs.items())
    else:
        entries = list(jobs)
    shards: List[List] = [[] for _ in range(num_shards)]
    if num_shards == 1:
        shards[0].extend(entries)
        return shards
    # Stamped fleets share Pipeline objects; hash each object once.
    sig_by_id: Dict[int, str] = {}
    for entry in entries:
        pipeline = _job_pipeline(entry)
        sig = sig_by_id.get(id(pipeline))
        if sig is None:
            sig = structural_signature(pipeline)
            sig_by_id[id(pipeline)] = sig
        shards[shard_index(sig, num_shards)].append(entry)
    return shards


class ShardedOptimizer:
    """Dispatch job batches concurrently across per-shard optimizers.

    Each shard is one logical host: anything exposing
    ``optimize_fleet(jobs) -> FleetOptimizationReport`` and
    ``stats() -> dict`` — an in-process
    :class:`~repro.service.batch.BatchOptimizer` (point each at a
    different ``DiskStore`` directory to model independent hosts) or a
    :class:`~repro.service.client.RemoteShard` talking HTTP to a daemon
    process. A batch is split with :func:`shard_fleet`, every occupied
    shard is dispatched on its own thread, and the per-shard reports
    are merged into one fleet-wide :class:`FleetOptimizationReport`
    with deduplicated cache arithmetic. Job order in the merged report
    matches submission order.
    """

    def __init__(self, optimizers: Sequence) -> None:
        if not optimizers:
            raise ValueError("need at least one shard optimizer")
        for opt in optimizers:
            if not callable(getattr(opt, "optimize_fleet", None)) or \
                    not callable(getattr(opt, "stats", None)):
                raise TypeError(
                    f"shard {opt!r} does not satisfy the shard contract "
                    "(optimize_fleet + stats); pass BatchOptimizer or "
                    "RemoteShard instances"
                )
        self.optimizers = tuple(optimizers)

    @property
    def num_shards(self) -> int:
        return len(self.optimizers)

    def optimize_fleet(
        self,
        jobs: Union[Mapping[str, object], Sequence],
    ) -> FleetOptimizationReport:
        """Shard, optimize, and merge one batch."""
        # Reject duplicate names up front: duplicates whose pipelines
        # hash to *different* shards would slip past the per-shard
        # check, silently diverging from BatchOptimizer on the same
        # input (and making the merged report's job() ambiguous).
        if isinstance(jobs, Mapping):
            order = {name: i for i, name in enumerate(jobs)}
        else:
            order = {}
            for i, entry in enumerate(jobs):
                name = entry[0] if isinstance(entry, tuple) else entry.name
                if name in order:
                    raise ValueError(f"duplicate job name {name!r}")
                order[name] = i
        shards = shard_fleet(jobs, self.num_shards)
        occupied = [
            (opt, shard)
            for opt, shard in zip(self.optimizers, shards)
            if shard
        ]
        if len(occupied) <= 1:
            reports = [opt.optimize_fleet(shard) for opt, shard in occupied]
        else:
            # One dispatcher thread per occupied shard: remote shards
            # spend their time blocked on HTTP, in-process shards on
            # their own pools, so fleet wallclock is the slowest shard,
            # not the sum of all of them.
            with ThreadPoolExecutor(
                max_workers=len(occupied),
                thread_name_prefix="repro-shard-dispatch",
            ) as pool:
                futures = [
                    pool.submit(opt.optimize_fleet, shard)
                    for opt, shard in occupied
                ]
                reports = [f.result() for f in futures]
        merged = FleetOptimizationReport.merge(reports)
        # Restore submission order (merge concatenates shard by shard).
        merged.jobs.sort(key=lambda j: order[j.name])
        return merged

    def stats(self) -> dict:
        """Per-shard and fleet-wide cumulative cache accounting."""
        shard_stats = [opt.stats() for opt in self.optimizers]
        hits = sum(s["cache_hits"] for s in shard_stats)
        misses = sum(s["cache_misses"] for s in shard_stats)
        total = hits + misses
        return {
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": hits / total if total else 0.0,
            "store_entries": sum(s["store_entries"] for s in shard_stats),
            "shards": shard_stats,
        }
